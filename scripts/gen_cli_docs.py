"""Generate ``docs/cli.md`` from the live argparse tree.

The CLI reference page is *generated*, never hand-edited: this script
walks the ``repro`` argument parser (every subcommand, including the
nested ``experiment`` subcommands), captures each ``--help`` text at a
fixed 80-column width, and renders one markdown page.  The snapshot
test ``tests/test_cli_reference.py`` regenerates the page and fails
when the committed ``docs/cli.md`` drifts from the actual parser -- so
a CLI change without a matching docs regeneration cannot land.

Usage::

    python scripts/gen_cli_docs.py           # rewrite docs/cli.md
    python scripts/gen_cli_docs.py --check   # exit 1 if docs/cli.md is stale

argparse help formatting is byte-stable across Python 3.10-3.12 but
changed in 3.13; the committed page (and the docs-build CI job, pinned
to 3.11) use the stable range, and the snapshot test skips outside it.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATH = REPO_ROOT / "docs" / "cli.md"

HEADER = """\
# CLI reference

The package installs a ``repro`` console script, also reachable as
``python -m repro``.  This page is generated from the live argparse
tree by ``scripts/gen_cli_docs.py`` and kept in sync by a snapshot
test -- regenerate it after any CLI change:

```bash
python scripts/gen_cli_docs.py
```
"""


def _subcommands(parser: argparse.ArgumentParser):
    """The {name: subparser} map of a parser (empty when none)."""
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _section(title: str, parser: argparse.ArgumentParser, level: int) -> str:
    heading = "#" * level
    return f"{heading} `{title}`\n\n```text\n{parser.format_help().rstrip()}\n```\n"


def render() -> str:
    """Render the full CLI reference page as markdown text."""
    source = str(REPO_ROOT / "src")
    if source not in sys.path:
        sys.path.insert(0, source)
    from repro.cli import build_parser

    parser = build_parser()
    # argparse wraps help output to the terminal width; pin it (scoped --
    # the snapshot test calls this inside the pytest process) so the
    # generated page is identical regardless of where it is built.
    previous_columns = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "80"
    try:
        parts = [HEADER]
        parts.append(_section("repro", parser, 2))
        for name, sub in _subcommands(parser).items():
            parts.append(_section(f"repro {name}", sub, 2))
            for nested_name, nested in _subcommands(sub).items():
                parts.append(_section(f"repro {name} {nested_name}", nested, 3))
        return "\n".join(parts)
    finally:
        if previous_columns is None:
            del os.environ["COLUMNS"]
        else:
            os.environ["COLUMNS"] = previous_columns


def main(argv=None) -> int:
    """Write (or with ``--check`` verify) ``docs/cli.md``."""
    args = argparse.ArgumentParser(description=__doc__)
    args.add_argument(
        "--check",
        action="store_true",
        help="do not write; exit 1 when docs/cli.md is out of date",
    )
    options = args.parse_args(argv)
    content = render()
    if options.check:
        current = DOC_PATH.read_text() if DOC_PATH.exists() else ""
        if current != content:
            print(
                "docs/cli.md is out of date -- run: python scripts/gen_cli_docs.py",
                file=sys.stderr,
            )
            return 1
        print("docs/cli.md is up to date")
        return 0
    DOC_PATH.parent.mkdir(parents=True, exist_ok=True)
    DOC_PATH.write_text(content)
    print(f"wrote {DOC_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
