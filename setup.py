"""Setup shim for legacy editable installs (``pip install -e . --no-use-pep517``).

All metadata lives in ``pyproject.toml``; this file only exists so that
environments without the ``wheel`` package can still do editable installs.
"""

from setuptools import setup

setup()
