"""Experiment CMP: glitch-train handling across delay-model families.

Reproduces the qualitative comparison that motivates the paper (Section I):
pure delays propagate every glitch, inertial delays remove all sub-window
glitches in a single stage (the non-physical behaviour at the heart of the
non-faithfulness results), DDM and (eta-)involution channels attenuate
glitch trains gradually along an inverter chain.
"""

from conftest import run_once
from repro.experiments import print_table, run_model_comparison
from repro.spf import SPFChecker, build_spf_circuit
from repro.core import RandomAdversary, WorstCaseAdversary, ZeroAdversary, admissible_eta_bound

import numpy as np


def test_model_comparison_glitch_trains(benchmark):
    result = run_once(
        benchmark,
        run_model_comparison,
        stages=6,
        pulse_width=0.4,
        gap=0.6,
        pulse_count=12,
        end_time=400.0,
    )
    print()
    print_table(
        result.rows(),
        title=(
            f"CMP: surviving pulses per stage for a train of {result.pulse_count} "
            f"pulses of width {result.pulse_width}"
        ),
    )
    survivors = result.stage_survivors
    # Pure delay: every glitch survives every stage.
    assert survivors["pure"] == [result.pulse_count] * 6
    # Inertial delay: everything below the window dies at the first stage.
    assert survivors["inertial"][0] == 0
    # Involution-family and DDM channels attenuate monotonically along the chain.
    for model in ("involution", "eta_involution", "ddm"):
        counts = survivors[model]
        assert all(b <= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] < result.pulse_count


def test_spf_solvability_per_model(benchmark, exp_pair, eta_small):
    """The eta-involution SPF circuit solves SPF; the checker quantifies it."""
    circuit = build_spf_circuit(exp_pair, eta_small)
    checker = SPFChecker(
        circuit,
        adversary_factories={
            "zero": ZeroAdversary,
            "worst": WorstCaseAdversary,
            "random": lambda: RandomAdversary(seed=23),
        },
        end_time=400.0,
    )
    widths = np.linspace(0.05, 2.0, 12)
    report = run_once(benchmark, checker.check, widths)
    print()
    print_table([report.summary()], title="CMP: SPF conditions for the Fig. 5 circuit")
    assert report.solves_spf
