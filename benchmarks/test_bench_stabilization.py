"""Experiment LEM7: stabilisation time near the critical pulse width.

Regenerates the bounded-time-impossibility phenomenon behind Lemmas 7/8 and
Theorem 9: as the input pulse width approaches the critical width
``Delta_0_tilde`` from above, the number of loop pulses (and hence the
stabilisation time) grows like ``log_a(1/(Delta_0 - Delta_0_tilde))`` --
both analytically and in the event-driven simulation.
"""

import math

import numpy as np

from conftest import run_once
from repro.core import WorstCaseAdversary
from repro.experiments import print_table
from repro.spf import (
    SPFAnalysis,
    analytical_stabilization_sweep,
    simulated_stabilization_sweep,
)

GAPS = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6]


def test_stabilization_time_divergence(benchmark, exp_pair, eta_small):
    def run():
        analytic = analytical_stabilization_sweep(exp_pair, eta_small, GAPS)
        simulated = simulated_stabilization_sweep(
            exp_pair,
            eta_small,
            GAPS,
            adversary_factory=WorstCaseAdversary,
            end_time=600.0,
        )
        return analytic, simulated

    analytic, simulated = run_once(benchmark, run)
    analysis = SPFAnalysis(exp_pair, eta_small)
    rows = []
    for a, s in zip(analytic, simulated):
        rows.append(
            {
                "gap": a.gap,
                "delta_0": a.delta_0,
                "bound_pulses": a.pulses,
                "simulated_pulses": s.pulses,
                "bound_time": a.stabilization_time,
                "simulated_time": s.stabilization_time,
                "final_value": s.final_value,
            }
        )
    print()
    print_table(
        rows,
        title=(
            "LEM7: stabilisation near Delta_0_tilde = "
            f"{analysis.delta_tilde_0:.6g} (growth factor a = {analysis.growth_factor:.4g})"
        ),
    )
    # Every pulse above the threshold resolves to 1.
    assert all(row["final_value"] == 1 for row in rows)
    # Simulated pulse counts are within the analytical bound.
    for row in rows:
        if math.isfinite(row["bound_pulses"]):
            assert row["simulated_pulses"] <= row["bound_pulses"] + 1
    # Logarithmic divergence: each decade adds a roughly constant number of
    # pulses, so stabilisation time is unbounded as gap -> 0.
    simulated_pulses = [row["simulated_pulses"] for row in rows if row["gap"] <= 1e-2]
    increments = [b - a for a, b in zip(simulated_pulses, simulated_pulses[1:])]
    assert all(increment >= 1 for increment in increments)
    times = [row["simulated_time"] for row in rows]
    assert times[-1] > times[0]
