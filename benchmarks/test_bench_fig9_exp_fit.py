"""Experiment FIG9: fitting an exp-channel to characterised delay data.

Regenerates Fig. 9: a simple three-parameter exp-channel is fitted to the
characterised delay samples of the analog inverter; its deviation from the
measurements is small near T = 0 (the faithfulness-relevant region) and
grows with T, eventually exceeding the admissible eta band.
"""

from conftest import run_once
from repro.analog import UMC90
from repro.experiments import print_table, run_fig9


def test_fig9_exp_channel_fit(benchmark):
    result = run_once(
        benchmark,
        run_fig9,
        UMC90,
        stages=3,
        stage_index=1,
        n_widths=28,
    )
    print()
    print_table(
        result.rows(),
        columns=[
            "tau",
            "t_p",
            "v_th",
            "rms_residual",
            "max_residual",
            "coverage_all",
            "coverage_small_T",
            "max_abs_deviation",
            "max_abs_deviation_small_T",
        ],
        title="FIG9: exp-channel fitted to characterised delay samples [ps]",
    )
    fit = result.fit
    assert fit.tau > 0 and fit.t_p > 0 and 0.0 < fit.v_th < 1.0
    summary = result.summary
    # Mispredictions are minor near T = 0 ...
    assert summary["coverage_small_T"] >= 0.8
    # ... and grow with T (the paper: "excessive deviations occur for large T only").
    assert summary["max_abs_deviation"] >= summary["max_abs_deviation_small_T"]
