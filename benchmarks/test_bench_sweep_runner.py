"""Benchmark: batched sweep runner vs the naive per-scenario simulate loop.

The sweep runner amortises circuit validation and topology precomputation
across a whole scenario family; the naive loop (the pattern every seed
experiment driver used) rebuilds the circuit and revalidates it for every
single parameter point.  This benchmark drives both over the same >= 100
eta-sampled scenarios of an inverter chain, checks that they produce
identical executions, and asserts the advertised >= 2x speedup.
"""

import os
import time

from conftest import run_once
from repro.circuits import inverter_chain, simulate
from repro.core import EtaInvolutionChannel, Signal, ZeroAdversary
from repro.engine import eta_monte_carlo, run_many
from repro.experiments import print_table

N_SCENARIOS = 120
STAGES = 192


def _build_chain(pair, eta):
    return inverter_chain(
        STAGES, lambda: EtaInvolutionChannel(pair, eta, ZeroAdversary())
    )


def _scenario_circuit(scenario):
    """Rebuild the chain with the scenario's own channel instances."""
    channels = iter(scenario.channels.values())
    return inverter_chain(STAGES, lambda: next(channels))


def _compare(pair, eta):
    circuit = _build_chain(pair, eta)
    # A narrow pulse: the eta draws decide where in the chain it dies, so
    # runs exercise the cancellation machinery while the per-run event work
    # stays small relative to the (amortised vs repeated) setup work.
    width = 0.5 * pair.delta_up_inf
    inputs = {"in": Signal.pulse(1.0, width)}
    end_time = 1.0 + width + 20.0 * STAGES * pair.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, N_SCENARIOS, seed=5)

    # Warm both paths (imports, allocator, branch caches) before timing.
    run_many(circuit, scenarios[:3])
    for scenario in scenarios[:3]:
        simulate(_scenario_circuit(scenario), scenario.inputs, scenario.end_time)

    start = time.perf_counter()
    sweep = run_many(circuit, scenarios)
    batched_seconds = time.perf_counter() - start

    # Naive loop: rebuild + revalidate the circuit per scenario (the seed's
    # pattern), using the very same per-scenario channel instances so both
    # paths do identical simulation work.
    start = time.perf_counter()
    naive = [
        simulate(_scenario_circuit(scenario), scenario.inputs, scenario.end_time)
        for scenario in scenarios
    ]
    naive_seconds = time.perf_counter() - start

    matches = all(
        run.execution.output("out") == naive_execution.output("out")
        for run, naive_execution in zip(sweep, naive)
    )
    return {
        "scenarios": N_SCENARIOS,
        "stages": STAGES,
        "batched_seconds": batched_seconds,
        "naive_seconds": naive_seconds,
        "speedup": naive_seconds / batched_seconds,
        "outputs_match": matches,
    }


def test_sweep_runner_vs_naive_loop(benchmark):
    row = run_once(benchmark, _compare, *_canonical())
    print()
    print_table([row], title="SWEEP: run_many vs naive per-scenario simulate loop")
    assert row["outputs_match"]
    # Acceptance criterion: amortised validation/topology makes the batched
    # sweep at least 2x faster than the naive loop.  CI smoke runs
    # (REPRO_BENCH_SMOKE=1) only check that both paths execute and agree --
    # shared runners are too noisy for timing thresholds.
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        assert row["speedup"] >= 2.0


def _canonical():
    from repro.core import InvolutionPair, admissible_eta_bound

    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    return pair, admissible_eta_bound(pair, eta_plus=0.05)
