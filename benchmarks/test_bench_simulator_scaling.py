"""Experiment SIM: event-driven simulator throughput.

The paper positions involution delays as drop-in replacements for the delay
models of dynamic timing analysis tools; the practical requirement is that
simulation with them scales.  This benchmark measures events/second of the
event-driven simulator over chain depth, with eta-involution channels and a
random adversary (the most expensive configuration).
"""

from conftest import run_once
from repro.experiments import print_table, run_scaling


def test_simulator_scaling(benchmark):
    samples = run_once(
        benchmark,
        run_scaling,
        stage_counts=(4, 8, 16, 32),
        input_transitions=300,
    )
    rows = [
        {
            "stages": s.stages,
            "input_transitions": s.input_transitions,
            "events": s.events,
            "seconds": s.seconds,
            "events_per_second": s.events_per_second,
        }
        for s in samples
    ]
    print()
    print_table(rows, title="SIM: simulator throughput vs inverter-chain depth")
    # Events scale with circuit size; throughput stays within an order of
    # magnitude across sizes (no super-linear blow-up).
    assert rows[-1]["events"] > rows[0]["events"]
    rates = [row["events_per_second"] for row in rows]
    assert max(rates) < 50.0 * min(rates)
