"""Benchmark: the vectorized batch backend vs the sequential scalar engine.

The acceptance workload of the vector backend is the 120-scenario eta
Monte Carlo sweep (the same surviving-pulse-train configuration the
process-backend benchmark uses): one 32-stage eta-involution inverter
chain, independent per-(run, edge) seeded adversaries, real event-loop
work in every scenario.  ``run_many(backend="vector")`` compiles the
topology once into dense per-scenario arrays and evaluates all 120 runs
simultaneously; the benchmark checks bit-identical executions against
the sequential baseline and asserts the advertised >= 5x single-core
speedup (relaxed to execution+agreement in ``REPRO_BENCH_SMOKE`` CI
runs).  The measurement is recorded as the ``vector_sweep`` row of
``BENCH_engine.json``.

A second workload pins the fixpoint lockstep schedule: the same chain
terminated by a theorem9-shaped storage loop (OR2 latch fed back
through a slow buffer), so the sweep is *cyclic* and still must beat
sequential by >= 3x -- recorded as the ``vector_sweep_cyclic`` row.
"""

import os
import time

from conftest import run_once
from repro.circuits import BUF, OR2, inverter_chain
from repro.core import (
    EtaInvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    Signal,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.engine import CircuitTopology, eta_monte_carlo, run_many
from repro.experiments import print_table
from test_bench_engine_hot_path import _record

SCENARIOS = 120
STAGES = 32
PULSES = 72
if os.environ.get("REPRO_BENCH_SMOKE"):
    SCENARIOS = 24
    PULSES = 24


def _sweep_workload():
    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    eta = admissible_eta_bound(pair, eta_plus=0.05)
    circuit = inverter_chain(
        STAGES, lambda: EtaInvolutionChannel(pair, eta, ZeroAdversary())
    )
    unit = pair.delta_up_inf + pair.delta_down_inf
    inputs = {
        "in": Signal.pulse_train(
            1.0, [2.0 * unit] * PULSES, [3.0 * unit] * (PULSES - 1)
        )
    }
    last = 1.0 + 5.0 * unit * PULSES
    end_time = last + 10.0 * STAGES * pair.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, SCENARIOS, seed=5)
    return CircuitTopology(circuit), scenarios


def _cyclic_sweep_workload():
    """The chain workload terminated by a theorem9-shaped storage loop.

    The OR2 latch captures the surviving pulse train and holds it
    through a slow feedback buffer (two 45-unit pure delays), so the
    circuit is genuinely cyclic -- the vector backend must schedule the
    loop with its iterate-to-fixpoint pass -- while the bulk of the
    event traffic still flows through the acyclic chain prefix.
    """
    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    eta = admissible_eta_bound(pair, eta_plus=0.05)
    circuit = inverter_chain(
        STAGES, lambda: EtaInvolutionChannel(pair, eta, ZeroAdversary())
    )
    circuit.add_gate("latch", OR2, initial_value=0)
    circuit.add_gate("hold", BUF, initial_value=0)
    circuit.add_output("stored")
    circuit.connect(
        f"inv{STAGES}",
        "latch",
        EtaInvolutionChannel(pair, eta, ZeroAdversary()),
        pin=0,
        name="into_loop",
    )
    circuit.connect("latch", "hold", PureDelayChannel(45.0), pin=0, name="fwd")
    circuit.connect("hold", "latch", PureDelayChannel(45.0), pin=1, name="back")
    circuit.connect("latch", "stored")

    unit = pair.delta_up_inf + pair.delta_down_inf
    inputs = {
        "in": Signal.pulse_train(
            1.0, [2.0 * unit] * PULSES, [3.0 * unit] * (PULSES - 1)
        )
    }
    last = 1.0 + 5.0 * unit * PULSES
    end_time = last + 10.0 * STAGES * pair.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, SCENARIOS, seed=5)
    return CircuitTopology(circuit), scenarios


def _compare_backends(topology, scenarios):

    # Warm both paths (imports, compiled tables, allocator) before timing.
    run_many(topology, scenarios[:3], backend="sequential")
    run_many(topology, scenarios[:3], backend="vector")

    # Interleave the timed rounds and take per-backend minima, so a
    # transient slowdown of the host hits both backends instead of
    # biasing one timing block.
    repeats = 1 if os.environ.get("REPRO_BENCH_SMOKE") else 3
    vector_seconds = sequential_seconds = float("inf")
    vector = sequential = None
    for _ in range(repeats):
        start = time.perf_counter()
        vector = run_many(topology, scenarios, backend="vector")
        vector_seconds = min(vector_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        sequential = run_many(topology, scenarios, backend="sequential")
        sequential_seconds = min(sequential_seconds, time.perf_counter() - start)

    matches = vector.backend == "vector" and all(
        seq.execution.node_signals == vec.execution.node_signals
        and seq.execution.edge_signals == vec.execution.edge_signals
        and seq.execution.event_count == vec.execution.event_count
        for seq, vec in zip(sequential, vector)
    )
    return {
        "backend": "vector",
        "scenarios": SCENARIOS,
        "stages": STAGES,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential_seconds,
        "vector_seconds": vector_seconds,
        "speedup": sequential_seconds / vector_seconds,
        "outputs_match": matches,
    }


def _compare_vector_backend():
    row = _compare_backends(*_sweep_workload())
    _record("vector_sweep", row)
    return row


def _compare_vector_backend_cyclic():
    row = _compare_backends(*_cyclic_sweep_workload())
    row["cyclic"] = True
    _record("vector_sweep_cyclic", row)
    return row


def test_vector_sweep_vs_sequential(benchmark):
    row = run_once(benchmark, _compare_vector_backend)
    print()
    print_table([row], title="SWEEP: run_many vector backend vs sequential")
    assert row["outputs_match"]
    # Acceptance criterion: >= 5x on the 120-scenario eta MC sweep, on a
    # single core (vectorization, not parallelism).  CI smoke runs only
    # check execution + bit-identical agreement -- shared runners are too
    # noisy for timing thresholds.
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        assert row["speedup"] >= 5.0


def test_vector_sweep_cyclic_vs_sequential(benchmark):
    row = run_once(benchmark, _compare_vector_backend_cyclic)
    print()
    print_table(
        [row], title="SWEEP: vector backend vs sequential (storage loop)"
    )
    assert row["outputs_match"]
    # The fixpoint lockstep schedule must keep most of the acyclic
    # advantage on the paper's cyclic centerpiece shape: >= 3x.
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        assert row["speedup"] >= 3.0
