"""Experiment THM9: regimes of the fed-back OR storage loop.

Regenerates the content of Theorem 9 as a table: for a sweep of input pulse
lengths and a set of adversaries, the event-driven simulation of the
storage loop is classified against the analytical regime boundaries
``delta_up_inf - delta_min - eta+ - eta-`` (cancelled) and
``delta_up_inf + eta+`` (latched), and the Lemma 5/6 bounds on the
oscillating pulse trains are checked.
"""

import numpy as np

from conftest import run_once
from repro.experiments import default_adversaries, print_table, run_theorem9


def test_theorem9_regime_sweep(benchmark, exp_pair, eta_small):
    result = run_once(
        benchmark,
        run_theorem9,
        exp_pair,
        eta_small,
        adversaries=default_adversaries(),
        end_time=400.0,
    )
    print()
    print_table([result.analysis_summary], title="THM9: analytical quantities of the storage loop")
    rows = result.rows()
    print_table(
        rows,
        columns=[
            "delta_0",
            "adversary",
            "regime",
            "final_value",
            "n_pulses",
            "max_up_time",
            "max_duty_cycle",
            "stabilization_time",
            "consistent",
        ],
        title="THM9: simulated storage-loop behaviour vs analytical regime",
    )
    assert result.all_consistent

    # Aggregate view per regime (the "table" the theorem describes).
    summary_rows = []
    for regime in ("cancelled", "marginal", "latched"):
        in_regime = [r for r in rows if r["regime"] == regime]
        summary_rows.append(
            {
                "regime": regime,
                "observations": len(in_regime),
                "resolved_to_1": sum(r["final_value"] == 1 for r in in_regime),
                "resolved_to_0": sum(r["final_value"] == 0 for r in in_regime),
                "max_loop_pulse": max((r["max_up_time"] for r in in_regime), default=0.0),
            }
        )
    print_table(summary_rows, title="THM9: aggregate per regime")
    by_regime = {row["regime"]: row for row in summary_rows}
    assert by_regime["cancelled"]["resolved_to_1"] == 0
    assert by_regime["latched"]["resolved_to_0"] == 0
    assert by_regime["marginal"]["observations"] > 0
    # Any oscillation in the marginal regime respects the Lemma 5 bound.
    analysis_delta = result.analysis_summary["Delta"]
    for row in rows:
        if row["regime"] == "marginal" and row["final_value"] == 0:
            assert row["max_up_time"] <= analysis_delta + 1e-6
