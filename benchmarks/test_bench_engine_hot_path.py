"""Benchmark: the optimized event loop and the process-based sweep backend.

Two measurements, both recorded to ``BENCH_engine.json`` at the repository
root (the perf trajectory file tracked by CI):

1. **Event-loop hot path** -- the optimized engine (deque-backed maturity
   frontier, event-id index, scheduler-side tombstone skipping, integer
   dispatch tables, fused allocation-lean ``feed``) against the verbatim
   pre-optimization event loop (``_legacy_engine``) on a dense-transition
   delay-line chain whose pulses die at depths proportional to their
   width.  The channels are near-symmetric slow pure-delay channels, so
   every kernel holds a *long pending queue* (thousands of scheduled
   deliveries in flight) while narrow pulses keep *cancelling* against it
   -- exactly the regime where the legacy kernel rebuilt the whole pending
   list per cancellation (O(queue) each, O(n^2) over a run) and the
   optimized kernel pops a one-entry suffix.

2. **Process sweep backend** -- ``run_many(backend="process",
   max_workers=4)`` against the sequential baseline on a 120-scenario eta
   Monte Carlo sweep, with a bit-identical-executions check.  Real
   multi-core scaling needs real cores: the >= 2.5x assertion is gated on
   ``os.cpu_count() >= 4`` (and skipped in ``REPRO_BENCH_SMOKE`` CI runs),
   but the measurement is recorded either way, together with the core
   count it was taken on.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest
from conftest import run_once
from repro.circuits import BUF, Circuit, inverter_chain
from repro.core import (
    EtaInvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    Signal,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.engine import CircuitTopology, Engine, eta_monte_carlo, run_many
from repro.experiments import print_table

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

# --- event-loop workload: dense transitions, many cancellations, long
# --- pending queues (see module docstring)
HOT_STAGES = 4
HOT_RISE = 16_000.0
HOT_FALL = HOT_RISE - 1.0  # pulse width shrinks by 1.0 per stage
HOT_PULSES = 3_000
HOT_WIDTH_MAX = 3.5  # widths in [1, 3.5] => pulses die within HOT_STAGES

# --- sweep workload: the acceptance-criterion eta Monte Carlo sweep.
# Dimensioned so per-run event-loop work dominates the per-sweep process
# overhead (pool fork, scenario shipping, result unpickling): a long
# surviving pulse train through a 32-stage chain gives tens of milliseconds
# of event-loop work per scenario against ~10 ms of per-scenario shipping.
SWEEP_SCENARIOS = 120
SWEEP_STAGES = 32
SWEEP_PULSES = 72
SWEEP_WORKERS = 4
if os.environ.get("REPRO_BENCH_SMOKE"):
    # CI smoke only checks that both backends execute and agree; a small
    # sweep keeps the (contended, core-starved) runners fast.
    SWEEP_SCENARIOS = 24
    SWEEP_PULSES = 24


def _record(section: str, row: dict) -> None:
    """Merge one result row into BENCH_engine.json (the perf trajectory)."""
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    data.setdefault("benchmark", "engine")
    data.setdefault("results", {})
    data["results"][section] = row
    data["environment"] = {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": bool(os.environ.get("REPRO_BENCH_SMOKE")),
    }
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


# --------------------------------------------------------------------------- #
# 1. Event-loop hot path vs the pre-optimization engine
# --------------------------------------------------------------------------- #


def _delay_line_chain() -> Circuit:
    circuit = Circuit("delay-line")
    circuit.add_input("in")
    previous = "in"
    for i in range(HOT_STAGES):
        gate = f"g{i}"
        circuit.add_gate(gate, BUF, initial_value=0)
        circuit.connect(
            previous, gate, PureDelayChannel(HOT_RISE, HOT_FALL), pin=0, name=f"ch{i}"
        )
        previous = gate
    circuit.add_output("out")
    circuit.connect(previous, "out")
    return circuit


def _hot_path_workload():
    # Widths in [1, HOT_WIDTH_MAX]: a pulse of width w shrinks by 1 per
    # stage and dies (its rise transport-cancelled) at stage floor(w); the
    # dense gaps keep thousands of deliveries pending per kernel.
    widths = [
        1.0 + (HOT_WIDTH_MAX - 1.0) * ((i * 37) % 100) / 100.0
        for i in range(HOT_PULSES)
    ]
    gaps = [1.0 + ((i * 13) % 7) * 0.25 for i in range(HOT_PULSES - 1)]
    stimulus = Signal.pulse_train(1.0, widths, gaps)
    end_time = 1.0 + sum(widths) + sum(gaps) + (HOT_RISE + 1.0) * HOT_STAGES
    return {"in": stimulus}, end_time


def _compare_event_loops():
    from _legacy_engine import LegacyEngine, LegacyTopology

    circuit = _delay_line_chain()
    inputs, end_time = _hot_path_workload()
    optimized = Engine(CircuitTopology(circuit), max_events=10_000_000)
    legacy = LegacyEngine(LegacyTopology(circuit), max_events=10_000_000)

    new_execution = optimized.run(inputs, end_time)  # also warms both paths
    old_execution = legacy.run(inputs, end_time)
    matches = new_execution.output("out") == old_execution.output("out") and all(
        new_execution.edge_signals[e] == old_execution.edge_signals[e]
        for e in new_execution.edge_signals
    )
    events = new_execution.event_count
    del new_execution, old_execution  # keep timed runs free of dead weight

    # Interleave the timed rounds (optimized, legacy, optimized, ...) and
    # take per-engine minima, so a transient slowdown of the host hits both
    # engines instead of biasing one timing block.
    repeats = 1 if os.environ.get("REPRO_BENCH_SMOKE") else 4
    optimized_seconds = legacy_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        optimized.run(inputs, end_time)
        optimized_seconds = min(optimized_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        legacy.run(inputs, end_time)
        legacy_seconds = min(legacy_seconds, time.perf_counter() - start)
    row = {
        "backend": "in-process",
        "cpu_count": os.cpu_count(),
        "stages": HOT_STAGES,
        "pulses": HOT_PULSES,
        "events": events,
        "optimized_seconds": optimized_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / optimized_seconds,
        "outputs_match": matches,
    }
    _record("event_loop_hot_path", row)
    return row


def test_event_loop_vs_legacy(benchmark):
    row = run_once(benchmark, _compare_event_loops)
    print()
    print_table([row], title="ENGINE: optimized event loop vs pre-optimization loop")
    assert row["outputs_match"]
    # Acceptance criterion: >= 2x on the dense-transition workload.  CI
    # smoke runs (REPRO_BENCH_SMOKE=1) only check execution + agreement --
    # shared runners are too noisy for timing thresholds.
    if not os.environ.get("REPRO_BENCH_SMOKE"):
        assert row["speedup"] >= 2.0


# --------------------------------------------------------------------------- #
# 2. Process-based sweep backend vs sequential
# --------------------------------------------------------------------------- #


def _compare_sweep_backends():
    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    eta = admissible_eta_bound(pair, eta_plus=0.05)
    circuit = inverter_chain(
        SWEEP_STAGES, lambda: EtaInvolutionChannel(pair, eta, ZeroAdversary())
    )
    # A well-separated surviving pulse train: every pulse traverses the
    # whole chain, so each run does real event-loop work on every stage.
    unit = pair.delta_up_inf + pair.delta_down_inf
    inputs = {
        "in": Signal.pulse_train(
            1.0, [2.0 * unit] * SWEEP_PULSES, [3.0 * unit] * (SWEEP_PULSES - 1)
        )
    }
    last = 1.0 + 5.0 * unit * SWEEP_PULSES
    end_time = last + 10.0 * SWEEP_STAGES * pair.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, SWEEP_SCENARIOS, seed=5)
    topology = CircuitTopology(circuit)

    # Warm both paths (imports, allocator, worker pool fork) before timing.
    run_many(topology, scenarios[:3])
    run_many(topology, scenarios[:3], max_workers=SWEEP_WORKERS, backend="process")

    start = time.perf_counter()
    sequential = run_many(topology, scenarios)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    process = run_many(
        topology, scenarios, max_workers=SWEEP_WORKERS, backend="process"
    )
    process_seconds = time.perf_counter() - start

    matches = all(
        seq.execution.node_signals == proc.execution.node_signals
        and seq.execution.edge_signals == proc.execution.edge_signals
        for seq, proc in zip(sequential, process)
    )
    row = {
        "backend": "process",
        "scenarios": SWEEP_SCENARIOS,
        "stages": SWEEP_STAGES,
        "workers": SWEEP_WORKERS,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential_seconds,
        "process_seconds": process_seconds,
        "speedup": sequential_seconds / process_seconds,
        "outputs_match": matches,
    }
    _record("process_sweep", row)
    return row


def test_process_sweep_vs_sequential(benchmark):
    # A process-pool-vs-sequential measurement on a single core only
    # records pickling overhead; skip instead of writing a misleading
    # sub-1x number into the perf trajectory.
    if (os.cpu_count() or 1) < 2:
        pytest.skip("process-sweep benchmark needs >= 2 CPUs to be meaningful")
    row = run_once(benchmark, _compare_sweep_backends)
    print()
    print_table([row], title="SWEEP: run_many process backend vs sequential")
    assert row["outputs_match"]
    # Acceptance criterion: >= 2.5x with 4 workers.  Multi-core scaling
    # needs real cores, so the threshold only applies where the hardware
    # can express it (and never in smoke mode); the measured value is
    # recorded to BENCH_engine.json regardless.
    if not os.environ.get("REPRO_BENCH_SMOKE") and (os.cpu_count() or 1) >= 4:
        assert row["speedup"] >= 2.5
