"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
per-experiment index in DESIGN.md) and prints the reproduced rows; run
with ``pytest benchmarks/ --benchmark-only -s`` to see them.  Expensive
experiment drivers are executed exactly once via ``benchmark.pedantic``.
"""

from __future__ import annotations

import pytest

from repro.core import InvolutionPair, admissible_eta_bound


@pytest.fixture(scope="session")
def exp_pair() -> InvolutionPair:
    """Canonical symmetric exp-channel pair used by the analytic benchmarks."""
    return InvolutionPair.exp_channel(tau=1.0, t_p=0.5)


@pytest.fixture(scope="session")
def eta_small(exp_pair):
    """The eta bound used by the storage-loop benchmarks (eta_plus = 0.05)."""
    return admissible_eta_bound(exp_pair, eta_plus=0.05)


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
