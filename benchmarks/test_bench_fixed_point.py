"""Experiment LEM5: fixed-point quantities of the worst-case pulse train.

Tabulates tau, Delta, P, gamma and Delta_0_tilde (Lemmas 5, 6 and 8) over a
sweep of the noise bound eta_plus (with eta_minus maximal under constraint
(C)), and benchmarks the fixed-point solver itself.
"""

import numpy as np

from repro.core import EtaBound
from repro.experiments import print_table, run_lemma5_sweep
from repro.spf import SPFAnalysis

ETA_PLUS_SWEEP = [0.0, 0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.2]


def test_lemma5_quantities_vs_eta(benchmark, exp_pair):
    rows = benchmark(run_lemma5_sweep, exp_pair, ETA_PLUS_SWEEP)
    print()
    print_table(
        rows,
        columns=[
            "eta_plus",
            "eta_minus",
            "constraint_C_margin",
            "tau",
            "Delta",
            "gamma",
            "Delta_0_tilde",
            "cancel_threshold",
            "latch_threshold",
        ],
        title="LEM5: worst-case pulse-train quantities vs eta_plus (eta_minus maximal)",
    )
    # Lemma 5/6 invariants across the sweep.
    for row in rows:
        assert row["Delta"] < row["delta_min"]
        assert 0.0 < row["gamma"] < 1.0
        assert row["eta_plus"] + row["delta_min"] < row["tau"]
        assert row["cancel_threshold"] < row["Delta_0_tilde"] < row["latch_threshold"]
    # The period grows with eta_plus (later rising transitions).
    taus = [row["tau"] for row in rows]
    assert all(b > a for a, b in zip(taus, taus[1:]))


def test_fixed_point_solver_speed(benchmark, exp_pair, eta_small):
    """Time a full analysis construction including both root solves."""

    def solve():
        analysis = SPFAnalysis(exp_pair, eta_small)
        return analysis.tau, analysis.delta_tilde_0

    tau, delta_tilde = benchmark(solve)
    print(f"\nLEM5 solver: tau = {tau:.6g}, Delta_0_tilde = {delta_tilde:.6g}")
    assert tau > 0 and delta_tilde > 0
