"""Ablation benchmarks for the design choices called out in DESIGN.md §7.

ABL1  Cancellation resolvers: transport resolution vs the O(n) record sweep
      vs the literal O(n^2) pairwise reference -- equivalence of the
      resulting traces on channel-generated schedules, and their cost.
ABL2  Adversary choice in the storage loop: the analytical worst case
      really is the worst case -- no random adversary produces a longer
      surviving pulse train for a sub-threshold input pulse.
ABL3  Analog integration step: halving the time step changes characterised
      delays only marginally (the exponential integrator is step-robust).
"""

import numpy as np

from conftest import run_once
from repro.analog import AnalogInverterChain, UMC90
from repro.circuits import Simulator, fed_back_or
from repro.core import (
    EtaInvolutionChannel,
    InvolutionChannel,
    RandomAdversary,
    Signal,
    WorstCaseAdversary,
)
from repro.core.channel import pending_to_signal
from repro.experiments import print_table
from repro.fitting import CharacterizationDriver
from repro.spf import SPFAnalysis


def test_ablation_cancellation_resolvers(benchmark, exp_pair):
    """ABL1: the three cancellation resolvers agree on channel schedules."""
    channel = InvolutionChannel(exp_pair)
    train = Signal.pulse_train(1.0, [0.85] * 2000, [0.8] * 1999)
    pending = channel.pending_transitions(train)
    probes = list(np.linspace(0.0, train.stabilization_time() + 5.0, 500))

    def resolve_all():
        transport = pending_to_signal(0, list(pending), mode="transport")
        record = pending_to_signal(0, list(pending), mode="record")
        pairwise = pending_to_signal(0, list(pending), mode="pairwise")
        return transport, record, pairwise

    transport, record, pairwise = benchmark(resolve_all)
    rows = [
        {"resolver": "transport", "output_transitions": len(transport)},
        {"resolver": "record (two-sided sweep)", "output_transitions": len(record)},
        {"resolver": "pairwise reference (O(n^2))", "output_transitions": len(pairwise)},
    ]
    print()
    print_table(rows, title="ABL1: cancellation resolvers on a 4000-transition schedule")
    assert record == pairwise
    assert transport.values_at(probes) == record.values_at(probes)


def test_ablation_worst_case_adversary_is_worst(benchmark, exp_pair, eta_small):
    """ABL2: no sampled adversary outlives the analytical worst case."""
    analysis = SPFAnalysis(exp_pair, eta_small)
    delta_0 = analysis.delta_tilde_0 - 0.02  # dies under the worst case

    def run():
        outcomes = []
        factories = {"worst": WorstCaseAdversary} | {
            f"random{seed}": (lambda seed=seed: RandomAdversary(seed=seed))
            for seed in range(10)
        }
        for name, factory in factories.items():
            channel = EtaInvolutionChannel(exp_pair, eta_small, factory())
            circuit = fed_back_or(channel)
            execution = Simulator(circuit, max_events=300_000).run(
                {"i": Signal.pulse(0.0, delta_0)}, 300.0
            )
            out = execution.output_signals["or_out"]
            outcomes.append(
                {
                    "adversary": name,
                    "loop_pulses": len(out.pulses()) - 1,
                    "final_value": out.final_value,
                    "max_loop_pulse": max(
                        (p.length for p in out.pulses()[1:]), default=0.0
                    ),
                }
            )
        return outcomes

    outcomes = run_once(benchmark, run)
    print()
    print_table(
        outcomes,
        title=f"ABL2: storage-loop outcomes for Delta_0 = {delta_0:.4g} (below Delta_0_tilde)",
    )
    worst = next(o for o in outcomes if o["adversary"] == "worst")
    for outcome in outcomes:
        if outcome["final_value"] == 0:
            # Lemma 5: any surviving oscillation is bounded by Delta.
            assert outcome["max_loop_pulse"] <= analysis.delta_bound + 1e-9
    # The worst-case adversary minimises the surviving up-times.
    assert worst["max_loop_pulse"] <= max(o["max_loop_pulse"] for o in outcomes) + 1e-12


def test_ablation_analog_time_step(benchmark):
    """ABL3: characterised delays are robust to the integration step."""

    def characterise(points_per_tau):
        chain = AnalogInverterChain(UMC90, stages=2)
        driver = CharacterizationDriver(chain, stage_index=1)
        # Temporarily adjust the grid density via the driver's chain.
        original = chain.recommended_time_grid

        def denser(duration, **kwargs):
            kwargs["points_per_tau"] = points_per_tau
            return original(duration, **kwargs)

        chain.recommended_time_grid = denser  # type: ignore[assignment]
        widths = np.linspace(8.0, 80.0, 12)
        measurement = driver.measure(widths)
        T, delta = measurement.falling()
        return np.interp([10.0, 30.0, 60.0], T, delta)

    def run():
        default_grid = characterise(40.0)  # library default
        fine_grid = characterise(120.0)
        return default_grid, fine_grid

    default_grid, fine_grid = run_once(benchmark, run)
    rows = [
        {"T": T, "delta_default_grid": c, "delta_fine_grid": f, "difference": abs(c - f)}
        for T, c, f in zip([10.0, 30.0, 60.0], default_grid, fine_grid)
    ]
    print()
    print_table(rows, title="ABL3: characterised delta_down vs integration step [ps]")
    # The default grid (40 points per tau) tracks a 3x finer grid to within
    # half a picosecond (a few percent of the stage delay); much coarser
    # grids start to distort the large-T tail, which is why 40 is the default.
    assert all(row["difference"] < 0.5 for row in rows)
