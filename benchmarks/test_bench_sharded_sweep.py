"""Benchmark: checkpointed sharded sweeps vs the plain sharded runner.

The resilience layer's acceptance criterion is that fault tolerance is
close to free: running the 120-scenario eta Monte Carlo sweep (the same
surviving-pulse-train workload the vector benchmark uses) through
``run_many(backend="auto", checkpoint=...)`` must cost at most 10% more
than the identical sharded sweep without a checkpoint store, while a
*resume* against the finished store must skip every chunk and return
bit-identical executions.  The checkpoint path stays cheap because chunk
keying pools the shared fingerprint tables, signals are packed straight
from the vector backend's result arrays, and artifact encoding+writing
happens on a background writer thread.  The measurement is recorded as
the ``sharded_sweep`` row of ``BENCH_engine.json``.

On multi-core hosts the benchmark also records the checkpointed
``backend="process"`` sweep, where the per-chunk vector dispatch and
process parallelism multiply; single-core runners (CI containers) skip
that leg rather than pretend to measure parallelism.
"""

import os
import shutil
import tempfile
import time

from conftest import run_once
from repro.engine import run_many
from repro.experiments import print_table
from test_bench_engine_hot_path import _record
from test_bench_vector_backend import SCENARIOS, STAGES, _sweep_workload

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))


def _executions_identical(a, b) -> bool:
    return all(
        ra.execution.node_signals == rb.execution.node_signals
        and ra.execution.edge_signals == rb.execution.edge_signals
        and ra.execution.event_count == rb.execution.event_count
        for ra, rb in zip(a, b)
    )


def _compare_sharded_sweep():
    topology, scenarios = _sweep_workload()
    store = tempfile.mkdtemp(prefix="repro-bench-ckpt-")
    try:
        # Warm imports, compiled tables and the allocator before timing.
        run_many(topology, scenarios[:3], backend="auto")
        run_many(topology, scenarios[:3], backend="auto", checkpoint=store)
        shutil.rmtree(store, ignore_errors=True)

        # Interleave the timed rounds and take per-leg minima, so a
        # transient slowdown of the host hits both legs instead of
        # biasing one timing block.
        repeats = 1 if SMOKE else 4
        plain_seconds = fresh_seconds = float("inf")
        plain = fresh = None
        for _ in range(repeats):
            start = time.perf_counter()
            plain = run_many(topology, scenarios, backend="auto")
            plain_seconds = min(plain_seconds, time.perf_counter() - start)
            shutil.rmtree(store, ignore_errors=True)
            start = time.perf_counter()
            fresh = run_many(topology, scenarios, backend="auto", checkpoint=store)
            fresh_seconds = min(fresh_seconds, time.perf_counter() - start)

        # Resume against the store the last fresh run just filled: every
        # chunk must come back from the checkpoint, bit-identical.
        resume_seconds = float("inf")
        resume = None
        for _ in range(max(1, repeats - 1)):
            start = time.perf_counter()
            resume = run_many(topology, scenarios, backend="auto", checkpoint=store)
            resume_seconds = min(resume_seconds, time.perf_counter() - start)

        matches = (
            _executions_identical(plain, fresh)
            and _executions_identical(plain, resume)
            and fresh.shard_report.computed == len(fresh.shard_report.records)
            and resume.shard_report.resumed == len(resume.shard_report.records)
        )
        row = {
            "backend": "auto (sharded)",
            "scenarios": SCENARIOS,
            "stages": STAGES,
            "cpu_count": os.cpu_count(),
            "chunks": len(fresh.shard_report.records),
            "sharded_seconds": plain_seconds,
            "checkpoint_seconds": fresh_seconds,
            "resume_seconds": resume_seconds,
            "checkpoint_overhead": fresh_seconds / plain_seconds - 1.0,
            "outputs_match": matches,
        }

        if (os.cpu_count() or 1) >= 2:
            start = time.perf_counter()
            shutil.rmtree(store, ignore_errors=True)
            procs = run_many(
                topology, scenarios, backend="process", checkpoint=store
            )
            row["process_seconds"] = time.perf_counter() - start
            row["process_outputs_match"] = _executions_identical(plain, procs)

        _record("sharded_sweep", row)
        return row
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_sharded_checkpoint_overhead(benchmark):
    row = run_once(benchmark, _compare_sharded_sweep)
    print()
    print_table([row], title="SWEEP: sharded checkpoint overhead and resume")
    assert row["outputs_match"]
    assert row.get("process_outputs_match", True)
    # Acceptance criterion: checkpointing costs <= 10% over the identical
    # sharded sweep, and a full resume never recomputes.  CI smoke runs
    # only check execution + bit-identical agreement -- shared runners
    # are too noisy for timing thresholds.
    if not SMOKE:
        assert row["checkpoint_overhead"] <= 0.10
        assert row["resume_seconds"] < row["checkpoint_seconds"]
