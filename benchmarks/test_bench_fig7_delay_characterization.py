"""Experiment FIG7: delta(T) characterisation across supply voltages.

Regenerates the content of Fig. 7 (measured delta_down of the UMC-90
inverter for V_DD from 0.3/0.4/0.6...1.0 V) on the analog substrate.  The
absolute values are in the substrate's own picosecond scale; the reproduced
*shape* is what matters: concave saturating curves ordered by V_DD, with
delays exploding as V_DD approaches the transistor threshold.
"""

import numpy as np

from conftest import run_once
from repro.analog import UMC90
from repro.experiments import print_table, run_fig7

#: The supply sweep of Fig. 7 (0.3 V is very close to the device threshold
#: voltage of the substrate, as in the paper).
VDD_LEVELS = (0.4, 0.6, 0.7, 0.8, 1.0)


def test_fig7_delta_down_vs_vdd(benchmark):
    result = run_once(
        benchmark,
        run_fig7,
        UMC90,
        VDD_LEVELS,
        stages=3,
        stage_index=1,
        n_widths=20,
        rising_output=False,
    )
    print()
    print_table(result.rows(), title="FIG7: characterised delta_down(T) per supply voltage [ps]")
    # Reproduce selected points of each curve (like reading values off Fig. 7).
    sample_rows = []
    for vdd in sorted(result.curves):
        curve = result.curves[vdd]
        probes = np.percentile(curve.T, [5, 25, 50, 90])
        sample_rows.append(
            {
                "vdd": vdd,
                "delta(T@5%)": float(np.interp(probes[0], curve.T, curve.delta)),
                "delta(T@25%)": float(np.interp(probes[1], curve.T, curve.delta)),
                "delta(T@50%)": float(np.interp(probes[2], curve.T, curve.delta)),
                "delta(T@90%)": float(np.interp(probes[3], curve.T, curve.delta)),
            }
        )
    print_table(sample_rows, title="FIG7: delta_down at representative T percentiles [ps]")

    # Shape checks reported by the paper's figure: delays ordered by V_DD and
    # every curve increasing in T.
    assert result.is_monotone_in_vdd()
    delays = result.saturation_delays()
    assert delays[min(VDD_LEVELS)] > 2.0 * delays[max(VDD_LEVELS)]
    for curve in result.curves.values():
        coarse = np.interp(
            np.linspace(curve.T[0], curve.T[-1], 6), curve.T, curve.delta
        )
        assert all(b >= a - 0.05 for a, b in zip(coarse, coarse[1:]))
