"""Experiments FIG8a/b/c: deviation coverage under variations.

Regenerates the three sub-figures of Fig. 8: the deviation ``D`` between
the nominal-model prediction and the "real" (analog-substrate) crossings
under (a) 1 % supply ripple, (b) +10 % transistor width and (c) -10 %
transistor width, together with the admissible eta band.  The reproduced
qualitative findings:

* (a) and (b) are covered by the band (completely for small ``T``),
* (c) exceeds the band as ``T`` grows,
* |D| grows with ``T`` in all scenarios, so coverage is best in the
  small-``T`` region that matters for faithfulness.
"""

from conftest import run_once
from repro.analog import UMC90
from repro.experiments import print_table, run_fig8


def test_fig8_deviation_coverage(benchmark):
    result = run_once(
        benchmark,
        run_fig8,
        UMC90,
        stages=3,
        stage_index=1,
        n_widths=24,
        seed=2018,
    )
    print()
    print(
        f"FIG8: eta band = [-{result.scenarios['supply_1pct'].analysis.eta.eta_minus:.3g}, "
        f"+{result.eta_plus:.3g}] ps around the nominal characterised delay"
    )
    print_table(
        result.rows(),
        columns=[
            "scenario",
            "n_samples",
            "coverage_all",
            "coverage_small_T",
            "max_abs_deviation",
            "max_abs_deviation_small_T",
            "small_T_threshold",
        ],
        title="FIG8: deviation coverage per variation scenario",
    )

    supply = result.scenarios["supply_1pct"].summary
    wide = result.scenarios["width_plus10"].summary
    narrow = result.scenarios["width_minus10"].summary
    # (a) small supply ripple: (essentially) fully covered at small T.
    assert supply["coverage_small_T"] >= 0.85
    assert supply["coverage_all"] >= narrow["coverage_all"]
    # (b)/(c): the wider-transistor case is covered at least as well as the
    # narrower one, which exceeds the band for large T.
    assert wide["coverage_all"] >= narrow["coverage_all"]
    assert narrow["coverage_all"] < 1.0
    assert narrow["coverage_small_T"] >= 0.9
    # |D| grows with T in every scenario.
    for scenario in result.scenarios.values():
        summary = scenario.summary
        assert summary["max_abs_deviation"] >= summary["max_abs_deviation_small_T"]
