"""Experiment FIG4: eta-involution channel output variability.

Reproduces the behaviour of Fig. 4: the same input trace produces different
output traces under different adversarial choices -- pulses can be
stretched, shifted, and even "de-cancelled" relative to the deterministic
involution prediction (dotted transitions in the figure).
"""

import numpy as np

from repro.core import (
    BestCaseAdversary,
    DeCancelAdversary,
    EtaBound,
    EtaInvolutionChannel,
    RandomAdversary,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
)
from repro.experiments import print_table


def test_fig4_adversary_variability(benchmark, exp_pair):
    """Fig. 4: per-adversary output traces for the same two-pulse input."""
    eta = EtaBound(0.2, 0.2)
    # Two pulses: the second is marginal (the deterministic channel cancels it,
    # admissible eta shifts can rescue it -- the "de-cancelled" pulse of Fig. 4).
    signal = Signal.pulse_train(0.0, [2.0, 0.42], [2.0])
    adversaries = {
        "zero (deterministic)": ZeroAdversary(),
        "worst-case": WorstCaseAdversary(),
        "best-case": BestCaseAdversary(),
        "de-cancel": DeCancelAdversary(),
        "random(seed=4)": RandomAdversary(seed=4),
    }

    def run():
        rows = []
        for name, adversary in adversaries.items():
            channel = EtaInvolutionChannel(exp_pair, eta, adversary)
            out = channel(signal)
            rows.append(
                {
                    "adversary": name,
                    "output_transitions": len(out),
                    "surviving_pulses": len(out.pulses()),
                    "first_transition": out[0].time if len(out) else float("nan"),
                    "last_transition": out.stabilization_time(),
                }
            )
        return rows

    rows = benchmark(run)
    print()
    print_table(rows, title="FIG4: adversarial choice changes the output trace")
    by_name = {row["adversary"]: row for row in rows}
    # The de-cancel adversary rescues the second pulse that the deterministic
    # channel cancels; the worst-case adversary does not.
    assert by_name["de-cancel"]["surviving_pulses"] > by_name["zero (deterministic)"]["surviving_pulses"]
    # Worst-case delays the first rising transition by eta_plus.
    assert by_name["worst-case"]["first_transition"] > by_name["zero (deterministic)"]["first_transition"]


def test_fig4_eta_channel_throughput(benchmark, exp_pair, eta_small):
    """Eta-channel evaluation throughput with a random adversary."""
    channel = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=1))
    train = Signal.pulse_train(1.0, [0.9] * 4000, [0.8] * 3999)
    out = benchmark(channel, train)
    print(f"\nFIG4 throughput: {len(train)} transitions -> {len(out)} output transitions")
    assert len(out) <= len(train)
