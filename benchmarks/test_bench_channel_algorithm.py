"""Experiment FIG2: the involution channel algorithm on pulse trains.

Reproduces the behaviour illustrated in Fig. 2 of the paper (pulse
attenuation and cancellation by a single-history channel) and benchmarks
the throughput of the channel-function evaluation, which underlies every
other experiment.
"""

import numpy as np

from repro.core import InvolutionChannel, InvolutionPair, Signal
from repro.experiments import print_table


def _glitch_train(n_pulses: int, width: float, gap: float) -> Signal:
    return Signal.pulse_train(1.0, [width] * n_pulses, [gap] * (n_pulses - 1))


def test_fig2_pulse_attenuation_rows(benchmark, exp_pair):
    """Fig. 2: output pulse width vs input pulse width (attenuation curve)."""
    channel = InvolutionChannel(exp_pair)
    widths = np.linspace(0.5, 4.0, 15)

    def run():
        rows = []
        for width in widths:
            out = channel(Signal.pulse(0.0, float(width)))
            rows.append(
                {
                    "input_width": float(width),
                    "output_width": (out[1].time - out[0].time) if len(out) == 2 else 0.0,
                    "cancelled": out.is_zero(),
                }
            )
        return rows

    rows = benchmark(run)
    print()
    print_table(rows, title="FIG2: single-pulse attenuation through an involution exp-channel")
    cancelled = [r for r in rows if r["cancelled"]]
    surviving = [r for r in rows if not r["cancelled"]]
    assert cancelled and surviving
    assert all(r["output_width"] < r["input_width"] for r in surviving)


def test_fig2_glitch_train_throughput(benchmark, exp_pair):
    """Channel-function throughput on a long glitch train (10k transitions)."""
    channel = InvolutionChannel(exp_pair)
    train = _glitch_train(5000, width=0.8, gap=0.7)

    out = benchmark(channel, train)
    survivors = len(out.pulses())
    print(f"\nFIG2 throughput: {len(train)} input transitions -> {len(out)} output "
          f"transitions ({survivors} surviving pulses)")
    assert len(out) <= len(train)
