"""Frozen snapshot of the PR-1 event loop, used as a benchmark baseline.

``test_bench_engine_hot_path.py`` measures the optimized engine against the
event loop this repository shipped before the hot-path optimization pass:
``ChannelKernel.deliver`` linear-scanned the pending list per delivery,
``mature`` popped from the front of a Python list, and the ``Engine`` batch
loop ran on string-keyed dict lookups with O(n) list-membership checks.
This module is a verbatim-behaviour copy of that code (imports adjusted,
classes prefixed ``Legacy``) so the speedup is measured against the real
pre-PR implementation rather than a strawman.

Not part of the library -- benchmark-only, never imported from ``src/``.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.core.transitions import Signal, Transition
from repro.engine.errors import CausalityError, SimulationError
from repro.engine.kernel import PendingTransition
from repro.engine.scheduler import Execution

PORT = "port"
DELIVER = "deliver"
SETTLE = "settle"


class LegacyChannelKernel:
    """The PR-1 kernel: list-backed pending queue with linear scans."""

    def __init__(
        self,
        channel,
        *,
        input_initial_value: int = 0,
        name: Optional[str] = None,
        id_source=None,
        on_causality: str = "error",
        queue_horizon: float = -math.inf,
    ) -> None:
        self.channel = channel
        self.name = name or (getattr(channel, "name", None) or "channel")
        self.on_causality = on_causality
        self.queue_horizon = queue_horizon
        self._next_id = id_source if id_source is not None else itertools.count().__next__
        self.reset(input_initial_value)

    def reset(self, input_initial_value: Optional[int] = None) -> None:
        if input_initial_value is not None:
            self.input_initial_value = input_initial_value
        self.last_input_time = -math.inf
        self.last_delay = self.channel.initial_delay() if self.channel else 0.0
        self.last_input_value = self.input_initial_value
        self.transition_count = 0
        self.delivered_value = (
            self.channel.output_initial_value(self.input_initial_value)
            if self.channel
            else self.input_initial_value
        )
        self.last_delivered_time = -math.inf
        self.pending: List[Tuple[float, int, int, Optional[PendingTransition]]] = []
        self.delivered: List[Transition] = []
        self.cancelled_ids: set = set()
        self.dropped = 0
        if self.channel is not None:
            self.channel.reset()

    def finalize(self) -> None:
        self.pending.clear()
        self.cancelled_ids.clear()

    def tentative(self, time: float, value: int) -> PendingTransition:
        channel = self.channel
        if math.isinf(self.last_input_time):
            T = math.inf
        else:
            T = time - self.last_input_time - self.last_delay
        out_value = (1 - value) if channel.inverting else value
        rising_output = out_value == 1
        delay = channel.delay_for(T, rising_output, self.transition_count, time)
        self.last_input_time = time
        self.last_delay = delay
        self.last_input_value = value
        self.transition_count += 1
        return PendingTransition(input_time=time, delay=delay, value=out_value, T=T)

    def commit(self, p: PendingTransition) -> Optional[Tuple[float, int, int]]:
        out_time = p.output_time
        pending = self.pending
        if pending and pending[-1][0] >= out_time:
            kept = []
            for entry in pending:
                if entry[0] >= out_time:
                    self._cancel(entry)
                else:
                    kept.append(entry)
            self.pending = pending = kept

        window = self.channel.rejection_window() if self.channel else 0.0
        if window > 0.0 and pending and out_time - pending[-1][0] < window:
            self._cancel(pending.pop())
            p.cancelled = True
            return None

        if not math.isfinite(out_time):
            p.cancelled = True
            return None
        if out_time <= self.last_delivered_time:
            p.cancelled = True
            if p.value == self.delivered_value:
                return None
            if self.on_causality == "error":
                raise CausalityError(
                    f"channel {self.name!r} scheduled an output at {out_time:g} "
                    f"but already delivered one at {self.last_delivered_time:g}"
                )
            self.dropped += 1
            return None
        event_id = self._next_id()
        pending.append((out_time, p.value, event_id, p))
        return (out_time, p.value, event_id)

    def feed(self, time: float, value: int) -> Optional[Tuple[float, int, int]]:
        if value == self.last_input_value:
            return None
        return self.commit(self.tentative(time, value))

    def _cancel(self, entry) -> None:
        time, _value, event_id, p = entry
        if time <= self.queue_horizon:
            self.cancelled_ids.add(event_id)
        if p is not None:
            p.cancelled = True

    def deliver(self, event_id: int, value: int, time: float) -> bool:
        if event_id in self.cancelled_ids:
            self.cancelled_ids.discard(event_id)
            return False
        for index, entry in enumerate(self.pending):
            if entry[2] == event_id:
                del self.pending[index]
                return self._deliver_value(time, value, entry[3])
        return self._deliver_value(time, value, None)

    def deliver_immediate(self, time: float, value: int) -> bool:
        self.last_input_value = value
        out_value = (1 - value) if self.channel and self.channel.inverting else value
        if out_value == self.delivered_value:
            return False
        self.delivered_value = out_value
        self.last_delivered_time = time
        if self.delivered and self.delivered[-1].time == time:
            self.delivered.pop()
        else:
            self.delivered.append(Transition(time, out_value))
        return True

    def _deliver_value(self, time, value, p) -> bool:
        if value == self.delivered_value:
            if p is not None:
                p.cancelled = True
            return False
        self.delivered_value = value
        self.last_delivered_time = time
        self.delivered.append(Transition(time, value))
        if p is not None:
            p.cancelled = False
        return True


class LegacyScheduler:
    """The PR-1 scheduler: no tombstone skipping at pop time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, object]] = []
        self._counter = itertools.count()

    def next_id(self) -> int:
        return next(self._counter)

    def push(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), kind, payload))

    def pop_batch(self) -> Tuple[float, List[Tuple[str, object]]]:
        time, _, kind, payload = heapq.heappop(self._heap)
        batch = [(kind, payload)]
        heap = self._heap
        while heap and heap[0][0] == time:
            _, _, more_kind, more_payload = heapq.heappop(heap)
            batch.append((more_kind, more_payload))
        return time, batch

    def __bool__(self) -> bool:
        return bool(self._heap)


class LegacyTopology:
    """The PR-1 structural view: string-keyed dicts only."""

    def __init__(self, circuit) -> None:
        from repro.circuits.circuit import GateInstance, InputPort, OutputPort
        from repro.core.channel import ZeroDelayChannel

        circuit.validate()
        self.circuit = circuit
        self.edges = dict(circuit.edges)
        self.input_ports: List[str] = []
        self.output_ports: List[str] = []
        self.gate_names: List[str] = []
        self.gate_types: Dict[str, object] = {}
        self.gate_initial: Dict[str, int] = {}
        nodes = circuit.nodes
        for name, node in nodes.items():
            if isinstance(node, InputPort):
                self.input_ports.append(name)
            elif isinstance(node, OutputPort):
                self.output_ports.append(name)
            elif isinstance(node, GateInstance):
                self.gate_names.append(name)
                self.gate_types[name] = node.gate_type
                self.gate_initial[name] = node.initial_value
        self.is_gate = set(self.gate_names)
        self.is_output = set(self.output_ports)
        self.edges_from: Dict[str, List[object]] = {name: [] for name in nodes}
        self.edges_into: Dict[str, List[object]] = {name: [] for name in nodes}
        for edge in self.edges.values():
            self.edges_from[edge.source].append(edge)
            self.edges_into[edge.target].append(edge)
        for into in self.edges_into.values():
            into.sort(key=lambda e: e.pin)
        self.gate_inputs: Dict[str, List[str]] = {
            gname: [e.name for e in self.edges_into[gname]]
            for gname in self.gate_names
        }
        self.output_driver: Dict[str, object] = {
            oname: self.edges_into[oname][0] for oname in self.output_ports
        }
        self.input_port_set = frozenset(self.input_ports)
        self.zero_delay_class = ZeroDelayChannel
        self.base_zero_delay: Dict[str, bool] = {
            ename: isinstance(edge.channel, ZeroDelayChannel)
            for ename, edge in self.edges.items()
        }


class LegacyEngine:
    """The PR-1 main loop: string dispatch, O(n) membership checks."""

    MAX_DELTA_CYCLES = 10_000

    def __init__(self, topology, *, on_causality="error", max_events=1_000_000):
        if not isinstance(topology, LegacyTopology):
            topology = LegacyTopology(topology)
        self.topology = topology
        self.on_causality = on_causality
        self.max_events = int(max_events)

    def run(self, inputs, end_time, *, channels=None) -> Execution:
        topo = self.topology
        circuit = topo.circuit
        scheduler = LegacyScheduler()

        node_values: Dict[str, int] = {}
        node_transitions: Dict[str, List[Transition]] = {}
        for pname in topo.input_ports:
            node_values[pname] = inputs[pname].initial_value
            node_transitions[pname] = []
        for gname in topo.gate_names:
            node_values[gname] = topo.gate_initial[gname]
            node_transitions[gname] = []
        for oname in topo.output_ports:
            node_values[oname] = 0
            node_transitions[oname] = []

        kernels: Dict[str, LegacyChannelKernel] = {}
        zero_delay: Dict[str, bool] = dict(topo.base_zero_delay)
        run_channels: Dict[str, object] = {}
        for ename, edge in topo.edges.items():
            if channels and ename in channels:
                channel = channels[ename]
                zero_delay[ename] = isinstance(channel, topo.zero_delay_class)
            else:
                channel = edge.channel
            run_channels[ename] = channel
            kernels[ename] = LegacyChannelKernel(
                channel,
                input_initial_value=node_values[edge.source],
                name=ename,
                id_source=scheduler.next_id,
                on_causality=self.on_causality,
                queue_horizon=end_time,
            )
        for oname in topo.output_ports:
            node_values[oname] = kernels[topo.output_driver[oname].name].delivered_value

        for pname in topo.input_ports:
            for tr in inputs[pname]:
                if tr.time <= end_time:
                    scheduler.push(tr.time, PORT, (pname, tr.value))

        event_count = 0

        def record_node_transition(nname: str, time: float, value: int) -> None:
            transitions = node_transitions[nname]
            if transitions and transitions[-1].time == time:
                transitions.pop()
            else:
                transitions.append(Transition(time, value))

        def evaluate_gate(gname: str, time: float) -> bool:
            values = [kernels[e].delivered_value for e in topo.gate_inputs[gname]]
            new_value = topo.gate_types[gname].evaluate(values)
            if new_value == node_values[gname]:
                return False
            node_values[gname] = new_value
            record_node_transition(gname, time, new_value)
            return True

        if topo.gate_names:
            scheduler.push(0.0, SETTLE, tuple(topo.gate_names))

        while scheduler:
            time, batch = scheduler.pop_batch()
            if time > end_time:
                break
            event_count += len(batch)
            if event_count > self.max_events:
                raise SimulationError(f"exceeded max_events={self.max_events}")

            changed_nodes: List[str] = []
            gates_to_evaluate: List[str] = []
            for batch_kind, batch_payload in batch:
                if batch_kind == PORT:
                    pname, value = batch_payload
                    if node_values[pname] != value:
                        node_values[pname] = value
                        record_node_transition(pname, time, value)
                        changed_nodes.append(pname)
                elif batch_kind == DELIVER:
                    ename, value, event_id = batch_payload
                    if kernels[ename].deliver(event_id, value, time):
                        target = topo.edges[ename].target
                        if target in topo.is_gate:
                            if target not in gates_to_evaluate:
                                gates_to_evaluate.append(target)
                        elif target in topo.is_output:
                            node_values[target] = value
                            record_node_transition(target, time, value)
                elif batch_kind == SETTLE:
                    for gname in batch_payload:
                        if gname not in gates_to_evaluate:
                            gates_to_evaluate.append(gname)
            for gname in gates_to_evaluate:
                if evaluate_gate(gname, time):
                    changed_nodes.append(gname)

            delta_cycles = 0
            while changed_nodes:
                delta_cycles += 1
                if delta_cycles > self.MAX_DELTA_CYCLES:
                    raise SimulationError("combinational loop")
                affected_gates: List[str] = []
                for nname in changed_nodes:
                    value = node_values[nname]
                    for edge in topo.edges_from[nname]:
                        ename = edge.name
                        kernel = kernels[ename]
                        if zero_delay[ename]:
                            if not kernel.deliver_immediate(time, value):
                                continue
                            out_value = kernel.delivered_value
                            if edge.target in topo.is_gate:
                                if edge.target not in affected_gates:
                                    affected_gates.append(edge.target)
                            elif edge.target in topo.is_output:
                                node_values[edge.target] = out_value
                                record_node_transition(edge.target, time, out_value)
                        else:
                            event = kernel.feed(time, value)
                            if event is not None and event[0] <= end_time:
                                scheduler.push(
                                    event[0], DELIVER, (ename, event[1], event[2])
                                )
                next_changed: List[str] = []
                for gname in affected_gates:
                    if evaluate_gate(gname, time):
                        next_changed.append(gname)
                changed_nodes = next_changed

        node_signals: Dict[str, Signal] = {}
        for pname in topo.input_ports:
            node_signals[pname] = Signal._trusted(
                inputs[pname].initial_value, node_transitions[pname]
            )
        for gname in topo.gate_names:
            node_signals[gname] = Signal._trusted(
                topo.gate_initial[gname], node_transitions[gname]
            )
        for oname in topo.output_ports:
            driver = topo.output_driver[oname]
            if driver.source in topo.is_gate:
                src_initial = topo.gate_initial[driver.source]
            else:
                src_initial = inputs[driver.source].initial_value
            channel = run_channels[driver.name]
            node_signals[oname] = Signal._trusted(
                channel.output_initial_value(src_initial), node_transitions[oname]
            )
        edge_signals = {}
        dropped = 0
        for ename, kernel in kernels.items():
            edge = topo.edges[ename]
            edge_signals[ename] = Signal._trusted(
                run_channels[ename].output_initial_value(
                    node_signals[edge.source].initial_value
                ),
                kernel.delivered,
            )
            dropped += kernel.dropped
            kernel.finalize()
        output_signals = {oname: node_signals[oname] for oname in topo.output_ports}
        return Execution(
            circuit=circuit,
            node_signals=node_signals,
            edge_signals=edge_signals,
            output_signals=output_signals,
            end_time=end_time,
            event_count=event_count,
            dropped_transitions=dropped,
        )
