"""Unit tests for the analog inverter-chain simulator."""

import numpy as np
import pytest

from repro.analog import (
    AnalogInverterChain,
    ConstantSupply,
    SineSupplyNoise,
    UMC90,
    pulse_stimulus,
)


@pytest.fixture(scope="module")
def chain() -> AnalogInverterChain:
    return AnalogInverterChain(UMC90, stages=3)


def run_pulse(chain, width, vdd=None, supply=None):
    vdd = vdd if vdd is not None else chain.technology.vdd_nominal
    grid = chain.recommended_time_grid(400.0 + width, supply_voltage=vdd)
    stimulus = pulse_stimulus(grid, 100.0, width, high=vdd, slew=2.0)
    return chain.simulate(grid, stimulus, supply if supply is not None else vdd)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AnalogInverterChain(UMC90, stages=0)
        with pytest.raises(ValueError):
            AnalogInverterChain(UMC90, stages=2, width_factor=0.0)
        with pytest.raises(ValueError):
            AnalogInverterChain(UMC90, stages=2, load_factors=[1.0])
        with pytest.raises(ValueError):
            AnalogInverterChain(UMC90, stages=2, load_factors=[1.0, -1.0])

    def test_recommended_grid_is_uniform(self, chain):
        grid = chain.recommended_time_grid(100.0)
        steps = np.diff(grid)
        assert np.allclose(steps, steps[0])

    def test_nominal_stage_delay_positive(self, chain):
        assert chain.nominal_stage_delay() > 0


class TestSimulation:
    def test_input_validation(self, chain):
        grid = chain.recommended_time_grid(50.0)
        with pytest.raises(ValueError):
            chain.simulate(grid, np.zeros(len(grid) - 1))
        with pytest.raises(ValueError):
            chain.simulate(np.array([0.0]), np.array([0.0]))

    def test_wide_pulse_propagates_through_all_stages(self, chain):
        result = run_pulse(chain, 100.0)
        threshold = 0.5 * UMC90.vdd_nominal
        for index in range(chain.stages):
            signal = result.stage(index).to_signal(threshold)
            assert len(signal) == 2, f"stage {index} lost the pulse"

    def test_stage_polarity_alternates(self, chain):
        result = run_pulse(chain, 100.0)
        threshold = 0.5 * UMC90.vdd_nominal
        values = [result.stage(i).to_signal(threshold).initial_value for i in range(3)]
        assert values == [1, 0, 1]

    def test_narrow_pulse_attenuates(self, chain):
        result = run_pulse(chain, 10.0)
        threshold = 0.5 * UMC90.vdd_nominal
        first = result.stage(0).to_signal(threshold)
        last = result.stage(2).to_signal(threshold)
        if len(first) == 2:
            input_width = 10.0
            first_width = first[1].time - first[0].time
            assert first_width < input_width
        assert len(last.pulses(1)) + len(last.pulses(0)) <= len(first.pulses(1)) + len(
            first.pulses(0)
        )

    def test_delay_increases_at_low_vdd(self, chain):
        threshold_hi = 0.5 * 1.0
        threshold_lo = 0.5 * 0.5
        fast = run_pulse(chain, 150.0, vdd=1.0)
        slow = run_pulse(AnalogInverterChain(UMC90, stages=3), 600.0, vdd=0.5)
        fast_out = fast.stage(0).to_signal(threshold_hi)
        slow_out = slow.stage(0).to_signal(threshold_lo)
        fast_in = fast.input_waveform.to_signal(threshold_hi)
        slow_in = slow.input_waveform.to_signal(threshold_lo)
        fast_delay = fast_out[0].time - fast_in[0].time
        slow_delay = slow_out[0].time - slow_in[0].time
        assert slow_delay > fast_delay

    def test_wider_transistors_are_faster(self):
        nominal = AnalogInverterChain(UMC90, stages=1)
        wide = AnalogInverterChain(UMC90, stages=1, width_factor=1.2)
        threshold = 0.5 * UMC90.vdd_nominal
        res_nominal = run_pulse(nominal, 100.0)
        res_wide = run_pulse(wide, 100.0)
        d_nominal = res_nominal.stage(0).to_signal(threshold)[0].time
        d_wide = res_wide.stage(0).to_signal(threshold)[0].time
        assert d_wide < d_nominal

    def test_supply_profile_accepted(self, chain):
        supply = SineSupplyNoise(UMC90.vdd_nominal, 0.01, 30.0)
        result = run_pulse(chain, 80.0, supply=supply)
        assert result.vdd.max() <= UMC90.vdd_nominal * 1.011
        assert result.vdd.min() >= UMC90.vdd_nominal * 0.989

    def test_output_property_is_last_stage(self, chain):
        result = run_pulse(chain, 80.0)
        assert result.output is result.stage_waveforms[-1]

    def test_load_factor_slows_stage(self):
        plain = AnalogInverterChain(UMC90, stages=1)
        loaded = AnalogInverterChain(UMC90, stages=1, load_factors=[3.0])
        threshold = 0.5 * UMC90.vdd_nominal
        d_plain = run_pulse(plain, 100.0).stage(0).to_signal(threshold)[0].time
        d_loaded = run_pulse(loaded, 100.0).stage(0).to_signal(threshold)[0].time
        assert d_loaded > d_plain

    def test_pulse_stimulus_shapes(self):
        grid = np.linspace(0.0, 100.0, 1001)
        ideal = pulse_stimulus(grid, 20.0, 30.0, high=1.0, slew=0.0)
        assert ideal.max() == 1.0 and ideal.min() == 0.0
        slewed = pulse_stimulus(grid, 20.0, 30.0, high=1.0, slew=4.0)
        assert 0.0 < slewed[np.searchsorted(grid, 21.0)] < 1.0
