"""Unit tests for technology parameters and variations."""

import numpy as np
import pytest

from repro.analog import UMC65, UMC90, ConstantSupply, SineSupplyNoise, Technology
from repro.analog import RandomPhaseSineSupply, width_variation


class TestTechnology:
    def test_drive_scale_is_one_at_nominal(self):
        assert UMC90.drive_scale(UMC90.vdd_nominal, UMC90.vth_n) == pytest.approx(1.0)

    def test_delay_grows_as_vdd_drops(self):
        taus = [UMC90.tau_pull_down(v) for v in (1.0, 0.8, 0.6, 0.4)]
        assert all(later > earlier for earlier, later in zip(taus, taus[1:]))

    def test_delay_explodes_near_threshold(self):
        assert UMC90.tau_pull_down(UMC90.vth_n + 0.01) > 10.0 * UMC90.tau_pull_down(1.0)

    def test_pull_up_slower_than_pull_down(self):
        # pMOS weaker than nMOS by pull_up_strength < 1.
        assert UMC90.tau_pull_up(1.0) > UMC90.tau_pull_down(1.0)

    def test_array_evaluation(self):
        vdd = np.array([1.0, 0.8, 0.6])
        down = UMC90.tau_pull_down_array(vdd)
        up = UMC90.tau_pull_up_array(vdd)
        assert down.shape == (3,)
        assert np.all(up > down)

    def test_width_scaling(self):
        wider = UMC90.with_width(1.1)
        assert wider.tau_nominal == pytest.approx(UMC90.tau_nominal / 1.1)
        assert "W x" in wider.name
        with pytest.raises(ValueError):
            UMC90.with_width(0.0)

    def test_width_variation_helper(self):
        narrower = width_variation(UMC90, -10.0)
        assert narrower.tau_nominal > UMC90.tau_nominal

    def test_switching_threshold(self):
        assert UMC90.switching_threshold(1.0) == pytest.approx(0.5)

    def test_two_technologies_differ(self):
        assert UMC65.vdd_nominal != UMC90.vdd_nominal
        assert UMC65.tau_nominal < UMC90.tau_nominal


class TestSupplies:
    def test_constant_supply(self):
        supply = ConstantSupply(1.2)
        values = supply(np.linspace(0, 10, 5))
        assert np.allclose(values, 1.2)
        assert supply.nominal() == 1.2

    def test_sine_supply_range(self):
        supply = SineSupplyNoise(1.0, 0.01, period=30.0)
        t = np.linspace(0.0, 300.0, 5000)
        values = supply(t)
        assert values.max() <= 1.01 + 1e-12
        assert values.min() >= 0.99 - 1e-12
        assert supply.nominal() == 1.0

    def test_sine_phase_changes_waveform(self):
        t = np.linspace(0.0, 30.0, 100)
        a = SineSupplyNoise(1.0, 0.01, 30.0, phase=0.0)(t)
        b = SineSupplyNoise(1.0, 0.01, 30.0, phase=1.5)(t)
        assert not np.allclose(a, b)

    def test_random_phase_factory(self):
        factory = RandomPhaseSineSupply(1.0, 0.01, 30.0, seed=1)
        first = factory.sample()
        second = factory.sample()
        assert isinstance(first, SineSupplyNoise)
        assert first.phase != second.phase
        assert factory.nominal() == 1.0
