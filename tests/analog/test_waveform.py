"""Unit tests for waveform handling and digitisation."""

import numpy as np
import pytest

from repro.analog import Waveform, digitize, threshold_crossings
from repro.core import Signal


class TestWaveform:
    def test_validation(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 0.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            Waveform(np.array([[0.0]]), np.array([[0.0]]))

    def test_value_at_interpolates(self):
        waveform = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert waveform.value_at(0.5) == pytest.approx(0.5)

    def test_from_signal_ideal(self):
        times = np.linspace(0.0, 10.0, 101)
        waveform = Waveform.from_signal(Signal.pulse(2.0, 3.0), times, high=1.2)
        assert waveform.value_at(1.0) == 0.0
        assert waveform.value_at(3.0) == pytest.approx(1.2)
        assert waveform.value_at(8.0) == 0.0

    def test_from_signal_with_slew(self):
        times = np.linspace(0.0, 10.0, 1001)
        waveform = Waveform.from_signal(
            Signal.step(5.0), times, high=1.0, slew=1.0
        )
        assert waveform.value_at(4.4) == pytest.approx(0.0, abs=1e-6)
        assert waveform.value_at(5.0) == pytest.approx(0.5, abs=0.02)
        assert waveform.value_at(5.6) == pytest.approx(1.0, abs=1e-6)

    def test_len(self):
        assert len(Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))) == 2


class TestThresholdCrossings:
    def test_simple_ramp(self):
        times = np.linspace(0.0, 1.0, 11)
        values = times.copy()
        crossings = threshold_crossings(times, values, 0.55)
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(0.55, abs=1e-9)

    def test_rising_and_falling_filters(self):
        times = np.linspace(0.0, 10.0, 1001)
        waveform = Waveform.from_signal(Signal.pulse(2.0, 3.0), times, high=1.0, slew=0.5)
        both = waveform.crossings(0.5)
        rising = waveform.crossings(0.5, rising=True)
        falling = waveform.crossings(0.5, rising=False)
        assert len(both) == 2
        assert len(rising) == 1 and len(falling) == 1
        assert rising[0] < falling[0]

    def test_no_crossings(self):
        times = np.linspace(0.0, 1.0, 11)
        assert threshold_crossings(times, np.zeros_like(times), 0.5) == []

    def test_too_short_waveform(self):
        assert threshold_crossings(np.array([0.0]), np.array([1.0]), 0.5) == []


class TestDigitize:
    def test_pulse_roundtrip(self):
        times = np.linspace(0.0, 10.0, 2001)
        waveform = Waveform.from_signal(Signal.pulse(2.0, 3.0), times, high=1.0, slew=0.2)
        signal = digitize(waveform, 0.5)
        assert signal.initial_value == 0
        assert len(signal) == 2
        assert signal[0].time == pytest.approx(2.0, abs=0.01)
        assert signal[1].time == pytest.approx(5.0, abs=0.01)

    def test_initial_value_above_threshold(self):
        times = np.linspace(0.0, 1.0, 11)
        waveform = Waveform(times, np.full_like(times, 0.9))
        assert digitize(waveform, 0.5).initial_value == 1

    def test_min_separation_filters_glitches(self):
        times = np.linspace(0.0, 10.0, 10001)
        # A waveform that pokes just above threshold for a very short time.
        values = np.zeros_like(times)
        values[(times > 5.0) & (times < 5.05)] = 1.0
        waveform = Waveform(times, values)
        assert len(digitize(waveform, 0.5)) == 2
        assert digitize(waveform, 0.5, min_separation=0.1).is_zero()

    def test_to_signal_method(self):
        times = np.linspace(0.0, 10.0, 1001)
        waveform = Waveform.from_signal(Signal.step(3.0), times, high=1.0)
        assert waveform.to_signal(0.5).final_value == 1
