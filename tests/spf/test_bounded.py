"""Tests for the bounded-time SPF impossibility demonstrators."""

import math

import pytest

from repro.core import WorstCaseAdversary, ZeroAdversary
from repro.spf import (
    SPFAnalysis,
    analytical_stabilization_sweep,
    critical_pulse_width,
    find_empirical_threshold,
    simulated_stabilization_sweep,
)


class TestAnalyticalSweep:
    def test_pulses_grow_logarithmically(self, exp_pair, eta_small):
        # Gaps small enough that Delta_0 stays inside the marginal band.
        gaps = [1e-2, 1e-3, 1e-4, 1e-5]
        samples = analytical_stabilization_sweep(exp_pair, eta_small, gaps)
        pulses = [s.pulses for s in samples]
        assert all(later > earlier for earlier, later in zip(pulses, pulses[1:]))
        # Logarithmic growth: halving the gap exponent adds a roughly
        # constant number of pulses.
        increments = [b - a for a, b in zip(pulses, pulses[1:])]
        assert max(increments) - min(increments) < 1.5

    def test_stabilization_time_diverges(self, exp_pair, eta_small):
        samples = analytical_stabilization_sweep(exp_pair, eta_small, [1e-2, 1e-6, 1e-10])
        times = [s.stabilization_time for s in samples]
        assert times[0] < times[1] < times[2]
        assert all(math.isfinite(t) for t in times)

    def test_nonpositive_gap_rejected(self, exp_pair, eta_small):
        with pytest.raises(ValueError):
            analytical_stabilization_sweep(exp_pair, eta_small, [0.0])

    def test_critical_pulse_width_helper(self, exp_pair, eta_small):
        assert critical_pulse_width(exp_pair, eta_small) == pytest.approx(
            SPFAnalysis(exp_pair, eta_small).delta_tilde_0
        )


class TestSimulatedSweep:
    def test_stabilization_time_grows_towards_threshold(self, exp_pair, eta_small):
        samples = simulated_stabilization_sweep(
            exp_pair,
            eta_small,
            gaps=[3e-2, 3e-3, 3e-4],
            adversary_factory=WorstCaseAdversary,
            end_time=400.0,
        )
        assert all(s.final_value == 1 for s in samples)
        times = [s.stabilization_time for s in samples]
        assert times[0] < times[-1]

    def test_pulse_counts_match_analysis(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        samples = simulated_stabilization_sweep(
            exp_pair, eta_small, gaps=[1e-2], adversary_factory=WorstCaseAdversary
        )
        analytic_bound = analysis.stabilization_pulses(analysis.delta_tilde_0 + 1e-2)
        assert samples[0].pulses <= analytic_bound + 1


class TestEmpiricalThreshold:
    def test_worst_case_threshold_matches_lemma8(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        threshold = find_empirical_threshold(
            exp_pair, eta_small, WorstCaseAdversary, iterations=30
        )
        assert threshold == pytest.approx(analysis.delta_tilde_0, abs=1e-3)

    def test_zero_adversary_threshold_is_smaller(self, exp_pair, eta_small):
        worst = find_empirical_threshold(
            exp_pair, eta_small, WorstCaseAdversary, iterations=25
        )
        zero = find_empirical_threshold(
            exp_pair, eta_small, ZeroAdversary, iterations=25
        )
        assert zero < worst
