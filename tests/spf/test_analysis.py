"""Unit tests for the SPF analysis (Lemmas 5-8, Theorem 9)."""

import math

import pytest

from repro.core import (
    EtaBound,
    EtaInvolutionChannel,
    InvolutionPair,
    Signal,
    WorstCaseAdversary,
    admissible_eta_bound,
)
from repro.circuits import Simulator, fed_back_or
from repro.spf import SPFAnalysis, SPFRegime


@pytest.fixture(scope="module")
def analysis(exp_pair, eta_small) -> SPFAnalysis:
    return SPFAnalysis(exp_pair, eta_small)


@pytest.fixture(scope="module")
def analysis_zero_eta(exp_pair) -> SPFAnalysis:
    return SPFAnalysis(exp_pair, EtaBound.zero())


class TestFixedPoint:
    def test_tau_solves_equation(self, analysis):
        assert analysis.h(analysis.tau) == pytest.approx(0.0, abs=1e-9)

    def test_tau_within_bracket(self, analysis):
        tau_0, tau_1 = analysis.tau_bracket()
        assert tau_0 < analysis.tau < tau_1

    def test_delta_below_delta_min(self, analysis):
        # Eq. 9 of the paper.
        assert analysis.delta_bound < analysis.delta_min

    def test_period_equals_tau(self, analysis):
        assert analysis.period == analysis.tau

    def test_duty_cycle_below_one(self, analysis):
        # Lemma 6.
        assert 0.0 < analysis.duty_cycle_bound < 1.0

    def test_duty_cycle_upper_bound_formula(self, analysis):
        # gamma < delta_min / (delta_min + eta_plus).
        assert analysis.duty_cycle_bound < analysis.delta_min / (
            analysis.delta_min + analysis.eta_plus
        )

    def test_growth_factor_above_one(self, analysis):
        assert analysis.growth_factor > 1.0

    def test_delta_is_fixed_point_of_worst_case_map(self, analysis):
        delta = analysis.delta_bound
        assert analysis.worst_case_map(delta) == pytest.approx(delta, abs=1e-9)

    def test_zero_eta_reduces_to_deterministic_model(self, analysis_zero_eta, exp_pair):
        # With eta = 0 and the symmetric exp-channel the fixed point is
        # 2*delta(-tau) = tau and gamma = 1/2.
        a = analysis_zero_eta
        assert a.duty_cycle_bound == pytest.approx(0.5, abs=1e-9)
        assert 2.0 * exp_pair.delta_down(-a.tau) == pytest.approx(a.tau, abs=1e-9)

    def test_constraint_violation_rejected(self, exp_pair):
        with pytest.raises(ValueError):
            SPFAnalysis(exp_pair, EtaBound(0.4, 0.4))

    def test_constraint_can_be_skipped(self, exp_pair):
        analysis = SPFAnalysis(exp_pair, EtaBound(0.4, 0.4), require_constraint=False)
        assert analysis.eta_plus == 0.4


class TestMaps:
    def test_map_increasing_above_fixed_point(self, analysis):
        # Lemma 7: f(Delta_1) - Delta >= a * (Delta_1 - Delta) for Delta_1 > Delta.
        delta = analysis.delta_bound
        a = analysis.growth_factor
        for gap in (1e-4, 1e-3, 1e-2, 0.05):
            delta_1 = delta + gap
            assert analysis.worst_case_map(delta_1) - delta >= a * gap * (1 - 1e-6)

    def test_map_decreasing_below_fixed_point(self, analysis):
        delta = analysis.delta_bound
        for gap in (1e-3, 1e-2, 0.05):
            assert analysis.worst_case_map(delta - gap) < delta - gap

    def test_first_pulse_map_at_threshold_gives_delta(self, analysis):
        value = analysis.first_pulse_map(analysis.delta_tilde_0)
        assert value == pytest.approx(analysis.delta_bound, abs=1e-9)

    def test_delta_tilde_within_marginal_band(self, analysis):
        assert analysis.cancel_threshold < analysis.delta_tilde_0 < analysis.latch_threshold

    def test_first_pulse_map_lipschitz(self, analysis):
        # Lemma 8: Delta_1 - Delta >= a * (Delta_0 - Delta_0_tilde).
        a = analysis.growth_factor
        threshold = analysis.delta_tilde_0
        for gap in (1e-4, 1e-3, 1e-2):
            delta_1 = analysis.first_pulse_map(threshold + gap)
            assert delta_1 - analysis.delta_bound >= a * gap * (1 - 1e-6)

    def test_worst_case_down_time_positive_at_fixed_point(self, analysis):
        down = analysis.worst_case_down_time(analysis.delta_bound)
        assert down == pytest.approx(analysis.period - analysis.delta_bound, abs=1e-9)
        assert down > 0


class TestTheorem9Classification:
    def test_thresholds_ordered(self, analysis):
        assert analysis.cancel_threshold < analysis.latch_threshold

    def test_classification(self, analysis):
        assert analysis.classify(analysis.cancel_threshold * 0.5) == SPFRegime.CANCELLED
        mid = 0.5 * (analysis.cancel_threshold + analysis.latch_threshold)
        assert analysis.classify(mid) == SPFRegime.MARGINAL
        assert analysis.classify(analysis.latch_threshold * 1.1) == SPFRegime.LATCHED

    def test_nonpositive_pulse_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.classify(0.0)

    def test_resolves_to_one(self, analysis):
        assert analysis.resolves_to_one(analysis.latch_threshold + 0.1)
        assert not analysis.resolves_to_one(analysis.cancel_threshold * 0.5)
        assert analysis.resolves_to_one(analysis.delta_tilde_0 + 1e-3)
        assert not analysis.resolves_to_one(analysis.delta_tilde_0 - 1e-3)

    def test_stabilization_pulses(self, analysis):
        assert analysis.stabilization_pulses(analysis.latch_threshold + 1.0) == 0.0
        assert math.isinf(analysis.stabilization_pulses(analysis.cancel_threshold * 0.5))
        near = analysis.stabilization_pulses(analysis.delta_tilde_0 + 1e-6)
        far = analysis.stabilization_pulses(analysis.delta_tilde_0 + 1e-2)
        assert near > far > 0

    def test_stabilization_time_bound_finite_above_threshold(self, analysis):
        assert math.isfinite(
            analysis.stabilization_time_bound(analysis.delta_tilde_0 + 1e-3)
        )
        assert math.isinf(
            analysis.stabilization_time_bound(analysis.delta_tilde_0 - 1e-3)
        )

    def test_summary_keys(self, analysis):
        summary = analysis.summary()
        for key in ("tau", "Delta", "gamma", "Delta_0_tilde", "latch_threshold"):
            assert key in summary

    def test_repr(self, analysis):
        assert "SPFAnalysis" in repr(analysis)


class TestWorstCaseTrain:
    def test_latched_regime_locks_immediately(self, analysis):
        train = analysis.worst_case_train(analysis.latch_threshold + 0.1)
        assert train.outcome == "locked"
        assert train.pulses == 0

    def test_short_pulse_dies(self, analysis):
        train = analysis.worst_case_train(analysis.cancel_threshold * 0.5)
        assert train.outcome == "died"

    def test_above_threshold_locks(self, analysis):
        train = analysis.worst_case_train(analysis.delta_tilde_0 + 0.01)
        assert train.outcome == "locked"

    def test_below_threshold_dies(self, analysis):
        train = analysis.worst_case_train(analysis.delta_tilde_0 - 0.01)
        assert train.outcome == "died"

    def test_pulse_count_grows_near_threshold(self, analysis):
        near = analysis.worst_case_train(analysis.delta_tilde_0 + 1e-6)
        far = analysis.worst_case_train(analysis.delta_tilde_0 + 1e-2)
        assert near.pulses > far.pulses

    def test_up_times_bounded_by_delta_while_oscillating(self, analysis):
        train = analysis.worst_case_train(analysis.delta_tilde_0 - 1e-4)
        # All loop pulses of a dying train stay at or below Delta (Lemma 5).
        for up in train.up_times[1:]:
            assert up <= analysis.delta_bound + 1e-9

    def test_invalid_pulse_length_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.worst_case_train(0.0)


class TestAgainstSimulation:
    def test_worst_case_train_matches_event_driven_simulation(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        delta_0 = analysis.delta_tilde_0 - 0.02
        train = analysis.worst_case_train(delta_0)

        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        circuit = fed_back_or(channel)
        execution = Simulator(circuit, max_events=500_000).run(
            {"i": Signal.pulse(0.0, delta_0)}, 300.0
        )
        out = execution.output_signals["or_out"]
        simulated_ups = [p.length for p in out.pulses()]
        assert out.final_value == 0
        assert len(simulated_ups) == len(train.up_times)
        for simulated, analytic in zip(simulated_ups, train.up_times):
            assert simulated == pytest.approx(analytic, abs=1e-6)

    def test_latching_threshold_matches_simulation(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        def channel_factory():
            return EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        for offset, expected_final in ((0.02, 1), (-0.02, 0)):
            circuit = fed_back_or(channel_factory())
            execution = Simulator(circuit, max_events=500_000).run(
                {"i": Signal.pulse(0.0, analysis.delta_tilde_0 + offset)}, 300.0
            )
            assert execution.output_signals["or_out"].final_value == expected_final
