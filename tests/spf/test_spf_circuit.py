"""Unit tests for the SPF circuit (Fig. 5) and buffer dimensioning."""

import pytest

from repro.core import (
    EtaBound,
    RandomAdversary,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
)
from repro.circuits import Simulator
from repro.spf import (
    SPFAnalysis,
    SPFChecker,
    build_spf_circuit,
    design_high_threshold_buffer,
)


class TestBufferDesign:
    def test_threshold_above_duty_cycle_capacity(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        design = design_high_threshold_buffer(analysis)
        assert analysis.duty_cycle_bound < design.gamma_capacity < design.v_th < 1.0

    def test_channel_instantiation(self, exp_pair, eta_small):
        design = design_high_threshold_buffer(SPFAnalysis(exp_pair, eta_small))
        channel = design.channel()
        assert channel.pair.delta_up(0.0) > 0

    def test_buffer_filters_worst_case_pulse_train(self, exp_pair, eta_small):
        # Lemma 10/11: a pulse train with duty cycle <= gamma and bounded
        # pulse lengths maps to the zero signal.
        analysis = SPFAnalysis(exp_pair, eta_small)
        design = design_high_threshold_buffer(SPFAnalysis(exp_pair, eta_small))
        channel = design.channel()
        delta = analysis.delta_bound
        period = analysis.period
        train = Signal.pulse_train(
            0.0, [delta] * 40, [period - delta] * 39
        )
        assert channel(train).is_zero()

    def test_buffer_passes_long_high_phase(self, exp_pair, eta_small):
        design = design_high_threshold_buffer(SPFAnalysis(exp_pair, eta_small))
        channel = design.channel()
        out = channel(Signal.step(0.0))
        assert out.final_value == 1

    def test_invalid_margin_rejected(self, exp_pair, eta_small):
        with pytest.raises(ValueError):
            design_high_threshold_buffer(SPFAnalysis(exp_pair, eta_small), margin=0.0)


class TestSPFCircuit:
    def test_structure(self, exp_pair, eta_small):
        circuit = build_spf_circuit(exp_pair, eta_small)
        circuit.validate()
        assert len(circuit.input_ports()) == 1
        assert circuit.has_feedback()

    def test_long_pulse_produces_single_rising_output(self, exp_pair, eta_small):
        circuit = build_spf_circuit(exp_pair, eta_small, WorstCaseAdversary())
        execution = Simulator(circuit, max_events=500_000).run(
            {"i": Signal.pulse(0.0, 5.0)}, 400.0
        )
        out = execution.output_signals["o"]
        assert out.final_value == 1
        assert len(out) == 1

    def test_short_pulse_produces_zero_output(self, exp_pair, eta_small):
        circuit = build_spf_circuit(exp_pair, eta_small, WorstCaseAdversary())
        execution = Simulator(circuit, max_events=500_000).run(
            {"i": Signal.pulse(0.0, 0.1)}, 400.0
        )
        assert execution.output_signals["o"].is_zero()

    def test_zero_input_produces_zero_output(self, exp_pair, eta_small):
        circuit = build_spf_circuit(exp_pair, eta_small, RandomAdversary(seed=5))
        execution = Simulator(circuit, max_events=500_000).run(
            {"i": Signal.zero()}, 200.0
        )
        assert execution.output_signals["o"].is_zero()


class TestSPFChecker:
    @pytest.fixture(scope="class")
    def report(self, exp_pair, eta_small):
        import numpy as np

        circuit = build_spf_circuit(exp_pair, eta_small)
        checker = SPFChecker(
            circuit,
            adversary_factories={
                "zero": ZeroAdversary,
                "worst": WorstCaseAdversary,
                "random": lambda: RandomAdversary(seed=17),
            },
            end_time=400.0,
        )
        widths = np.concatenate(
            [np.linspace(0.05, 1.3, 12), np.linspace(1.4, 3.0, 4)]
        )
        return checker.check(widths)

    def test_all_spf_conditions_hold(self, report):
        assert report.well_formed
        assert report.no_generation
        assert report.nontrivial
        assert report.no_short_pulses
        assert report.solves_spf

    def test_outputs_are_clean(self, report):
        # Every observed output is either constant 0 or a single rising
        # transition: no output pulses at all (epsilon is unconstrained).
        for obs in report.observations:
            assert len(obs.output) <= 1

    def test_summary_structure(self, report):
        summary = report.summary()
        assert summary["F1_well_formed"] is True
        assert summary["observations"] == len(report.observations)

    def test_stabilization_time_recorded(self, report):
        assert report.max_stabilization_time > 0


class TestSPFCheckerNegative:
    def test_detects_f2_violation(self, exp_pair, eta_small):
        # A circuit whose output port is driven by a constant-1 gate violates
        # "no generation".
        from repro.circuits import BUF, Circuit
        from repro.circuits.gates import GateType

        const_one = GateType("ONE", 1, lambda v: 1)
        circuit = Circuit("bad")
        circuit.add_input("i")
        circuit.add_gate("g", const_one, initial_value=1)
        circuit.add_output("o")
        circuit.connect("i", "g", pin=0)
        circuit.connect("g", "o")
        checker = SPFChecker(circuit, end_time=50.0)
        assert not checker.check([1.0]).no_generation

    def test_detects_f4_violation_with_pure_delay_chain(self):
        # A pure-delay buffer propagates arbitrarily short pulses, so the
        # observed epsilon shrinks with the narrowest probe pulse.
        from repro.circuits import BUF, Circuit
        from repro.core import PureDelayChannel

        circuit = Circuit("pure")
        circuit.add_input("i")
        circuit.add_gate("g", BUF, initial_value=0)
        circuit.add_output("o")
        circuit.connect("i", "g", PureDelayChannel(1.0), pin=0)
        circuit.connect("g", "o")
        checker = SPFChecker(circuit, end_time=50.0, epsilon_threshold=0.01)
        report = checker.check([0.005, 0.5, 1.0])
        assert not report.no_short_pulses
        assert not report.solves_spf
