"""Smoke tests for the ``python -m repro`` CLI (driven in-process)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).parents[1] / "examples" / "netlists"


@pytest.fixture()
def chain_netlist(tmp_path):
    path = tmp_path / "chain.json"
    assert main(["export", "inverter_chain", "--stages", "3", "-o", str(path)]) == 0
    return path


class TestExport:
    def test_export_writes_loadable_netlist(self, chain_netlist):
        from repro.io.netlist import load_netlist

        netlist = load_netlist(chain_netlist)
        assert netlist.end_time is not None
        assert "in" in netlist.inputs
        netlist.build().validate()

    def test_export_spf(self, tmp_path):
        path = tmp_path / "spf.json"
        assert main(["export", "spf", "-o", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["format"] == "repro-netlist"
        edge_kinds = {e["channel"]["kind"] for e in data["circuit"]["edges"]}
        assert "eta_involution" in edge_kinds


class TestInfo:
    def test_info_prints_summary(self, chain_netlist, capsys):
        assert main(["info", str(chain_netlist)]) == 0
        out = capsys.readouterr().out
        assert "inverter_chain" in out
        assert "EtaInvolutionChannel" in out

    def test_malformed_netlist_exits_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "spice", "circuit": {}}')
        with pytest.raises(SystemExit, match="error:"):
            main(["info", str(path)])

    def test_missing_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["info", str(tmp_path / "nope.json")])


class TestSimulate:
    def test_simulate_with_netlist_defaults(self, chain_netlist, capsys):
        assert main(["simulate", str(chain_netlist)]) == 0
        out = capsys.readouterr().out
        assert "simulated to" in out
        assert "out" in out

    def test_simulate_json_output(self, chain_netlist, capsys):
        assert main(["simulate", str(chain_netlist), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["event_count"] > 0
        assert "out" in payload["outputs"]

    def test_simulate_pulse_override_changes_output(self, chain_netlist, capsys):
        assert main(["simulate", str(chain_netlist), "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "simulate",
                    str(chain_netlist),
                    "--json",
                    "--pulse",
                    "in=1.0:5.0",
                    "--end-time",
                    "80.0",
                ]
            )
            == 0
        )
        overridden = json.loads(capsys.readouterr().out)
        assert overridden["outputs"]["out"] != default["outputs"]["out"]
        assert len(overridden["outputs"]["out"]["transitions"]) == 2

    def test_simulate_writes_vcd(self, chain_netlist, tmp_path, capsys):
        vcd = tmp_path / "trace.vcd"
        assert main(["simulate", str(chain_netlist), "--vcd", str(vcd)]) == 0
        text = vcd.read_text()
        assert text.startswith("$timescale")
        assert "$enddefinitions" in text

    def test_bad_pulse_spec_exits(self, chain_netlist):
        with pytest.raises(SystemExit):
            main(["simulate", str(chain_netlist), "--pulse", "in=oops"])

    def test_missing_end_time_exits(self, tmp_path):
        from repro.circuits import inverter_chain
        from repro.io.netlist import save_netlist
        from repro.specs import ChannelSpec

        bare = save_netlist(
            inverter_chain(2, ChannelSpec.exp_involution(1.0, 0.5)),
            tmp_path / "bare.json",
        )
        with pytest.raises(SystemExit, match="end-time"):
            main(["simulate", str(bare)])


class TestSweep:
    def test_sweep_runs_monte_carlo(self, chain_netlist, capsys):
        assert main(["sweep", str(chain_netlist), "--runs", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "4 runs" in out
        assert "mc[3]" in out

    def test_sweep_json_is_deterministic_per_seed(self, chain_netlist, capsys):
        argv = ["sweep", str(chain_netlist), "--runs", "3", "--seed", "7", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)

        def strip_timing(results):
            return [
                {k: v for k, v in row.items() if k != "seconds"} for row in results
            ]

        assert strip_timing(first["results"]) == strip_timing(second["results"])
        assert len(first["results"]) == 3

    def test_sweep_process_backend(self, chain_netlist, capsys):
        argv = ["sweep", str(chain_netlist), "--runs", "3", "--seed", "7", "--json"]
        assert main(argv) == 0
        sequential = json.loads(capsys.readouterr().out)
        assert (
            main(argv + ["--backend", "process", "--workers", "2"]) == 0
        )
        process = json.loads(capsys.readouterr().out)
        for seq, proc in zip(sequential["results"], process["results"]):
            assert seq["outputs"] == proc["outputs"]
            assert seq["events"] == proc["events"]


class TestExperimentCLI:
    RUN_ARGS = [
        "experiment", "run", "comparison",
        "--param", "stages=2", "--param", "pulse_count=3",
        "--param", "record_traces=true",
    ]

    def test_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        for kind in ("theorem9", "fig7", "fig8", "fig9", "comparison",
                     "scaling", "eta_coverage", "lemma5"):
            assert kind in out

    def test_list_json(self, capsys):
        assert main(["experiment", "list", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert "theorem9" in listing

    def test_run_prints_table_and_provenance(self, capsys):
        assert main(self.RUN_ARGS) == 0
        out = capsys.readouterr().out
        assert "experiment comparison" in out
        assert "provenance:" in out and "cache=miss" in out

    def test_run_json_validates_and_caches(self, tmp_path, capsys):
        argv = self.RUN_ARGS + ["--cache", str(tmp_path / "store"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["from_cache"] is False
        assert first["result"]["format"] == "repro-experiment-result"
        from repro.experiments import ExperimentResult

        ExperimentResult.from_dict(first["result"]).validate()
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["from_cache"] is True
        assert second["result"]["rows"] == first["result"]["rows"]
        assert Path(second["artifact"]).exists()

    def test_run_param_overrides_merge(self, capsys):
        assert (
            main(
                [
                    "experiment", "run", "lemma5", "--json",
                    "--params-json", '{"eta_plus_values": [0.02, 0.05]}',
                    "--param", "back_off=0.002",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        spec = payload["result"]["spec"]
        assert spec["eta_plus_values"] == [0.02, 0.05]
        assert spec["back_off"] == 0.002
        assert len(payload["result"]["rows"]) == 2

    def test_report_and_export(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main(self.RUN_ARGS + ["-o", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["experiment", "report", str(out_file)]) == 0
        report = capsys.readouterr().out
        assert "experiment comparison" in report and "provenance:" in report
        # from_cache is run-state, not provenance; report must not claim it.
        assert "cache=" not in report

        csv_file = tmp_path / "result.csv"
        vcd_file = tmp_path / "result.vcd"
        assert main(["experiment", "export", str(out_file),
                     "--format", "csv", "-o", str(csv_file)]) == 0
        assert main(["experiment", "export", str(out_file),
                     "--format", "vcd", "-o", str(vcd_file)]) == 0
        assert csv_file.read_text().startswith("model,")
        assert vcd_file.read_text().startswith("$comment")

    def test_export_vcd_without_traces_errors(self, tmp_path, capsys):
        out_file = tmp_path / "lemma5.json"
        assert main(["experiment", "run", "lemma5", "-o", str(out_file)]) == 0
        with pytest.raises(SystemExit, match="no recorded traces"):
            main(["experiment", "export", str(out_file),
                  "--format", "vcd", "-o", str(tmp_path / "x.vcd")])

    #: Small-but-real parameterisations: every registered paper experiment
    #: must be runnable end-to-end from the command line (ISSUE 4).
    SMALL_PARAMS = {
        "theorem9": {"pulse_lengths": [0.3, 1.3], "adversaries": {"zero": {"kind": "zero"}}, "end_time": 120.0},
        "lemma5": {"eta_plus_values": [0.02]},
        "fig7": {"vdd_levels": [1.0], "stages": 2, "n_widths": 6},
        "fig8": {"scenarios": ["width_plus10"], "stages": 2, "n_widths": 6},
        "fig9": {"stages": 2, "n_widths": 8},
        "comparison": {"stages": 2, "pulse_count": 3},
        "scaling": {"stage_counts": [2], "input_transitions": 20},
        "eta_coverage": {"stages": 2, "n_runs": 3},
    }

    @pytest.mark.parametrize("kind", sorted(SMALL_PARAMS))
    def test_every_kind_runs_from_the_cli(self, kind, capsys):
        argv = [
            "experiment", "run", kind,
            "--params-json", json.dumps(self.SMALL_PARAMS[kind]), "--json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.experiments import ExperimentResult

        result = ExperimentResult.from_dict(payload["result"])
        result.validate()
        assert result.rows
        assert result.spec.kind == kind

    def test_unknown_kind_exits_cleanly(self):
        with pytest.raises(SystemExit, match="error:"):
            main(["experiment", "run", "bogus_kind"])

    def test_unknown_technology_preset_exits_cleanly(self):
        with pytest.raises(SystemExit, match="unknown technology preset"):
            main(["experiment", "run", "fig7", "--param", "technology=BOGUS"])

    def test_bad_param_spec_exits(self):
        with pytest.raises(SystemExit, match="NAME=VALUE"):
            main(["experiment", "run", "lemma5", "--param", "oops"])


class TestPackagedEntryPoints:
    """The CI smoke contract: `python -m repro` works against the examples."""

    def test_python_dash_m_simulate_example(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "simulate",
             str(EXAMPLES / "inverter_chain.json")],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 0, result.stderr
        assert "simulated to" in result.stdout

    def test_python_dash_m_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            check=False,
        )
        assert result.returncode == 0
        for command in ("info", "simulate", "sweep", "export", "experiment"):
            assert command in result.stdout
