"""Unit and property-based tests for the declarative spec layer."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, fed_back_or, glitch_generator, inverter_chain
from repro.circuits.gates import GateType
from repro.core import (
    DegradationDelayChannel,
    EtaBound,
    EtaInvolutionChannel,
    InertialDelayChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    RandomAdversary,
    SequenceAdversary,
    Signal,
    SineAdversary,
    TableDelay,
    WorstCaseAdversary,
    ZeroAdversary,
    ZeroDelayChannel,
    admissible_eta_bound,
)
from repro.specs import (
    AdversarySpec,
    ChannelSpec,
    CircuitSpec,
    DelaySpec,
    SpecError,
    as_channel,
    as_channel_factory,
    as_eta,
    as_pair,
    register_channel_kind,
)


# --------------------------------------------------------------------------- #
# Channel specs
# --------------------------------------------------------------------------- #


CHANNEL_EXAMPLES = [
    ZeroDelayChannel(),
    ZeroDelayChannel(inverting=True),
    PureDelayChannel(1.5),
    PureDelayChannel(1.5, 2.0, inverting=True),
    InertialDelayChannel(1.0, 0.4),
    DegradationDelayChannel(2.0, 1.5, 0.1),
    InvolutionChannel(InvolutionPair.exp_channel(1.0, 0.5)),
    InvolutionChannel(InvolutionPair.exp_channel(0.8, 0.4, 0.6), inverting=True),
    EtaInvolutionChannel(
        InvolutionPair.exp_channel(1.0, 0.5), EtaBound(0.05, 0.1), ZeroAdversary()
    ),
    EtaInvolutionChannel(
        InvolutionPair.exp_channel(1.0, 0.5),
        EtaBound(0.05, 0.1),
        RandomAdversary(seed=42, distribution="gaussian", sigma_fraction=0.3),
    ),
    EtaInvolutionChannel(
        InvolutionPair.exp_channel(1.0, 0.5),
        EtaBound(0.02, 0.02),
        SineAdversary(period=10.0, phase=0.5, amplitude_fraction=0.8),
    ),
    EtaInvolutionChannel(
        InvolutionPair.exp_channel(1.0, 0.5),
        EtaBound(0.05, 0.1),
        SequenceAdversary([0.01, -0.02, 0.0], fill=0.01),
    ),
    EtaInvolutionChannel(
        InvolutionPair.exp_channel(1.0, 0.5),
        EtaBound(0.05, 0.1),
        WorstCaseAdversary(),
        name="c",
    ),
]


class TestChannelSpecRoundTrip:
    @pytest.mark.parametrize(
        "channel", CHANNEL_EXAMPLES, ids=lambda c: f"{type(c).__name__}"
    )
    def test_spec_round_trip_is_stable(self, channel):
        spec = ChannelSpec.from_channel(channel)
        rebuilt = spec.build()
        assert type(rebuilt) is type(channel)
        assert rebuilt.name == channel.name
        assert ChannelSpec.from_channel(rebuilt) == spec

    @pytest.mark.parametrize(
        "channel", CHANNEL_EXAMPLES, ids=lambda c: f"{type(c).__name__}"
    )
    def test_json_round_trip(self, channel):
        spec = ChannelSpec.from_channel(channel)
        assert ChannelSpec.from_json(spec.to_json()) == spec
        # canonical JSON => usable as a hash key
        assert hash(ChannelSpec.from_json(spec.to_json())) == hash(spec)

    @pytest.mark.parametrize(
        "channel",
        [c for c in CHANNEL_EXAMPLES if not isinstance(c, ZeroDelayChannel)],
        ids=lambda c: f"{type(c).__name__}",
    )
    def test_rebuilt_channel_is_behaviourally_identical(self, channel):
        spec = ChannelSpec.from_channel(channel)
        # Well separated pulses plus one narrow one: exercises cancellation
        # without triggering same-instant causality corner cases.
        stimulus = Signal.pulse_train(1.0, [3.0, 0.7, 3.0], [4.0, 4.0])
        channel.reset()
        expected = channel(stimulus)
        assert spec.build()(stimulus) == expected

    def test_table_delay_pair_round_trips(self):
        base = InvolutionPair.exp_channel(1.0, 0.5)
        T = [-0.4, 0.0, 0.5, 1.0, 2.0, 4.0]
        pair = InvolutionPair.from_samples(
            T, [base.delta_up(t) for t in T], T, [base.delta_down(t) for t in T]
        )
        channel = InvolutionChannel(pair)
        spec = ChannelSpec.from_channel(channel)
        rebuilt = spec.build()
        assert isinstance(rebuilt.pair.delta_up, TableDelay)
        stimulus = Signal.pulse(1.0, 2.0)
        assert rebuilt(stimulus) == channel(stimulus)
        assert ChannelSpec.from_channel(rebuilt) == spec

    def test_unregistered_channel_raises(self):
        class CustomChannel(PureDelayChannel):
            pass

        with pytest.raises(SpecError, match="register"):
            ChannelSpec.from_channel(CustomChannel(1.0))

    def test_extension_hook(self):
        class DoubleDelayChannel(PureDelayChannel):
            def delay_for(self, T, rising_output, index, time):
                return 2.0 * super().delay_for(T, rising_output, index, time)

        register_channel_kind(
            "double-test",
            lambda p: DoubleDelayChannel(float(p["delay"])),
            channel_class=DoubleDelayChannel,
            extractor=lambda c: {"delay": c.rising_delay},
            replace=True,
        )
        spec = ChannelSpec.from_channel(DoubleDelayChannel(1.5))
        assert spec.kind == "double-test"
        rebuilt = spec.build()
        assert isinstance(rebuilt, DoubleDelayChannel)
        assert rebuilt.rising_delay == 1.5

    def test_unknown_kind_raises(self):
        with pytest.raises(SpecError, match="unknown channel kind"):
            ChannelSpec("no-such-kind").build()

    def test_build_returns_fresh_instances(self):
        spec = ChannelSpec.from_channel(
            EtaInvolutionChannel(
                InvolutionPair.exp_channel(1.0, 0.5),
                EtaBound(0.05, 0.1),
                RandomAdversary(seed=3),
            )
        )
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.adversary is not b.adversary


class TestSpecValueSemantics:
    def test_equality_ignores_param_order(self):
        a = ChannelSpec("pure", {"delay": 1.0, "inverting": False})
        b = ChannelSpec("pure", {"inverting": False, "delay": 1.0})
        assert a == b and hash(a) == hash(b)

    def test_different_params_differ(self):
        assert ChannelSpec("pure", delay=1.0) != ChannelSpec("pure", delay=2.0)

    def test_specs_are_immutable(self):
        spec = ChannelSpec("pure", delay=1.0)
        with pytest.raises(AttributeError):
            spec.kind = "other"

    def test_specs_are_dict_keys(self):
        seen = {ChannelSpec("pure", delay=1.0): "a"}
        assert seen[ChannelSpec("pure", {"delay": 1.0})] == "a"

    def test_non_json_params_rejected(self):
        with pytest.raises(SpecError, match="JSON"):
            ChannelSpec("pure", delay=object())


# --------------------------------------------------------------------------- #
# Coercion helpers
# --------------------------------------------------------------------------- #


class TestCoercions:
    def test_as_channel_accepts_dict(self):
        channel = as_channel({"kind": "pure", "delay": 2.0})
        assert isinstance(channel, PureDelayChannel)
        assert channel.rising_delay == 2.0

    def test_as_channel_factory_from_spec_builds_fresh(self):
        factory = as_channel_factory(ChannelSpec("pure", delay=1.0))
        assert factory() is not factory()

    def test_as_channel_factory_passes_callables_through(self):
        sentinel = PureDelayChannel(1.0)
        factory = as_channel_factory(lambda: sentinel)
        assert factory() is sentinel

    def test_as_channel_factory_coerces_instances_to_fresh_copies(self):
        """Channels are callable; an instance must not be taken as a factory."""
        channel = InvolutionChannel(InvolutionPair.exp_channel(1.0, 0.5))
        factory = as_channel_factory(channel)
        a, b = factory(), factory()
        assert type(a) is InvolutionChannel
        assert a is not b and a is not channel
        # and the library builders accept instances the same way
        circuit = inverter_chain(2, channel)
        edge_channels = [
            e.channel for e in circuit.edges.values()
            if isinstance(e.channel, InvolutionChannel)
        ]
        assert len(edge_channels) == 2
        assert edge_channels[0] is not edge_channels[1]

    def test_as_pair_from_dict(self):
        pair = as_pair({"kind": "exp", "tau": 1.0, "t_p": 0.5})
        assert pair.delta_min == pytest.approx(0.5)

    def test_as_eta_forms(self):
        assert as_eta(EtaBound(0.1, 0.2)) == EtaBound(0.1, 0.2)
        assert as_eta({"eta_plus": 0.1, "eta_minus": 0.2}) == EtaBound(0.1, 0.2)
        assert as_eta((0.1, 0.2)) == EtaBound(0.1, 0.2)

    def test_delay_spec_round_trip(self):
        from repro.core import ExpDelay

        fn = ExpDelay(1.0, 0.5, 0.6, rising=False)
        spec = DelaySpec.from_delay(fn)
        rebuilt = spec.build()
        for T in (0.0, 0.5, 2.0, 10.0):
            assert rebuilt(T) == fn(T)

    def test_adversary_spec_random_seed_round_trip(self):
        import numpy as np

        seq = np.random.SeedSequence(1234).spawn(3)[1]
        adversary = RandomAdversary(seed=seq)
        spec = AdversarySpec.from_adversary(adversary)
        rebuilt = spec.build()
        bound = EtaBound(0.1, 0.1)
        first = [adversary.choose(i, 0.0, True, 0.0, bound) for i in range(5)]
        second = [rebuilt.choose(i, 0.0, True, 0.0, bound) for i in range(5)]
        assert first == second


# --------------------------------------------------------------------------- #
# Circuit specs
# --------------------------------------------------------------------------- #


def _eta_spec():
    pair = InvolutionPair.exp_channel(1.0, 0.5)
    eta = admissible_eta_bound(pair, 0.05)
    return ChannelSpec.exp_eta_involution(1.0, 0.5, eta)


class TestCircuitSpec:
    def test_round_trip_is_a_fixed_point(self):
        circuit = inverter_chain(4, _eta_spec(), expose_taps=True)
        spec = circuit.to_spec()
        again = Circuit.from_spec(spec).to_spec()
        assert spec == again and hash(spec) == hash(again)

    def test_round_trip_preserves_node_and_edge_order(self):
        circuit = fed_back_or(_eta_spec().build())
        rebuilt = Circuit.from_spec(circuit.to_spec())
        assert list(rebuilt.nodes) == list(circuit.nodes)
        assert list(rebuilt.edges) == list(circuit.edges)

    def test_json_round_trip(self):
        circuit = inverter_chain(3, _eta_spec())
        spec = circuit.to_spec()
        assert CircuitSpec.from_json(spec.to_json()) == spec
        # And the JSON text is canonical enough to diff
        assert json.loads(spec.to_json())["name"] == "inverter_chain"

    def test_custom_gate_round_trips_by_truth_table(self):
        gate = GateType.from_function("CUSTOM_ANDNOT", 2, lambda a, b: a and not b)
        circuit = Circuit("custom")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", gate, initial_value=0)
        circuit.add_output("o")
        circuit.connect("a", "g", PureDelayChannel(1.0), pin=0)
        circuit.connect("b", "g", PureDelayChannel(1.0), pin=1)
        circuit.connect("g", "o")
        rebuilt = Circuit.from_spec(circuit.to_spec())
        rebuilt_gate = rebuilt.node("g").gate_type
        assert rebuilt_gate.truth_table() == gate.truth_table()
        assert rebuilt.to_spec() == circuit.to_spec()

    def test_library_gate_restores_registry_instance(self):
        from repro.circuits.gates import INV

        circuit = inverter_chain(2, _eta_spec())
        rebuilt = Circuit.from_spec(circuit.to_spec())
        assert rebuilt.node("inv1").gate_type is INV

    def test_unspecable_circuit_raises(self):
        class OpaqueChannel(PureDelayChannel):
            pass

        circuit = inverter_chain(2, lambda: OpaqueChannel(1.0))
        with pytest.raises(SpecError):
            circuit.to_spec()


class TestSimulateEquivalence:
    """to_spec -> from_spec rebuilds must execute bit-identically."""

    def test_inverter_chain(self):
        from repro.circuits import simulate

        circuit = inverter_chain(5, _eta_spec(), expose_taps=True)
        rebuilt = Circuit.from_spec(circuit.to_spec())
        inputs = {"in": Signal.pulse_train(1.0, [2.0, 0.8, 3.0], [2.5, 2.5])}
        a = simulate(circuit, inputs, 80.0)
        b = simulate(rebuilt, inputs, 80.0)
        assert a.node_signals == b.node_signals
        assert a.edge_signals == b.edge_signals
        assert a.event_count == b.event_count

    def test_spf_circuit(self):
        from repro.circuits import simulate
        from repro.spf import build_spf_circuit

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        eta = admissible_eta_bound(pair, 0.05)
        circuit = build_spf_circuit(pair, eta)
        rebuilt = Circuit.from_spec(circuit.to_spec())
        inputs = {"i": Signal.pulse(0.0, 2.0)}
        a = simulate(circuit, inputs, 300.0, max_events=2_000_000)
        b = simulate(rebuilt, inputs, 300.0, max_events=2_000_000)
        assert a.node_signals == b.node_signals
        assert a.edge_signals == b.edge_signals

    def test_spf_circuit_from_spec_dicts(self):
        """build_spf_circuit accepts pair/eta/adversary spec dicts."""
        from repro.circuits import simulate
        from repro.spf import build_spf_circuit

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        eta = admissible_eta_bound(pair, 0.05)
        reference = build_spf_circuit(pair, eta, WorstCaseAdversary())
        declarative = build_spf_circuit(
            {"kind": "exp", "tau": 1.0, "t_p": 0.5, "v_th": 0.5},
            {"eta_plus": eta.eta_plus, "eta_minus": eta.eta_minus},
            {"kind": "worst"},
        )
        inputs = {"i": Signal.pulse(0.0, 1.5)}
        a = simulate(reference, inputs, 200.0, max_events=2_000_000)
        b = simulate(declarative, inputs, 200.0, max_events=2_000_000)
        assert a.output_signals == b.output_signals


# --------------------------------------------------------------------------- #
# Property-based round-trips
# --------------------------------------------------------------------------- #


_channel_specs = st.one_of(
    st.builds(
        lambda d: ChannelSpec("pure", delay=d),
        st.floats(0.1, 5.0, allow_nan=False),
    ),
    st.builds(
        lambda d, w: ChannelSpec("inertial", delay=d, window=w),
        st.floats(0.1, 5.0),
        st.floats(0.0, 1.0),
    ),
    st.builds(
        lambda n, t: ChannelSpec("ddm", delta_nominal=n, tau_deg=t),
        st.floats(0.5, 5.0),
        st.floats(0.1, 3.0),
    ),
    st.builds(
        lambda tau, t_p, v_th: ChannelSpec(
            "involution", pair={"kind": "exp", "tau": tau, "t_p": t_p, "v_th": v_th}
        ),
        st.floats(0.2, 2.0),
        st.floats(0.1, 1.0),
        st.floats(0.2, 0.8),
    ),
    st.builds(
        lambda tau, t_p, eta, seed: ChannelSpec(
            "eta_involution",
            pair={"kind": "exp", "tau": tau, "t_p": t_p, "v_th": 0.5},
            eta={"eta_plus": eta, "eta_minus": eta},
            adversary={"kind": "random", "seed": seed},
        ),
        st.floats(0.2, 2.0),
        st.floats(0.1, 1.0),
        st.floats(0.0, 0.05),
        st.integers(0, 2**32 - 1),
    ),
)


class TestPropertyRoundTrips:
    @given(spec=_channel_specs, stages=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_chain_to_spec_from_spec_to_spec_identity(self, spec, stages):
        circuit = inverter_chain(stages, spec)
        circuit_spec = circuit.to_spec()
        rebuilt_spec = Circuit.from_spec(circuit_spec).to_spec()
        assert circuit_spec == rebuilt_spec
        assert hash(circuit_spec) == hash(rebuilt_spec)

    @given(spec=_channel_specs, width=st.floats(0.3, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_rebuilt_circuit_simulates_identically(self, spec, width):
        from repro.circuits import simulate

        circuit = glitch_generator(spec.build(), spec.build())
        rebuilt = Circuit.from_spec(circuit.to_spec())
        inputs = {"in": Signal.pulse(1.0, width)}
        # Equal path delays can schedule same-instant deliveries; the drop
        # policy resolves them identically on both sides.
        a = simulate(circuit, inputs, 60.0, on_causality="drop")
        b = simulate(rebuilt, inputs, 60.0, on_causality="drop")
        assert a.node_signals == b.node_signals
        assert a.edge_signals == b.edge_signals
