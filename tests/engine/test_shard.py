"""Fault-tolerance tests for the sharded sweep runner.

Inline fault injection (deterministic, fast) lives here unmarked; the
tests that kill, hang, or crash *real* process-pool workers are marked
``chaos`` and run as a separate CI job (they respawn pools and wait out
timeouts, which is slow and noisy next to tier-1).
"""

import tempfile
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import inverter_chain
from repro.core import (
    EtaInvolutionChannel,
    InvolutionChannel,
    Signal,
    ZeroAdversary,
)
from repro.engine import Scenario, SimulationError, eta_monte_carlo, run_many
from repro.engine.shard import (
    DEFAULT_CHUNK_SIZE,
    ChunkTimeoutError,
    FaultInjector,
    InlineChunkExecutor,
    RetryPolicy,
    SweepFailedError,
    WorkerCrashError,
    as_retry_policy,
    make_chunks,
    run_many_sharded,
)
from repro.store import ArtifactStore


@pytest.fixture(scope="module")
def chain(exp_pair):
    return inverter_chain(3, lambda: InvolutionChannel(exp_pair))


@pytest.fixture(scope="module")
def eta_chain(exp_pair, eta_small):
    return inverter_chain(
        3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
    )


@pytest.fixture(scope="module")
def mc_scenarios(eta_chain):
    """Eight seeded Monte Carlo scenarios: the bit-identity workload."""
    return eta_monte_carlo(
        eta_chain, {"in": Signal.pulse(1.0, 2.0)}, 40.0, 8, seed=11
    )


@pytest.fixture(scope="module")
def baseline(eta_chain, mc_scenarios):
    """The uninterrupted sweep every resume test must match bit-for-bit."""
    return run_many(eta_chain, mc_scenarios, backend="sequential")


def pulse_scenarios(n, end_time=40.0):
    return [
        Scenario(f"w={i}", {"in": Signal.pulse(1.0, 0.5 + 0.5 * i)}, end_time)
        for i in range(n)
    ]


def assert_sweeps_identical(a, b):
    assert len(a.runs) == len(b.runs)
    for ra, rb in zip(a.runs, b.runs):
        assert ra.scenario.name == rb.scenario.name
        assert ra.execution.event_count == rb.execution.event_count
        assert ra.execution.dropped_transitions == rb.execution.dropped_transitions
        assert ra.execution.node_signals == rb.execution.node_signals
        assert ra.execution.edge_signals == rb.execution.edge_signals


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=6, backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3)
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.3)
        assert policy.delay_before(5) == pytest.approx(0.3)  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_coercion(self):
        assert as_retry_policy(None) == RetryPolicy()
        assert as_retry_policy(5).attempts == 5
        policy = RetryPolicy(attempts=2)
        assert as_retry_policy(policy) is policy
        with pytest.raises(TypeError):
            as_retry_policy("twice")


class TestChunking:
    def test_chunks_preserve_order_and_cover_everything(self):
        scenarios = pulse_scenarios(7)
        chunks = make_chunks(scenarios, 3)
        assert [len(c.scenarios) for c in chunks] == [3, 3, 1]
        flat = [s for c in chunks for s in c.scenarios]
        assert flat == scenarios

    def test_keys_absent_without_circuit_spec(self):
        (chunk,) = make_chunks(pulse_scenarios(2), 4)
        assert chunk.key is None and chunk.spec is None

    def test_keys_are_deterministic(self, eta_chain, mc_scenarios):
        spec = eta_chain.to_spec().to_dict()
        a = make_chunks(mc_scenarios, 3, circuit_spec=spec)
        b = make_chunks(mc_scenarios, 3, circuit_spec=spec)
        assert [c.key for c in a] == [c.key for c in b]
        assert all(len(c.key) == 64 for c in a)

    def test_keys_ignore_names_and_metadata(self, eta_chain, mc_scenarios):
        spec = eta_chain.to_spec().to_dict()
        renamed = [
            Scenario(f"other[{i}]", s.inputs, s.end_time, s.channels, {"extra": i})
            for i, s in enumerate(mc_scenarios)
        ]
        a = make_chunks(mc_scenarios, 3, circuit_spec=spec)
        b = make_chunks(renamed, 3, circuit_spec=spec)
        assert [c.key for c in a] == [c.key for c in b]

    def test_precomputed_fingerprints_match_derived(self, mc_scenarios):
        # eta_monte_carlo fills Scenario.fingerprint knowing only the
        # adversary seed varies between runs; it must agree exactly with
        # what scenario_fingerprint derives from the live objects, or a
        # resumed sweep could return a *different* scenario's cached
        # chunk.  (The docstrings promise this pin -- keep it.)
        import dataclasses

        from repro.engine.shard import scenario_fingerprint

        for scenario in mc_scenarios:
            assert scenario.fingerprint is not None
            derived = scenario_fingerprint(
                dataclasses.replace(scenario, fingerprint=None)
            )
            assert scenario.fingerprint == derived

    def test_pooled_specs_key_identically_for_aliased_and_fresh_dicts(
        self, eta_chain, mc_scenarios
    ):
        # Chunk-spec pooling is by value (canonical JSON), never by
        # object identity: scenarios whose producer aliased the shared
        # fingerprint tables and scenarios rebuilt from scratch must
        # produce the same chunk keys.
        import dataclasses

        spec = eta_chain.to_spec().to_dict()
        fresh = [dataclasses.replace(s, fingerprint=None) for s in mc_scenarios]
        a = make_chunks(mc_scenarios, 3, circuit_spec=spec)
        b = make_chunks(fresh, 3, circuit_spec=spec)
        assert [c.key for c in a] == [c.key for c in b]

    def test_keys_depend_on_computation_inputs(self, eta_chain, mc_scenarios):
        spec = eta_chain.to_spec().to_dict()
        base = make_chunks(mc_scenarios, 3, circuit_spec=spec)
        resized = make_chunks(mc_scenarios, 4, circuit_spec=spec)
        assert base[0].key != resized[0].key  # boundaries are identity
        other_events = make_chunks(mc_scenarios, 3, circuit_spec=spec, max_events=99)
        assert base[0].key != other_events[0].key
        reseeded = eta_monte_carlo(
            eta_chain, {"in": Signal.pulse(1.0, 2.0)}, 40.0, 8, seed=12
        )
        assert make_chunks(reseeded, 3, circuit_spec=spec)[0].key != base[0].key


def test_vector_prefilled_packed_times_match_transitions(eta_chain, mc_scenarios):
    # The vector backend prefills Signal._packed_times straight from its
    # result matrices; the checkpoint codec trusts that cache.  If the
    # prefill ever disagreed with the materialized transitions, resumed
    # sweeps would silently decode different waveforms.
    from array import array

    result = run_many(eta_chain, mc_scenarios, backend="vector")
    checked = 0
    for run in result.runs:
        signals = {**run.execution.node_signals, **run.execution.edge_signals}
        for signal in signals.values():
            cached = signal._pack_times()
            fresh = array("d", [tr.time for tr in signal.transitions]).tobytes()
            assert cached == fresh
            checked += len(signal.transitions)
    assert checked > 0


class TestShardedEquivalence:
    @pytest.mark.parametrize("backend", ["auto", "vector", "sequential"])
    def test_matches_plain_run_many(self, eta_chain, mc_scenarios, baseline, backend):
        sharded = run_many_sharded(
            eta_chain, mc_scenarios, backend=backend, chunk_size=3
        )
        assert_sweeps_identical(baseline, sharded)
        assert sharded.backend.startswith("sharded(")
        assert sharded.shard_report.computed == 3
        assert sharded.shard_report.failed == 0

    def test_run_many_routes_auto_to_sharded(self, eta_chain, mc_scenarios):
        sweep = run_many(eta_chain, mc_scenarios, backend="auto")
        assert sweep.shard_report is not None
        assert sweep.shard_report.chunk_size == DEFAULT_CHUNK_SIZE

    def test_run_many_routes_on_any_sharding_knob(self, eta_chain, mc_scenarios):
        sweep = run_many(eta_chain, mc_scenarios, backend="sequential", retry=2)
        assert sweep.shard_report is not None

    def test_vector_runs_report_per_chunk_seconds(self, eta_chain, mc_scenarios):
        sweep = run_many_sharded(eta_chain, mc_scenarios, backend="auto", chunk_size=4)
        assert all(r.seconds >= 0.0 for r in sweep.shard_report.records)


class TestCheckpointResume:
    def test_second_run_resumes_every_chunk(self, eta_chain, mc_scenarios, tmp_path):
        store = ArtifactStore(tmp_path / "ckpt")
        first = run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=store, chunk_size=3
        )
        assert first.shard_report.computed == 3
        second = run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=store, chunk_size=3
        )
        assert second.shard_report.resumed == 3
        assert second.shard_report.computed == 0
        assert_sweeps_identical(first, second)
        # The resumed result still reports the backend that originally ran.
        assert {r.backend for r in second.shard_report.records} == {"vector"}

    def test_interrupted_sweep_resumes_bit_identically(
        self, eta_chain, mc_scenarios, baseline, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain), {(2, 1): "abort"}
        )
        with pytest.raises(KeyboardInterrupt):
            run_many_sharded(
                eta_chain, mc_scenarios, checkpoint=store, chunk_size=3,
                executor=injector,
            )
        # Chunks 0 and 1 finished before the "kill" and are on disk.
        resumed = run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=store, chunk_size=3
        )
        assert resumed.shard_report.resumed == 2
        assert resumed.shard_report.computed == 1
        assert_sweeps_identical(baseline, resumed)

    def test_cyclic_sweep_resumes_onto_vector_chunks(self, tmp_path):
        # Feedback cycles dispatch to the vector backend now: a killed
        # `backend="auto"` sweep over the paper's storage loop must
        # resume with every chunk -- checkpointed and recomputed alike
        # -- on the vector path, bit-identical to an unbroken run.
        from repro.circuits import fed_back_or
        from repro.core import InvolutionPair, admissible_eta_bound

        pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
        eta = admissible_eta_bound(pair, eta_plus=0.05)
        loop = fed_back_or(EtaInvolutionChannel(pair, eta, ZeroAdversary()))
        scenarios = [
            Scenario(
                f"w={w:g}", {"i": Signal.pulse(0.0, w)}, 120.0
            )
            for w in (0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.4, 1.8)
        ]
        baseline = run_many(loop, scenarios, backend="sequential")
        store = ArtifactStore(tmp_path / "ckpt")
        injector = FaultInjector(
            InlineChunkExecutor(loop), {(2, 1): "abort"}
        )
        with pytest.raises(KeyboardInterrupt):
            run_many_sharded(
                loop, scenarios, backend="auto", checkpoint=store,
                chunk_size=3, executor=injector,
            )
        resumed = run_many_sharded(
            loop, scenarios, backend="auto", checkpoint=store, chunk_size=3
        )
        assert resumed.shard_report.resumed == 2
        assert resumed.shard_report.computed == 1
        assert {r.backend for r in resumed.shard_report.records} == {"vector"}
        assert_sweeps_identical(baseline, resumed)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(interrupted_at=st.integers(min_value=0, max_value=3))
    def test_resume_equivalence_for_all_interruption_points(
        self, eta_chain, mc_scenarios, baseline, interrupted_at
    ):
        """resume(interrupted_at=k) == uninterrupted sweep, for every k."""
        with tempfile.TemporaryDirectory() as tmp:
            store = ArtifactStore(tmp)
            injector = FaultInjector(
                InlineChunkExecutor(eta_chain), {(interrupted_at, 1): "abort"}
            )
            with pytest.raises(KeyboardInterrupt):
                run_many_sharded(
                    eta_chain, mc_scenarios, checkpoint=store, chunk_size=2,
                    executor=injector,
                )
            resumed = run_many_sharded(
                eta_chain, mc_scenarios, checkpoint=store, chunk_size=2
            )
            assert resumed.shard_report.resumed == interrupted_at
            assert resumed.shard_report.computed == 4 - interrupted_at
            assert_sweeps_identical(baseline, resumed)
            assert resumed.shard_report.failed == 0

    def test_accepts_plain_directory_path(self, eta_chain, mc_scenarios, tmp_path):
        run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=str(tmp_path / "c"), chunk_size=4
        )
        resumed = run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=str(tmp_path / "c"), chunk_size=4
        )
        assert resumed.shard_report.resumed == 2

    def test_damaged_chunk_artifact_is_recomputed(
        self, eta_chain, mc_scenarios, baseline, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        run_many_sharded(eta_chain, mc_scenarios, checkpoint=store, chunk_size=3)
        victim = store.paths()[0]
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        with warnings.catch_warnings():
            # Recomputing over the torn artifact repairs it (with the
            # store's replacing-damaged-artifact warning).
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = run_many_sharded(
                eta_chain, mc_scenarios, checkpoint=store, chunk_size=3
            )
        assert resumed.shard_report.computed == 1
        assert resumed.shard_report.resumed == 2
        assert_sweeps_identical(baseline, resumed)

    def test_wrong_run_count_payload_is_recomputed(
        self, eta_chain, mc_scenarios, tmp_path
    ):
        import json

        store = ArtifactStore(tmp_path / "ckpt")
        run_many_sharded(eta_chain, mc_scenarios, checkpoint=store, chunk_size=3)
        victim = store.paths()[0]
        data = json.loads(victim.read_text())
        data["payload"]["runs"] = data["payload"]["runs"][:1]  # truncated chunk
        victim.write_text(json.dumps(data))
        resumed = run_many_sharded(
            eta_chain, mc_scenarios, checkpoint=store, chunk_size=3
        )
        assert resumed.shard_report.computed == 1

    def test_unspeccable_scenarios_rejected_with_checkpoint(self, chain, tmp_path):
        class Opaque(InvolutionChannel):
            pass

        ename = next(iter(chain.edges))
        scenarios = [
            Scenario(
                "s", {"in": Signal.pulse(1.0, 1.0)}, 10.0,
                channels={ename: Opaque(chain.edges[ename].channel.pair)},
            )
        ]
        with pytest.raises(SimulationError, match="spec-representable"):
            run_many_sharded(chain, scenarios, checkpoint=tmp_path / "c")
        # ... but the same sweep runs fine without a checkpoint (falling
        # back, audibly, to the scalar engine for the opaque channel).
        with pytest.warns(RuntimeWarning, match="fell back"):
            run_many_sharded(chain, scenarios, backend="auto")

    def test_checkpoint_reclaims_stale_tmp_files(
        self, eta_chain, mc_scenarios, tmp_path
    ):
        import os
        import time

        store = ArtifactStore(tmp_path / "ckpt")
        store.root.mkdir(parents=True)
        stale = store.root / "ab"
        stale.mkdir()
        stale = stale / "x.json.tmp-1-deadbeef"
        stale.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        run_many_sharded(eta_chain, mc_scenarios, checkpoint=store, chunk_size=4)
        assert not stale.exists()


class TestRetrySemantics:
    def test_transient_failure_retries_with_backoff_then_succeeds(
        self, eta_chain, mc_scenarios, baseline
    ):
        sleeps = []
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain),
            {(1, 1): "crash", (1, 2): "error"},
        )
        sweep = run_many_sharded(
            eta_chain, mc_scenarios, chunk_size=3, executor=injector,
            retry=RetryPolicy(attempts=3, backoff_s=0.01, multiplier=2.0),
            _sleep=sleeps.append,
        )
        assert_sweeps_identical(baseline, sweep)
        records = {r.index: r for r in sweep.shard_report.records}
        assert records[1].attempts == 3
        assert records[0].attempts == 1 and records[2].attempts == 1
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]
        # The injector saw exactly the attempts the policy allows.
        assert injector.calls.count((1, 1)) == 1
        assert injector.calls.count((1, 3)) == 1

    def test_integer_retry_means_total_attempts(self, eta_chain, mc_scenarios):
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain), {(0, a): "error" for a in range(1, 9)}
        )
        with pytest.raises(SweepFailedError) as excinfo:
            run_many_sharded(
                eta_chain, mc_scenarios, chunk_size=4, executor=injector,
                retry=2, _sleep=lambda s: None,
            )
        assert excinfo.value.report.failures[0].attempts == 2

    def test_failure_kinds_are_classified(self, eta_chain, mc_scenarios):
        for fault, kind in [
            (WorkerCrashError("boom"), "crash"),
            (ChunkTimeoutError("slow"), "timeout"),
            (ValueError("bad"), "exception"),
        ]:
            injector = FaultInjector(
                InlineChunkExecutor(eta_chain), {(0, 1): fault}
            )
            with pytest.raises(SweepFailedError) as excinfo:
                run_many_sharded(
                    eta_chain, mc_scenarios, chunk_size=8, executor=injector,
                    retry=1,
                )
            failure = excinfo.value.report.failures[0]
            assert failure.kind == kind
            assert failure.error_type == type(fault).__name__


class TestPoisonChunks:
    def test_poison_chunk_quarantines_without_losing_siblings(
        self, eta_chain, mc_scenarios
    ):
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain),
            {(1, a): "error" for a in range(1, 4)},
        )
        with pytest.raises(SweepFailedError) as excinfo:
            run_many_sharded(
                eta_chain, mc_scenarios, chunk_size=3, executor=injector,
                retry=3, _sleep=lambda s: None,
            )
        error = excinfo.value
        assert len(error.report) == 1
        failure = error.report.failures[0]
        assert failure.index == 1
        assert failure.attempts == 3
        assert failure.scenario_names == ("mc[3]", "mc[4]", "mc[5]")
        # The partial result still carries the sibling chunks' runs.
        partial = error.result
        assert [r.scenario.name for r in partial.runs] == [
            "mc[0]", "mc[1]", "mc[2]", "mc[6]", "mc[7]",
        ]
        assert partial.shard_report.failed == 1

    def test_keep_mode_degrades_gracefully(self, eta_chain, mc_scenarios):
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain), {(0, 1): "error"}
        )
        sweep = run_many_sharded(
            eta_chain, mc_scenarios, chunk_size=3, executor=injector,
            retry=1, on_chunk_failure="keep",
        )
        assert len(sweep.runs) == 5
        assert sweep.failure_report is not None
        assert "quarantined" in sweep.failure_report.summary()

    def test_quarantined_chunks_are_not_checkpointed(
        self, eta_chain, mc_scenarios, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        injector = FaultInjector(
            InlineChunkExecutor(eta_chain), {(0, 1): "error"}
        )
        sweep = run_many_sharded(
            eta_chain, mc_scenarios, chunk_size=3, executor=injector,
            retry=1, on_chunk_failure="keep", checkpoint=store,
        )
        assert sweep.shard_report.failed == 1
        assert len(store) == 2  # only the two successful chunks
        # A rerun without faults computes exactly the quarantined chunk.
        healed = run_many_sharded(
            eta_chain, mc_scenarios, chunk_size=3, checkpoint=store
        )
        assert healed.shard_report.resumed == 2
        assert healed.shard_report.computed == 1
        assert healed.shard_report.failed == 0


class TestPerChunkDispatch:
    def test_ineligible_chunk_falls_back_alone(self, exp_pair, chain):
        class Opaque(InvolutionChannel):
            """Not vector-compilable, perfectly scalar-simulable."""

        ename = next(iter(chain.edges))
        eligible = pulse_scenarios(3)
        ineligible = [
            Scenario(
                f"opaque{i}", {"in": Signal.pulse(1.0, 1.0)}, 40.0,
                channels={ename: Opaque(exp_pair)},
            )
            for i in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="fell back"):
            sweep = run_many_sharded(
                chain, eligible + ineligible, backend="auto", chunk_size=3
            )
        records = {r.index: r for r in sweep.shard_report.records}
        assert records[0].backend == "vector"
        assert records[1].backend == "sequential"
        assert records[1].vector_reasons  # the obstacle is named
        assert not sweep.vector_report.supported
        assert any("chunk(s) 1" in r for r in sweep.vector_report.reasons)
        assert sweep.backend == "sharded(sequential+vector)"

    def test_fully_eligible_sweep_reports_supported(self, eta_chain, mc_scenarios):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sweep = run_many_sharded(
                eta_chain, mc_scenarios, backend="auto", chunk_size=4
            )
        assert sweep.vector_report.supported
        assert sweep.backend == "sharded(vector)"

    def test_sequential_backend_never_dispatches(self, eta_chain, mc_scenarios):
        sweep = run_many_sharded(
            eta_chain, mc_scenarios, backend="sequential", chunk_size=4
        )
        assert sweep.vector_report is None
        assert {r.backend for r in sweep.shard_report.records} == {"sequential"}


class TestValidation:
    def test_unknown_backend_rejected(self, eta_chain, mc_scenarios):
        with pytest.raises(ValueError, match="backend"):
            run_many_sharded(eta_chain, mc_scenarios, backend="quantum")

    def test_unknown_failure_policy_rejected(self, eta_chain, mc_scenarios):
        with pytest.raises(ValueError, match="on_chunk_failure"):
            run_many_sharded(
                eta_chain, mc_scenarios, on_chunk_failure="shrug"
            )

    def test_thread_parallel_chunks_rejected(self, eta_chain, mc_scenarios):
        with pytest.raises(SimulationError, match="thread"):
            run_many_sharded(
                eta_chain, mc_scenarios, backend="thread", max_workers=4
            )

    def test_inline_chunk_timeout_warns(self, eta_chain, mc_scenarios):
        with pytest.warns(RuntimeWarning, match="chunk_timeout"):
            run_many_sharded(
                eta_chain, mc_scenarios, backend="sequential", chunk_timeout=5.0
            )

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            make_chunks(pulse_scenarios(3), 0)


class TestApiPlumbing:
    def test_api_sweep_passes_sharding_knobs(self, eta_chain, mc_scenarios, tmp_path):
        from repro import api

        sweep = api.sweep(
            eta_chain, mc_scenarios, backend="auto",
            checkpoint=tmp_path / "ckpt", chunk_size=4,
        )
        assert sweep.shard_report.computed == 2
        resumed = api.sweep(
            eta_chain, mc_scenarios, backend="auto",
            checkpoint=tmp_path / "ckpt", chunk_size=4,
        )
        assert resumed.shard_report.resumed == 2

    def test_experiment_provenance_records_chunks(self, tmp_path):
        from repro import api

        result = api.experiment(
            "eta_coverage", {"n_runs": 8, "stages": 2}, backend="auto",
            checkpoint=tmp_path / "ckpt",
        )
        assert result.provenance["chunks_computed"] == 1
        assert result.provenance["chunks_resumed"] == 0
        rerun = api.experiment(
            "eta_coverage", {"n_runs": 8, "stages": 2}, backend="auto",
            checkpoint=tmp_path / "ckpt",
        )
        assert rerun.provenance["chunks_resumed"] == 1
        assert rerun.rows == result.rows

    def test_unsharded_experiment_provenance_is_null(self):
        from repro import api

        result = api.experiment("eta_coverage", {"n_runs": 4, "stages": 2})
        assert result.provenance["chunks_computed"] is None


# --------------------------------------------------------------------------- #
# Chaos: real process workers killed, hung, and crashed
# --------------------------------------------------------------------------- #


@pytest.mark.chaos
class TestProcessChaos:
    def test_killed_worker_is_respawned_and_chunk_retried(
        self, eta_chain, mc_scenarios, baseline
    ):
        sweep = run_many_sharded(
            eta_chain, mc_scenarios, backend="process", chunk_size=3,
            max_workers=1, retry=RetryPolicy(attempts=3, backoff_s=0.01),
            _chaos={"kill": [[0, 1]]},
        )
        assert_sweeps_identical(baseline, sweep)
        records = {r.index: r for r in sweep.shard_report.records}
        assert records[0].attempts == 2  # died once, succeeded on retry
        assert records[1].attempts == 1

    def test_hung_worker_times_out_and_quarantines(self, eta_chain, mc_scenarios):
        with pytest.raises(SweepFailedError) as excinfo:
            run_many_sharded(
                eta_chain, mc_scenarios, backend="process", chunk_size=3,
                max_workers=1, chunk_timeout=1.0,
                retry=RetryPolicy(attempts=2, backoff_s=0.01),
                _chaos={"hang": [[1, 1], [1, 2]]},
            )
        failure = excinfo.value.report.failures[0]
        assert failure.kind == "timeout"
        assert failure.index == 1
        assert failure.attempts == 2
        # Sibling chunks completed despite the pool being killed twice.
        assert len(excinfo.value.result.runs) == 5

    def test_worker_exception_quarantines_as_exception(
        self, eta_chain, mc_scenarios
    ):
        with pytest.raises(SweepFailedError) as excinfo:
            run_many_sharded(
                eta_chain, mc_scenarios, backend="process", chunk_size=4,
                max_workers=1, retry=1, _chaos={"raise": [[0, 1]]},
            )
        failure = excinfo.value.report.failures[0]
        assert failure.kind == "exception"
        assert "chaos" in failure.error

    def test_process_checkpoint_resumes_after_crashy_run(
        self, eta_chain, mc_scenarios, baseline, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        first = run_many_sharded(
            eta_chain, mc_scenarios, backend="process", chunk_size=3,
            max_workers=1, checkpoint=store,
            retry=RetryPolicy(attempts=3, backoff_s=0.01),
            _chaos={"kill": [[2, 1]]},
        )
        assert_sweeps_identical(baseline, first)
        # The resumed run needs no pool at all: every chunk is on disk.
        resumed = run_many_sharded(
            eta_chain, mc_scenarios, backend="process", chunk_size=3,
            max_workers=1, checkpoint=store,
        )
        assert resumed.shard_report.resumed == 3
        assert_sweeps_identical(baseline, resumed)

    def test_process_and_inline_checkpoints_are_interchangeable(
        self, eta_chain, mc_scenarios, tmp_path
    ):
        store = ArtifactStore(tmp_path / "ckpt")
        run_many_sharded(
            eta_chain, mc_scenarios, backend="process", chunk_size=4,
            max_workers=1, checkpoint=store,
        )
        # An inline (auto) rerun hits the chunks a process run wrote.
        resumed = run_many_sharded(
            eta_chain, mc_scenarios, backend="auto", chunk_size=4,
            checkpoint=store,
        )
        assert resumed.shard_report.resumed == 2
        assert resumed.shard_report.computed == 0
