"""Property-based online/offline equivalence of the shared kernel.

The kernel refactor must preserve the seed's central invariant: on a
single-channel circuit, the event-driven simulator agrees
transition-for-transition with the offline channel algorithm of
:mod:`repro.core.channel`.  Both paths now execute the same
:class:`~repro.engine.kernel.ChannelKernel`, and these hypothesis tests
pin the equivalence down over random stimuli, channel parameters and
admissible adversarial shift sequences.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import BUF, Circuit, simulate
from repro.core import (
    DegradationDelayChannel,
    EtaInvolutionChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    SequenceAdversary,
    Signal,
    admissible_eta_bound,
)

END_TIME = 1e6


def single_channel_circuit(channel) -> Circuit:
    """in -> [channel under test] -> BUF -> out (zero-delay tap)."""
    circuit = Circuit("single-channel")
    circuit.add_input("a")
    circuit.add_gate("g", BUF, initial_value=channel.output_initial_value(0))
    circuit.add_output("y")
    circuit.connect("a", "g", channel, pin=0, name="ch")
    circuit.connect("g", "y")
    return circuit


def online_edge_signal(channel, stimulus: Signal) -> Signal:
    execution = simulate(single_channel_circuit(channel), {"a": stimulus}, END_TIME)
    return execution.edge("ch")


@st.composite
def stimuli(draw) -> Signal:
    """Alternating signals with random (possibly tight) gaps, initial 0."""
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=6.0, allow_nan=False),
            min_size=1,
            max_size=25,
        )
    )
    times = []
    t = 0.0
    for gap in gaps:
        t += gap
        times.append(t)
    return Signal.from_times(times)


@st.composite
def exp_pairs(draw) -> InvolutionPair:
    tau = draw(st.floats(min_value=0.3, max_value=2.0, allow_nan=False))
    t_p = draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False))
    return InvolutionPair.exp_channel(tau, t_p)


@settings(max_examples=60, deadline=None)
@given(stimuli(), exp_pairs())
def test_involution_channel_online_matches_offline(stimulus, pair):
    offline = InvolutionChannel(pair).apply(stimulus)
    online = online_edge_signal(InvolutionChannel(pair), stimulus)
    assert online.initial_value == offline.initial_value
    assert online.transition_times() == offline.transition_times()
    assert [tr.value for tr in online] == [tr.value for tr in offline]


@settings(max_examples=60, deadline=None)
@given(stimuli(), exp_pairs(), st.data())
def test_eta_channel_online_matches_offline(stimulus, pair, data):
    eta = admissible_eta_bound(pair, eta_plus=0.04)
    shifts = data.draw(
        st.lists(
            st.floats(
                min_value=-eta.eta_minus,
                max_value=eta.eta_plus,
                allow_nan=False,
            ),
            min_size=len(stimulus),
            max_size=len(stimulus),
        )
    )
    offline = EtaInvolutionChannel(
        pair, eta, SequenceAdversary(shifts)
    ).apply(stimulus)
    online = online_edge_signal(
        EtaInvolutionChannel(pair, eta, SequenceAdversary(shifts)), stimulus
    )
    assert online.transition_times() == offline.transition_times()
    assert [tr.value for tr in online] == [tr.value for tr in offline]


@settings(max_examples=40, deadline=None)
@given(
    stimuli(),
    st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
    st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
)
def test_pure_delay_online_matches_offline(stimulus, rising, falling):
    offline = PureDelayChannel(rising, falling).apply(stimulus)
    online = online_edge_signal(PureDelayChannel(rising, falling), stimulus)
    assert online.transition_times() == offline.transition_times()


@settings(max_examples=40, deadline=None)
@given(stimuli(), exp_pairs())
def test_ddm_online_matches_offline(stimulus, pair):
    channel_args = dict(delta_nominal=pair.delta_up_inf, tau_deg=1.0)
    offline = DegradationDelayChannel(**channel_args).apply(stimulus)
    online = online_edge_signal(DegradationDelayChannel(**channel_args), stimulus)
    assert online.transition_times() == offline.transition_times()


def test_inverting_channel_online_matches_offline(exp_pair):
    stimulus = Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0])
    channel = InvolutionChannel(exp_pair, inverting=True)
    offline = channel.apply(stimulus)
    online = online_edge_signal(InvolutionChannel(exp_pair, inverting=True), stimulus)
    assert online.initial_value == offline.initial_value == 1
    assert online.transition_times() == offline.transition_times()


@settings(max_examples=40, deadline=None)
@given(
    stimuli(),
    st.lists(exp_pairs(), min_size=2, max_size=4),
)
def test_inverter_chain_matches_offline_composition(stimulus, pairs):
    """The optimized engine equals stage-by-stage offline evaluation.

    On a chain, the event-driven engine's per-edge executions must equal
    the offline channel algorithm applied stage by stage (each stage's
    offline output, inverted by the INV gate, feeding the next stage).
    This pins the optimized kernel/scheduler (deque frontier, tombstone
    skipping, integer dispatch) to the PR-1 semantics over random stimuli
    and heterogeneous channel parameters.
    """
    from repro.circuits import inverter_chain

    channels = [InvolutionChannel(pair) for pair in pairs]
    channel_iter = iter(list(channels))
    circuit = inverter_chain(len(channels), lambda: next(channel_iter))
    execution = simulate(circuit, {"in": stimulus}, END_TIME)

    offline_in = stimulus
    for stage, pair in enumerate(pairs, start=1):
        offline_out = InvolutionChannel(pair).apply(offline_in)
        # Resolve the edge into this stage structurally (edge names are
        # auto-generated by the circuit builder).
        online_out = None
        for ename, edge in circuit.edges.items():
            if edge.target == f"inv{stage}":
                online_out = execution.edge(ename)
        assert online_out is not None
        assert online_out.initial_value == offline_out.initial_value
        assert online_out.transition_times() == offline_out.transition_times()
        assert [t.value for t in online_out] == [t.value for t in offline_out]
        # The INV gate inverts in zero time: next stage's offline input.
        offline_in = offline_out.inverted()


def test_domain_guard_cancellation_matches(exp_pair):
    # A long stable phase followed by a very short glitch triggers the
    # -inf domain guard; online and offline must cancel identically.
    stimulus = Signal.from_times([1.0, 40.0, 40.0 + 1e-4, 45.0])
    channel = InvolutionChannel(exp_pair)
    offline = channel.apply(stimulus)
    online = online_edge_signal(InvolutionChannel(exp_pair), stimulus)
    assert online.transition_times() == offline.transition_times()
    assert all(math.isfinite(t) for t in online.transition_times())
