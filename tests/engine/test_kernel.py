"""Unit tests for the shared channel kernel."""

import math

import pytest

from repro.core import (
    Channel,
    EtaInvolutionChannel,
    InvolutionChannel,
    PureDelayChannel,
    SequenceAdversary,
    Signal,
)
from repro.engine import CausalityError, ChannelKernel, KernelEvent, SimulationError


class ScriptedDelayChannel(Channel):
    """Channel returning a scripted delay per transition index (test helper)."""

    def __init__(self, delays):
        super().__init__()
        self._delays = list(delays)

    def delay_for(self, T, rising_output, index, time):
        return self._delays[index]


class TestTentativePhase:
    def test_matches_channel_pending_transitions(self, involution_channel):
        signal = Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0])
        pending = involution_channel.pending_transitions(signal)
        kernel = ChannelKernel(involution_channel, input_initial_value=0)
        direct = [kernel.tentative(tr.time, tr.value) for tr in signal]
        assert [p.delay for p in direct] == [p.delay for p in pending]
        assert [p.T for p in direct] == [p.T for p in pending]

    def test_first_transition_has_infinite_T(self, involution_channel):
        kernel = ChannelKernel(involution_channel)
        p = kernel.tentative(1.0, 1)
        assert math.isinf(p.T) and p.T > 0


class TestOfflineProcess:
    def test_process_matches_apply(self, involution_channel, exp_pair):
        signal = Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0])
        offline = InvolutionChannel(exp_pair).apply(signal)
        kernel = ChannelKernel(involution_channel)
        assert kernel.process(signal) == offline

    def test_feed_dedups_same_value_inputs(self):
        kernel = ChannelKernel(PureDelayChannel(1.0), input_initial_value=0)
        assert kernel.feed(1.0, 0) is None  # no transition at the input
        event = kernel.feed(2.0, 1)
        assert isinstance(event, KernelEvent)
        assert event.time == pytest.approx(3.0)


class TestCancelledIdBookkeeping:
    """The cancelled-id leak fix: tombstones only for enqueued events."""

    def test_past_horizon_cancellation_leaves_no_tombstone(self):
        # queue_horizon = 10 (the engine's end_time): the rising output at
        # 11.5 is never enqueued, so transport-cancelling it must not
        # record its id -- those ids used to accumulate until end of run.
        kernel = ChannelKernel(
            PureDelayChannel(2.0, 0.5), input_initial_value=0, queue_horizon=10.0
        )
        rise = kernel.feed(9.5, 1)
        assert rise is not None and rise.time == pytest.approx(11.5)
        fall = kernel.feed(9.9, 0)  # scheduled at 10.4, cancels the rise
        assert fall is not None and fall.time == pytest.approx(10.4)
        assert kernel.cancelled_ids == set()
        assert [entry[2] for entry in kernel.pending] == [fall.event_id]

    def test_within_horizon_cancellation_tombstone_is_consumed(self):
        kernel = ChannelKernel(
            PureDelayChannel(5.0, 1.0), input_initial_value=0, queue_horizon=100.0
        )
        rise = kernel.feed(1.0, 1)  # scheduled at 6.0
        fall = kernel.feed(2.0, 0)  # scheduled at 3.0 -> cancels the rise
        assert rise is not None and fall is not None
        assert kernel.cancelled_ids == {rise.event_id}
        # Delivering the cancelled event consumes its tombstone.
        assert kernel.deliver(rise.event_id, rise.value, rise.time) is False
        assert kernel.cancelled_ids == set()

    def test_finalize_purges_pending_and_tombstones(self):
        kernel = ChannelKernel(
            PureDelayChannel(5.0, 1.0), input_initial_value=0, queue_horizon=100.0
        )
        kernel.feed(1.0, 1)
        kernel.feed(2.0, 0)
        assert kernel.pending and kernel.cancelled_ids
        kernel.finalize()
        assert not kernel.pending
        assert kernel.cancelled_ids == set()


class TestDeliverStateDivergence:
    """Delivering an id that is neither pending nor tombstoned is an error.

    It can only mean scheduler/kernel state divergence; the kernel used to
    silently deliver the value anyway (regression test for that bugfix).
    """

    def test_unknown_event_id_raises(self):
        kernel = ChannelKernel(PureDelayChannel(1.0), input_initial_value=0)
        event = kernel.feed(1.0, 1)
        with pytest.raises(SimulationError, match="diverged"):
            kernel.deliver(event.event_id + 999, 1, 2.0)

    def test_double_delivery_raises(self):
        kernel = ChannelKernel(PureDelayChannel(1.0), input_initial_value=0)
        event = kernel.feed(1.0, 1)
        assert kernel.deliver(event.event_id, event.value, event.time) is True
        with pytest.raises(SimulationError, match="diverged"):
            kernel.deliver(event.event_id, event.value, event.time)


class TestCausalityPolicy:
    def test_error_policy_raises(self):
        kernel = ChannelKernel(ScriptedDelayChannel([1.0, -1.5]), input_initial_value=0)
        event = kernel.feed(0.0, 1)
        kernel.deliver(event.event_id, event.value, event.time)
        with pytest.raises(CausalityError):
            kernel.feed(2.0, 0)  # schedules at 0.5 < delivered 1.0

    def test_drop_policy_counts(self):
        kernel = ChannelKernel(
            ScriptedDelayChannel([1.0, -1.5]),
            input_initial_value=0,
            on_causality="drop",
        )
        event = kernel.feed(0.0, 1)
        kernel.deliver(event.event_id, event.value, event.time)
        assert kernel.feed(2.0, 0) is None
        assert kernel.dropped == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ChannelKernel(PureDelayChannel(1.0), on_causality="ignore")


class TestEtaKernel:
    def test_sequence_adversary_shifts_via_kernel(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(
            exp_pair, eta_small, SequenceAdversary([0.0, eta_small.eta_plus])
        )
        signal = Signal.pulse(1.0, 4.0)
        kernel = ChannelKernel(channel)
        out = kernel.process(signal)
        reference = channel.deterministic_output(signal)
        times, ref_times = out.transition_times(), reference.transition_times()
        assert times[0] == pytest.approx(ref_times[0])
        assert times[1] == pytest.approx(ref_times[1] + eta_small.eta_plus)
