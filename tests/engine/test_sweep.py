"""Unit tests for the batched sweep runner."""

import pytest

from repro.circuits import fed_back_or, inverter_chain, simulate
from repro.core import (
    EtaInvolutionChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
)
from repro.engine import (
    CircuitTopology,
    Engine,
    Scenario,
    SimulationError,
    channel_overrides,
    eta_monte_carlo,
    run_many,
    sweep_map,
)


@pytest.fixture()
def chain(exp_pair):
    return inverter_chain(4, lambda: InvolutionChannel(exp_pair))


class TestRunMany:
    def test_matches_naive_simulate_loop(self, chain):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        sweep = run_many(chain, scenarios)
        assert len(sweep) == 4
        for run in sweep:
            naive = simulate(chain, run.scenario.inputs, 60.0)
            assert run.execution.output("out") == naive.output("out")
            assert run.execution.event_count == naive.event_count

    def test_accepts_prebuilt_topology(self, chain):
        topology = CircuitTopology(chain)
        sweep = run_many(
            topology, [Scenario("s", {"in": Signal.pulse(1.0, 2.0)}, 50.0)]
        )
        assert sweep.topology is topology
        assert sweep.execution("s").output("out").final_value == 0

    def test_execution_lookup_unknown_name(self, chain):
        sweep = run_many(chain, [Scenario("s", {"in": Signal.zero()}, 10.0)])
        with pytest.raises(KeyError):
            sweep.execution("nope")

    def test_execution_lookup_is_cached(self, chain):
        sweep = run_many(
            chain,
            [
                Scenario(f"s{i}", {"in": Signal.pulse(1.0, 2.0)}, 50.0)
                for i in range(3)
            ],
        )
        assert sweep.execution("s1") is sweep.runs[1].execution
        assert sweep.__dict__["_by_name"]["s2"] is sweep.runs[2]

    def test_duplicate_scenario_names_rejected(self, chain):
        sweep = run_many(
            chain,
            [
                Scenario("dup", {"in": Signal.zero()}, 10.0),
                Scenario("dup", {"in": Signal.zero()}, 10.0),
            ],
        )
        with pytest.raises(SimulationError, match="duplicate scenario names"):
            sweep.execution("dup")

    def test_duplicate_scenario_error_names_scenario_and_index(self, chain):
        """Regression: the error must say which scenario collides and where."""
        sweep = run_many(
            chain,
            [
                Scenario("a", {"in": Signal.zero()}, 10.0),
                Scenario("dup", {"in": Signal.zero()}, 10.0),
                Scenario("dup", {"in": Signal.zero()}, 10.0),
            ],
        )
        with pytest.raises(
            SimulationError,
            match=r"'dup' at index 2 \(first seen at index 1\)",
        ):
            sweep.execution("a")

    def test_sequential_backend_alias(self, chain):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (0.5, 2.0)
        ]
        default = run_many(chain, scenarios)
        explicit = run_many(chain, scenarios, backend="sequential", max_workers=8)
        for a, b in zip(default, explicit):
            assert a.execution.node_signals == b.execution.node_signals

    def test_channel_override_per_scenario(self, exp_pair, eta_small):
        circuit = fed_back_or(
            EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        long_pulse = {"i": Signal.pulse(0.0, 5.0)}
        short_pulse = {"i": Signal.pulse(0.0, 0.2)}
        scenarios = [
            Scenario(
                "worst-long",
                long_pulse,
                100.0,
                channels={
                    "feedback": EtaInvolutionChannel(
                        exp_pair, eta_small, WorstCaseAdversary()
                    )
                },
            ),
            Scenario(
                "worst-short",
                short_pulse,
                100.0,
                channels={
                    "feedback": EtaInvolutionChannel(
                        exp_pair, eta_small, WorstCaseAdversary()
                    )
                },
            ),
        ]
        sweep = run_many(circuit, scenarios, max_events=2_000_000)
        assert sweep.execution("worst-long").output_signals["or_out"].final_value == 1
        assert sweep.execution("worst-short").output_signals["or_out"].final_value == 0

    def test_unknown_override_edge_rejected(self, chain):
        scenario = Scenario(
            "bad",
            {"in": Signal.zero()},
            10.0,
            channels={"no-such-edge": PureDelayChannel(1.0)},
        )
        with pytest.raises(SimulationError):
            run_many(chain, [scenario])

    def test_parallel_matches_sequential(self, chain):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        sequential = run_many(chain, scenarios)
        parallel = run_many(chain, scenarios, max_workers=3)
        for seq_run, par_run in zip(sequential, parallel):
            assert seq_run.execution.output("out") == par_run.execution.output("out")

    def test_unknown_backend_rejected(self, chain):
        with pytest.raises(ValueError, match="backend"):
            run_many(
                chain, [Scenario("s", {"in": Signal.zero()}, 10.0)], backend="mpi"
            )

    def test_records_timing(self, chain):
        sweep = run_many(chain, [Scenario("s", {"in": Signal.pulse(1.0, 2.0)}, 50.0)])
        assert sweep.total_seconds > 0.0
        assert all(run.seconds >= 0.0 for run in sweep)


class TestBackendEquivalence:
    """Fixed seeds => bit-identical executions on every run_many backend."""

    @pytest.fixture()
    def mc_setup(self, exp_pair, eta_small):
        circuit = inverter_chain(
            3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        inputs = {"in": Signal.pulse_train(1.0, [2.0, 2.0], [3.0])}
        scenarios = eta_monte_carlo(circuit, inputs, 60.0, 8, seed=11)
        return circuit, scenarios

    def test_all_backends_bit_identical(self, mc_setup):
        circuit, scenarios = mc_setup
        sequential = run_many(circuit, scenarios)
        threaded = run_many(circuit, scenarios, max_workers=3)
        process = run_many(circuit, scenarios, max_workers=3, backend="process")
        assert len(sequential) == len(threaded) == len(process) == len(scenarios)
        for seq, thr, proc in zip(sequential, threaded, process):
            assert seq.scenario.name == thr.scenario.name == proc.scenario.name
            assert seq.execution.node_signals == thr.execution.node_signals
            assert seq.execution.node_signals == proc.execution.node_signals
            assert seq.execution.edge_signals == thr.execution.edge_signals
            assert seq.execution.edge_signals == proc.execution.edge_signals
            assert seq.execution.event_count == proc.execution.event_count
            assert (
                seq.execution.dropped_transitions
                == proc.execution.dropped_transitions
            )

    def test_process_backend_chunking_preserves_order(self, mc_setup):
        circuit, scenarios = mc_setup
        sequential = run_many(circuit, scenarios)
        chunked = run_many(
            circuit, scenarios, max_workers=2, backend="process", chunk_size=3
        )
        for seq, proc in zip(sequential, chunked):
            assert seq.scenario.name == proc.scenario.name
            assert seq.execution.node_signals == proc.execution.node_signals

    def test_process_worker_init_consumes_spec_json(self, mc_setup):
        """The worker initializer rebuilds its engine from CircuitSpec JSON.

        Calls the initializer in-process with exactly what the parent
        ships (the spec JSON text), then checks the rebuilt engine matches
        a parent-side engine run for run: the worker path needs no pickled
        circuit object.
        """
        import repro.engine.sweep as sweep_module

        circuit, scenarios = mc_setup
        spec_json = circuit.to_spec().to_json(indent=None)
        original = sweep_module._WORKER_ENGINE
        try:
            sweep_module._process_worker_init(spec_json, "error", 1_000_000)
            worker_engine = sweep_module._WORKER_ENGINE
            scenario = scenarios[0]
            worker_run = worker_engine.run(
                scenario.inputs, scenario.end_time, channels=scenario.channels
            )
            parent_run = Engine(CircuitTopology(circuit)).run(
                scenario.inputs, scenario.end_time, channels=scenario.channels
            )
            assert worker_run.node_signals == parent_run.node_signals
            assert worker_run.edge_signals == parent_run.edge_signals
        finally:
            sweep_module._WORKER_ENGINE = original

    def test_process_backend_rejects_unspecable_circuit(self, exp_pair):
        class OpaqueChannel(PureDelayChannel):
            """No registered spec kind -- cannot ship to process workers."""

        circuit = inverter_chain(2, lambda: OpaqueChannel(1.0))
        scenarios = [
            Scenario(f"s{i}", {"in": Signal.pulse(1.0, 2.0)}, 20.0) for i in range(2)
        ]
        with pytest.raises(SimulationError, match="CircuitSpec"):
            run_many(circuit, scenarios, max_workers=2, backend="process")
        # The same circuit still runs on the in-process backends.
        assert len(run_many(circuit, scenarios)) == 2

    def test_process_backend_rejects_unpicklable_scenarios(self, chain):
        captured = []  # a closure makes the override channel unpicklable

        class ClosureChannel(PureDelayChannel):
            def delay_for(self, T, rising_output, index, time):
                captured.append(index)
                return super().delay_for(T, rising_output, index, time)

        first_edge = next(iter(chain.edges))
        scenarios = [
            Scenario(
                f"s{i}",
                {"in": Signal.pulse(1.0, 2.0)},
                50.0,
                channels={first_edge: ClosureChannel(1.0)},
            )
            for i in range(2)
        ]
        with pytest.raises(SimulationError, match="picklable"):
            run_many(chain, scenarios, max_workers=2, backend="process")


class TestChannelOverrides:
    def test_skips_zero_delay_edges(self, chain, exp_pair):
        overrides = channel_overrides(
            chain, lambda edge: InvolutionChannel(exp_pair)
        )
        # The 4-stage chain has 4 factory channels plus the zero-delay out tap.
        assert len(overrides) == 4
        assert all(isinstance(c, InvolutionChannel) for c in overrides.values())

    def test_factory_none_keeps_base_channel(self, chain):
        overrides = channel_overrides(chain, lambda edge: None)
        assert overrides == {}


class TestEtaMonteCarlo:
    def test_scenarios_are_deterministic_per_seed(self, exp_pair, eta_small):
        circuit = inverter_chain(
            3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        inputs = {"in": Signal.pulse(1.0, 4.0)}
        first = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=3))
        second = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=3))
        other = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=4))
        firsts = [r.execution.output("out").transition_times() for r in first]
        seconds = [r.execution.output("out").transition_times() for r in second]
        others = [r.execution.output("out").transition_times() for r in other]
        assert firsts == seconds
        assert firsts != others

    def test_runs_differ_from_each_other(self, exp_pair, eta_small):
        circuit = inverter_chain(
            3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        inputs = {"in": Signal.pulse(1.0, 4.0)}
        sweep = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 4, seed=9))
        outputs = {
            tuple(r.execution.output("out").transition_times()) for r in sweep
        }
        assert len(outputs) > 1  # independent adversaries per run

    def test_non_eta_edges_keep_base_channel(self, exp_pair):
        circuit = inverter_chain(3, lambda: InvolutionChannel(exp_pair))
        scenarios = eta_monte_carlo(circuit, {"in": Signal.zero()}, 10.0, 2)
        assert all(s.channels == {} for s in scenarios)


class TestSweepMap:
    def test_sequential_identity(self):
        assert sweep_map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert sweep_map(lambda x: x + 1, items, max_workers=4) == [
            x + 1 for x in items
        ]


class TestEngineReuse:
    def test_engine_run_is_repeatable(self, chain):
        engine = Engine(CircuitTopology(chain))
        inputs = {"in": Signal.pulse(1.0, 2.0)}
        first = engine.run(inputs, 50.0)
        second = engine.run(inputs, 50.0)
        assert first.output("out") == second.output("out")
        assert first.event_count == second.event_count
