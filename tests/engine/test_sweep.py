"""Unit tests for the batched sweep runner."""

import pytest

from repro.circuits import fed_back_or, inverter_chain, simulate
from repro.core import (
    EtaInvolutionChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
)
from repro.engine import (
    CircuitTopology,
    Engine,
    Scenario,
    SimulationError,
    channel_overrides,
    eta_monte_carlo,
    run_many,
    sweep_map,
)


@pytest.fixture()
def chain(exp_pair):
    return inverter_chain(4, lambda: InvolutionChannel(exp_pair))


class TestRunMany:
    def test_matches_naive_simulate_loop(self, chain):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        sweep = run_many(chain, scenarios)
        assert len(sweep) == 4
        for run in sweep:
            naive = simulate(chain, run.scenario.inputs, 60.0)
            assert run.execution.output("out") == naive.output("out")
            assert run.execution.event_count == naive.event_count

    def test_accepts_prebuilt_topology(self, chain):
        topology = CircuitTopology(chain)
        sweep = run_many(
            topology, [Scenario("s", {"in": Signal.pulse(1.0, 2.0)}, 50.0)]
        )
        assert sweep.topology is topology
        assert sweep.execution("s").output("out").final_value == 0

    def test_execution_lookup_unknown_name(self, chain):
        sweep = run_many(chain, [Scenario("s", {"in": Signal.zero()}, 10.0)])
        with pytest.raises(KeyError):
            sweep.execution("nope")

    def test_channel_override_per_scenario(self, exp_pair, eta_small):
        circuit = fed_back_or(
            EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        long_pulse = {"i": Signal.pulse(0.0, 5.0)}
        short_pulse = {"i": Signal.pulse(0.0, 0.2)}
        scenarios = [
            Scenario(
                "worst-long",
                long_pulse,
                100.0,
                channels={
                    "feedback": EtaInvolutionChannel(
                        exp_pair, eta_small, WorstCaseAdversary()
                    )
                },
            ),
            Scenario(
                "worst-short",
                short_pulse,
                100.0,
                channels={
                    "feedback": EtaInvolutionChannel(
                        exp_pair, eta_small, WorstCaseAdversary()
                    )
                },
            ),
        ]
        sweep = run_many(circuit, scenarios, max_events=2_000_000)
        assert sweep.execution("worst-long").output_signals["or_out"].final_value == 1
        assert sweep.execution("worst-short").output_signals["or_out"].final_value == 0

    def test_unknown_override_edge_rejected(self, chain):
        scenario = Scenario(
            "bad",
            {"in": Signal.zero()},
            10.0,
            channels={"no-such-edge": PureDelayChannel(1.0)},
        )
        with pytest.raises(SimulationError):
            run_many(chain, [scenario])

    def test_parallel_matches_sequential(self, chain):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (0.5, 1.0, 2.0, 4.0)
        ]
        sequential = run_many(chain, scenarios)
        parallel = run_many(chain, scenarios, max_workers=3)
        for seq_run, par_run in zip(sequential, parallel):
            assert seq_run.execution.output("out") == par_run.execution.output("out")

    def test_records_timing(self, chain):
        sweep = run_many(chain, [Scenario("s", {"in": Signal.pulse(1.0, 2.0)}, 50.0)])
        assert sweep.total_seconds > 0.0
        assert all(run.seconds >= 0.0 for run in sweep)


class TestChannelOverrides:
    def test_skips_zero_delay_edges(self, chain, exp_pair):
        overrides = channel_overrides(
            chain, lambda edge: InvolutionChannel(exp_pair)
        )
        # The 4-stage chain has 4 factory channels plus the zero-delay out tap.
        assert len(overrides) == 4
        assert all(isinstance(c, InvolutionChannel) for c in overrides.values())

    def test_factory_none_keeps_base_channel(self, chain):
        overrides = channel_overrides(chain, lambda edge: None)
        assert overrides == {}


class TestEtaMonteCarlo:
    def test_scenarios_are_deterministic_per_seed(self, exp_pair, eta_small):
        circuit = inverter_chain(
            3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        inputs = {"in": Signal.pulse(1.0, 4.0)}
        first = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=3))
        second = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=3))
        other = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 5, seed=4))
        firsts = [r.execution.output("out").transition_times() for r in first]
        seconds = [r.execution.output("out").transition_times() for r in second]
        others = [r.execution.output("out").transition_times() for r in other]
        assert firsts == seconds
        assert firsts != others

    def test_runs_differ_from_each_other(self, exp_pair, eta_small):
        circuit = inverter_chain(
            3, lambda: EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        )
        inputs = {"in": Signal.pulse(1.0, 4.0)}
        sweep = run_many(circuit, eta_monte_carlo(circuit, inputs, 60.0, 4, seed=9))
        outputs = {
            tuple(r.execution.output("out").transition_times()) for r in sweep
        }
        assert len(outputs) > 1  # independent adversaries per run

    def test_non_eta_edges_keep_base_channel(self, exp_pair):
        circuit = inverter_chain(3, lambda: InvolutionChannel(exp_pair))
        scenarios = eta_monte_carlo(circuit, {"in": Signal.zero()}, 10.0, 2)
        assert all(s.channels == {} for s in scenarios)


class TestSweepMap:
    def test_sequential_identity(self):
        assert sweep_map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert sweep_map(lambda x: x + 1, items, max_workers=4) == [
            x + 1 for x in items
        ]


class TestEngineReuse:
    def test_engine_run_is_repeatable(self, chain):
        engine = Engine(CircuitTopology(chain))
        inputs = {"in": Signal.pulse(1.0, 2.0)}
        first = engine.run(inputs, 50.0)
        second = engine.run(inputs, 50.0)
        assert first.output("out") == second.output("out")
        assert first.event_count == second.event_count
