"""Differential harness: scalar vs vector over random *cyclic* circuits.

PR 5's property tests pinned scalar/vector bit-identity for acyclic
chains.  This module extends the pin to the shapes the fixpoint
lockstep schedule and pre-drawn RNG streams opened up: feedback loops,
unseeded ``RandomAdversary`` channels, zero-delay edges into
multi-input gates, and settle-inconsistent initial values.  Each
hypothesis example builds a random circuit + scenario family and
asserts the two backends agree on *everything*: node/edge/output
signals, event counts, dropped-transition counts, and raised errors.
A dynamic refusal (``VectorUnsupportedError``) is legal but must be
loud and must reproduce the sequential outcome unchanged.

The default profile is small and derandomized so plain ``pytest -x -q``
stays fast and deterministic; the ``ci`` profile (selected with
``--hypothesis-profile=ci`` by the dedicated CI job, which also pins
``--hypothesis-seed``) runs a much larger example budget.  Profiles are
registered in ``tests/conftest.py``.

Shrunk counterexamples found while developing the fixpoint schedule are
checked in below as ``test_regression_*`` cases.
"""

import warnings

import pytest
from hypothesis import event, given, settings
from hypothesis import strategies as st

from repro.circuits import BUF, INV, OR2, Circuit, fed_back_or, inverter_chain
from repro.core import (
    DegradationDelayChannel,
    EtaInvolutionChannel,
    InertialDelayChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    RandomAdversary,
    Signal,
    SineAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.core.channel import ZeroDelayChannel
from repro.engine import CircuitTopology, run_many
from repro.engine.errors import SimulationError
from repro.engine.sweep import Scenario
from repro.engine.vector import (
    VectorUnsupportedError,
    predraw_random_adversaries,
    run_many_vector,
)

pytestmark = pytest.mark.differential

PAIR = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
ETA = admissible_eta_bound(PAIR, eta_plus=0.05)

# One fixed seed pins every unseeded RandomAdversary slot before either
# backend runs; without it the two backends would (correctly) draw
# different fresh entropy and diverge by design.
PREDRAW_SEED = 0xD1FF


def _assert_bit_identical(sequential_runs, vector_runs):
    assert len(sequential_runs) == len(vector_runs)
    for seq, vec in zip(sequential_runs, vector_runs):
        assert seq.execution.node_signals == vec.execution.node_signals
        assert seq.execution.edge_signals == vec.execution.edge_signals
        assert seq.execution.output_signals == vec.execution.output_signals
        assert seq.execution.event_count == vec.execution.event_count
        assert (
            seq.execution.dropped_transitions
            == vec.execution.dropped_transitions
        )


def _outcome(thunk):
    """Run a backend, normalising an engine error to comparable form."""
    try:
        return thunk(), None
    except VectorUnsupportedError:
        raise  # a refusal, not a simulation outcome -- handled by the caller
    except SimulationError as exc:
        return None, (type(exc).__name__, str(exc))


def assert_differential(circuit, scenarios, **kwargs):
    """The full contract, error channel included.

    Returns ``"vector"`` when the batch path executed and matched, or
    ``"fallback"`` when it refused (statically or dynamically) and the
    public entry point reproduced the sequential outcome unchanged.
    """
    topology = CircuitTopology(circuit)
    scenarios = predraw_random_adversaries(
        topology, scenarios, seed=PREDRAW_SEED
    )
    sequential, seq_err = _outcome(
        lambda: run_many(topology, scenarios, backend="sequential", **kwargs)
    )
    try:
        vector_runs, vec_err = _outcome(
            lambda: run_many_vector(topology, scenarios, **kwargs)
        )
    except VectorUnsupportedError:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            fallback, fb_err = _outcome(
                lambda: run_many(topology, scenarios, backend="vector", **kwargs)
            )
        assert fb_err == seq_err
        if seq_err is None:
            assert fallback.backend == "sequential"
            _assert_bit_identical(sequential.runs, fallback.runs)
        return "fallback"
    assert vec_err == seq_err
    if seq_err is None:
        _assert_bit_identical(sequential.runs, vector_runs)
    return "vector"


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


def _channel_from_code(code, salt):
    if code == 0:
        return PureDelayChannel(1.3, 0.9)
    if code == 1:
        return PureDelayChannel(0.6)
    if code == 2:
        return InertialDelayChannel(1.1, 0.6)
    if code == 3:
        return DegradationDelayChannel(1.5, 2.0, T0=0.1)
    if code == 4:
        return InvolutionChannel(PAIR, inverting=True)
    if code == 5:
        return EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    if code == 6:
        return EtaInvolutionChannel(PAIR, ETA, WorstCaseAdversary())
    if code == 7:
        return EtaInvolutionChannel(PAIR, ETA, SineAdversary(period=2.0))
    if code == 8:
        return EtaInvolutionChannel(PAIR, ETA, RandomAdversary(seed=salt))
    if code == 9:
        return EtaInvolutionChannel(PAIR, ETA, RandomAdversary())  # unseeded
    return ZeroDelayChannel()


# Loop-internal edges stay timed (a zero-delay-only cycle is a static
# obstacle by design) and avoid the dynamically-refusing degradation
# channel so most examples exercise the fixpoint path, not the fallback.
_TIMED_CODES = st.integers(min_value=0, max_value=9).filter(lambda c: c != 3)
_ANY_CODE = st.integers(min_value=0, max_value=10)


@st.composite
def cyclic_sweeps(draw):
    """A random chain feeding an optional two-gate storage loop."""
    circuit = Circuit("differential")
    circuit.add_input("in", initial_value=draw(st.integers(0, 1)))
    previous = "in"
    n_chain = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_chain):
        gate = f"g{i}"
        circuit.add_gate(
            gate,
            draw(st.sampled_from([BUF, INV])),
            initial_value=draw(st.integers(0, 1)),
        )
        circuit.connect(
            previous,
            gate,
            _channel_from_code(draw(_ANY_CODE), 11 * i + 1),
            pin=0,
            name=f"c{i}",
        )
        previous = gate
    with_loop = draw(st.booleans())
    if with_loop:
        circuit.add_gate("l0", OR2, initial_value=draw(st.integers(0, 1)))
        circuit.add_gate(
            "l1",
            draw(st.sampled_from([BUF, INV])),
            initial_value=draw(st.integers(0, 1)),
        )
        circuit.connect(
            previous,
            "l0",
            _channel_from_code(draw(_ANY_CODE), 97),
            pin=0,
            name="el0",
        )
        circuit.connect(
            "l0", "l1", _channel_from_code(draw(_TIMED_CODES), 98),
            pin=0, name="el1",
        )
        circuit.connect(
            "l1", "l0", _channel_from_code(draw(_TIMED_CODES), 99),
            pin=1, name="el2",
        )
        previous = "l0"
    circuit.add_output("out")
    circuit.connect(previous, "out")

    scenarios = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        gaps = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=4.0, allow_nan=False),
                min_size=1,
                max_size=8,
            )
        )
        t, times = 0.0, []
        for gap in gaps:
            t += gap
            times.append(t)
        scenarios.append(
            Scenario(
                name=f"s{index}",
                inputs={"in": Signal.from_times(times)},
                end_time=draw(st.floats(min_value=8.0, max_value=35.0)),
            )
        )
    max_events = draw(st.sampled_from([150, 100_000]))
    return circuit, scenarios, max_events


# --------------------------------------------------------------------------- #
# The harness
# --------------------------------------------------------------------------- #


@settings(deadline=None)
@given(cyclic_sweeps())
def test_random_cyclic_circuits_bit_identical(sweep):
    circuit, scenarios, max_events = sweep
    outcome = assert_differential(
        circuit, scenarios, on_causality="drop", max_events=max_events
    )
    event(f"executed: {outcome}")


@settings(deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.lists(
        st.floats(min_value=0.1, max_value=4.0, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
)
def test_random_unseeded_chains_bit_identical(stages, gaps):
    # Pure pre-drawn-RNG coverage: every edge carries fresh unseeded
    # entropy, pinned by the harness before either backend runs.
    circuit = inverter_chain(
        stages, lambda: EtaInvolutionChannel(PAIR, ETA, RandomAdversary())
    )
    t, times = 1.0, []
    for gap in gaps:
        t += gap
        times.append(t)
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.from_times(times)}, end_time=40.0)
    ]
    outcome = assert_differential(circuit, scenarios, on_causality="drop")
    assert outcome == "vector"


# --------------------------------------------------------------------------- #
# Shrunk counterexamples from developing the fixpoint schedule, pinned
# as deterministic regressions.
# --------------------------------------------------------------------------- #


def test_regression_theorem9_cancellation_and_latching():
    # The paper's storage loop across the cancellation threshold: the
    # fixpoint schedule must replay glitch trains that die mid-loop
    # (suppressed reversed deliveries) as well as latched pulses.
    circuit = fed_back_or(EtaInvolutionChannel(PAIR, ETA, ZeroAdversary()))
    scenarios = [
        Scenario(
            name=f"w{width:g}",
            inputs={"i": Signal.pulse(0.0, width)},
            end_time=400.0,
        )
        for width in (0.05, 0.2, 0.35, 0.5, 0.7, 1.0, 1.8)
    ]
    assert assert_differential(circuit, scenarios) == "vector"


def test_regression_zero_delay_into_multi_input_gate():
    # A zero-delay edge racing a timed edge into one OR2: vectorizes as
    # long as the two arrival classes never share an instant.
    circuit = Circuit("fanin")
    circuit.add_input("a", initial_value=0)
    circuit.add_input("b", initial_value=0)
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_gate("or", OR2, initial_value=0)
    circuit.add_output("out")
    circuit.connect("a", "g", PureDelayChannel(0.5), pin=0, name="e1")
    circuit.connect("g", "or", ZeroDelayChannel(), pin=0, name="e2")
    circuit.connect("b", "or", PureDelayChannel(1.25), pin=1, name="e3")
    circuit.connect("or", "out")
    clean = [
        Scenario(
            name="disjoint",
            inputs={
                "a": Signal.from_times([1.0, 4.0]),
                "b": Signal.from_times([2.0, 5.0]),
            },
            end_time=12.0,
        )
    ]
    assert assert_differential(circuit, clean) == "vector"
    # ...and refuses loudly (bit-identically) when they do coincide:
    # a@1.0 arrives through e1+e2 at t=1.5 while b@0.25 arrives through
    # e3 at the same (exactly representable) 1.5 instant, in different
    # engine delta cycles.
    colliding = [
        Scenario(
            name="collide",
            inputs={
                "a": Signal.from_times([1.0]),
                "b": Signal.from_times([0.25]),
            },
            end_time=12.0,
        )
    ]
    assert assert_differential(circuit, colliding) == "fallback"


def test_regression_settle_inconsistent_initials_vectorize():
    # Declared gate initials that flip in the time-0 settle pass used to
    # be a blanket obstacle; with timed fan-in they are now replayed.
    circuit = Circuit("settle")
    circuit.add_input("a", initial_value=1)
    circuit.add_gate("g0", INV, initial_value=1)  # flips to 0 at t=0
    circuit.add_gate("g1", BUF, initial_value=1)  # flips with g0's settle
    circuit.add_output("out")
    circuit.connect("a", "g0", PureDelayChannel(0.9), pin=0, name="e1")
    circuit.connect("g0", "g1", PureDelayChannel(1.1), pin=0, name="e2")
    circuit.connect("g1", "out")
    scenarios = [
        Scenario(
            name="s",
            inputs={"a": Signal(1, [(2.0, 0), (5.0, 1)])},
            end_time=15.0,
        )
    ]
    assert assert_differential(circuit, scenarios) == "vector"


def test_regression_bounded_oscillator_vectorizes():
    # A ring oscillator whose whole burst fits the horizon converges in
    # the fixpoint schedule (the bounded horizon caps the wave) and must
    # replay every oscillation period bit-identically.
    circuit = Circuit("ring")
    circuit.add_input("in", initial_value=0)
    circuit.add_gate("l0", OR2, initial_value=0)
    circuit.add_gate("l1", INV, initial_value=1)
    circuit.add_output("out")
    circuit.connect("in", "l0", PureDelayChannel(0.5), pin=0, name="drive")
    circuit.connect("l0", "l1", PureDelayChannel(0.5), pin=0, name="fwd")
    circuit.connect("l1", "l0", PureDelayChannel(0.5), pin=1, name="back")
    circuit.connect("l1", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 2.0)}, end_time=30.0)
    ]
    assert assert_differential(circuit, scenarios) == "vector"


def test_regression_per_scenario_adversary_overrides():
    # theorem9's exact override pattern: one shared topology, the
    # feedback channel swapped per scenario -- including an unseeded
    # random slot that the pre-draw pass must pin per (scenario, edge).
    circuit = fed_back_or(EtaInvolutionChannel(PAIR, ETA, ZeroAdversary()))
    factories = [
        ZeroAdversary,
        WorstCaseAdversary,
        lambda: RandomAdversary(),
        lambda: SineAdversary(period=2.0),
    ]
    scenarios = [
        Scenario(
            name=f"adv{i}",
            inputs={"i": Signal.pulse(0.0, 0.45)},
            end_time=120.0,
            channels={"feedback": EtaInvolutionChannel(PAIR, ETA, factory())},
        )
        for i, factory in enumerate(factories)
    ]
    assert assert_differential(circuit, scenarios) == "vector"
