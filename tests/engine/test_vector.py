"""Vector/scalar equivalence of the NumPy batch backend.

The vector backend advertises *bit identity* with the sequential scalar
engine: same transition lists, same event counts, same dropped counts,
same errors.  These tests pin that contract over random circuits,
channels and stimuli (hypothesis), over the edge cases named in the
design (transport-cancellation suffix pops, ``on_causality="drop"``,
zero-delay loops, unsupported-channel fallback), and over the
integration surface (``run_many(backend="vector")``, capability
reports, experiment kinds).
"""

import math
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import BUF, INV, OR2, Circuit, glitch_generator, inverter_chain
from repro.core import (
    BestCaseAdversary,
    DegradationDelayChannel,
    EtaInvolutionChannel,
    InertialDelayChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    RandomAdversary,
    SequenceAdversary,
    Signal,
    SineAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.core.channel import Channel, ZeroDelayChannel
from repro.engine import CircuitTopology, eta_monte_carlo, run_many
from repro.engine.errors import CausalityError, SimulationError
from repro.engine.sweep import Scenario
from repro.engine.vector import (
    VectorUnsupportedError,
    compile_sweep,
    predraw_random_adversaries,
    run_many_vector,
    vector_capability,
)

PAIR = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
ETA = admissible_eta_bound(PAIR, eta_plus=0.05)


def assert_bit_identical(sequential, vector_runs):
    """Full-execution equality: every signal, event count and drop count."""
    assert len(sequential.runs) == len(vector_runs)
    for seq, vec in zip(sequential.runs, vector_runs):
        assert seq.execution.node_signals == vec.execution.node_signals
        assert seq.execution.edge_signals == vec.execution.edge_signals
        assert seq.execution.output_signals == vec.execution.output_signals
        assert seq.execution.event_count == vec.execution.event_count
        assert (
            seq.execution.dropped_transitions
            == vec.execution.dropped_transitions
        )


def both_backends(circuit, scenarios, **kwargs):
    """The vector contract: bit-identical, or a loud bit-identical fallback.

    A sweep the compiler accepts statically may still refuse dynamically
    (same-instant deliveries discovered mid-run); in that case
    ``run_many(backend="vector")`` must warn and produce the sequential
    results unchanged.
    """
    topology = CircuitTopology(circuit)
    sequential = run_many(topology, scenarios, backend="sequential", **kwargs)
    try:
        vector_runs = run_many_vector(topology, scenarios, **kwargs)
    except VectorUnsupportedError:
        with pytest.warns(RuntimeWarning):
            fallback = run_many(topology, scenarios, backend="vector", **kwargs)
        assert fallback.backend == "sequential"
        assert_bit_identical(sequential, fallback.runs)
        return sequential, fallback.runs
    assert_bit_identical(sequential, vector_runs)
    return sequential, vector_runs


# --------------------------------------------------------------------------- #
# The headline workload: eta Monte Carlo over an inverter chain
# --------------------------------------------------------------------------- #


def test_eta_monte_carlo_bit_identical():
    circuit = inverter_chain(
        6, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    unit = PAIR.delta_up_inf + PAIR.delta_down_inf
    inputs = {"in": Signal.pulse_train(1.0, [2.0 * unit] * 5, [3.0 * unit] * 4)}
    end_time = 1.0 + 30.0 * unit + 10.0 * 7 * PAIR.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, 25, seed=11)
    both_backends(circuit, scenarios)


def test_transport_cancellation_suffix_pops():
    # A marginal-width pulse dies at an eta-dependent depth: every run
    # exercises the pending-frontier suffix pops of the cancellation
    # machinery, and scenarios diverge in transition counts per edge.
    circuit = inverter_chain(
        16, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    width = 0.5 * PAIR.delta_up_inf
    inputs = {"in": Signal.pulse(1.0, width)}
    end_time = 1.0 + width + 20.0 * 16 * PAIR.delta_up_inf
    scenarios = eta_monte_carlo(circuit, inputs, end_time, 40, seed=3)
    sequential, _ = both_backends(circuit, scenarios)
    depths = {
        sum(len(run.execution.edge_signals[e]) > 0 for e in circuit.edges)
        for run in sequential.runs
    }
    assert len(depths) > 1, "workload should kill the pulse at varying depths"


def test_run_many_vector_backend_field_and_report():
    circuit = inverter_chain(
        3, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    inputs = {"in": Signal.pulse(1.0, 4.0)}
    scenarios = eta_monte_carlo(circuit, inputs, 60.0, 5, seed=1)
    result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "vector"
    assert result.vector_report is not None and result.vector_report.supported
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert sequential.backend == "sequential"
    assert_bit_identical(sequential, result.runs)
    # The batched wall time is split evenly across the per-run seconds.
    total = sum(run.seconds for run in result.runs)
    assert total <= result.total_seconds * 1.01


# --------------------------------------------------------------------------- #
# Property-based equivalence over random chains and stimuli
# --------------------------------------------------------------------------- #


def _channel_from_code(code: int, seed: int):
    if code == 0:
        return PureDelayChannel(1.3, 0.9)
    if code == 1:
        return InertialDelayChannel(1.1, 0.6)
    if code == 2:
        return DegradationDelayChannel(1.5, 2.0, T0=0.1)
    if code == 3:
        return InvolutionChannel(PAIR, inverting=True)
    if code == 4:
        return EtaInvolutionChannel(
            PAIR, ETA, RandomAdversary(seed=seed), inverting=False
        )
    return EtaInvolutionChannel(
        PAIR, ETA, RandomAdversary(seed=seed, distribution="gaussian")
    )


@st.composite
def chain_sweeps(draw):
    """A mixed-channel BUF chain plus a family of tight-gap scenarios."""
    codes = draw(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=4)
    )
    circuit = Circuit("mixed-chain")
    circuit.add_input("in", initial_value=0)
    previous = "in"
    value = 0
    for i, code in enumerate(codes):
        channel = _channel_from_code(code, seed=7 * i + 1)
        value = channel.output_initial_value(value)
        gate = f"g{i}"
        circuit.add_gate(gate, BUF, initial_value=value)
        circuit.connect(previous, gate, channel, pin=0, name=f"ch{i}")
        previous = gate
    circuit.add_output("out")
    circuit.connect(previous, "out")

    scenarios = []
    n_scenarios = draw(st.integers(min_value=1, max_value=4))
    for index in range(n_scenarios):
        gaps = draw(
            st.lists(
                st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
                min_size=1,
                max_size=12,
            )
        )
        t, times = 0.0, []
        for gap in gaps:
            t += gap
            times.append(t)
        end_time = draw(st.floats(min_value=5.0, max_value=120.0))
        scenarios.append(
            Scenario(
                name=f"s{index}",
                inputs={"in": Signal.from_times(times)},
                end_time=end_time,
            )
        )
    return circuit, scenarios


@settings(max_examples=40, deadline=None)
@given(chain_sweeps())
def test_random_chains_bit_identical(sweep):
    circuit, scenarios = sweep
    both_backends(circuit, scenarios, on_causality="drop")


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.lists(
        st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        min_size=1,
        max_size=16,
    ),
)
def test_random_adversaries_bit_identical(seed, gaps):
    circuit = inverter_chain(
        3, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    t, times = 1.0, []
    for gap in gaps:
        t += gap
        times.append(t)
    inputs = {"in": Signal.from_times(times)}
    scenarios = eta_monte_carlo(circuit, inputs, t + 40.0, 3, seed=seed)
    both_backends(circuit, scenarios)


# --------------------------------------------------------------------------- #
# Causality policies
# --------------------------------------------------------------------------- #


def _causality_violating_sweep():
    # A (deliberately non-involution) pair whose falling delay is negative
    # for moderate T: the fall scheduled after the rise has matured lands
    # *before* the delivered rise -- the classic causality violation.
    from repro.core.delay_functions import ExpDelay, ShiftedDelay

    up = ExpDelay(tau=1.0, t_p=0.5, rising=True)
    down = ShiftedDelay(ExpDelay(tau=1.0, t_p=0.5, rising=False), shift_delta=-3.0)
    pair = InvolutionPair(up, down, validate=False)
    channel = InvolutionChannel(pair, guard_domain=False)
    circuit = Circuit("acausal")
    circuit.add_input("in", initial_value=0)
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("out")
    circuit.connect("in", "g", channel, pin=0, name="ch")
    circuit.connect("g", "out")
    inputs = {"in": Signal.from_times([1.0, 3.0])}
    return circuit, [Scenario(name="v", inputs=inputs, end_time=50.0)]


def test_on_causality_drop_matches():
    circuit, scenarios = _causality_violating_sweep()
    sequential, vector_runs = both_backends(
        circuit, scenarios, on_causality="drop"
    )
    assert sequential.runs[0].execution.dropped_transitions > 0


def test_on_causality_error_matches():
    circuit, scenarios = _causality_violating_sweep()
    topology = CircuitTopology(circuit)
    with pytest.raises(CausalityError) as scalar_error:
        run_many(topology, scenarios, backend="sequential")
    with pytest.raises(CausalityError) as vector_error:
        run_many_vector(topology, scenarios)
    assert str(scalar_error.value) == str(vector_error.value)


# --------------------------------------------------------------------------- #
# Fallback and capability reporting
# --------------------------------------------------------------------------- #


class _OpaqueChannel(Channel):
    """A custom channel class the vector compiler cannot know about."""

    def delay_for(self, T, rising_output, index, time):
        return 1.0


def test_unsupported_channel_falls_back_with_report():
    circuit = Circuit("custom")
    circuit.add_input("in", initial_value=0)
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("out")
    circuit.connect("in", "g", _OpaqueChannel(), pin=0, name="weird")
    circuit.connect("g", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 3.0)}, end_time=20.0)
    ]
    report = vector_capability(circuit, scenarios)
    assert not report
    assert any(
        "weird" in reason and "_OpaqueChannel" in reason
        for reason in report.reasons
    )
    with pytest.raises(VectorUnsupportedError):
        compile_sweep(circuit, scenarios)
    with pytest.warns(RuntimeWarning, match="_OpaqueChannel"):
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "sequential"
    assert result.vector_report is not None and not result.vector_report.supported
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_feedback_cycle_vectorizes_bit_identical():
    # The paper's storage loop (theorem9's shape): a fed-back OR gate.
    # Cycles run on the fixpoint lockstep schedule -- no fallback, and
    # the result is bit-identical to the event-driven engine across the
    # cancellation and latching regimes.
    from repro.circuits import fed_back_or

    circuit = fed_back_or(EtaInvolutionChannel(PAIR, ETA, ZeroAdversary()))
    scenarios = [
        Scenario(
            name=f"w{width:g}",
            inputs={"i": Signal.pulse(0.0, width)},
            end_time=60.0,
        )
        for width in (0.2, 0.4, 0.6, 0.9, 1.5)
    ]
    report = vector_capability(circuit, scenarios)
    assert report.supported, report.reasons
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "vector"
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_oscillating_cycle_exhausts_max_events_identically():
    # Termination guard: a free-running ring whose burst outlives the
    # horizon keeps generating transitions.  Neither backend may spin --
    # the scalar engine trips its max_events bound, and the vector
    # backend (whose fixpoint guard refuses the unconverging loop and
    # falls back loudly) must surface the *same* error text.
    from repro.circuits.gates import OR2

    ring = Circuit("ring")
    ring.add_input("in", initial_value=0)
    ring.add_gate("l0", OR2, initial_value=0)
    ring.add_gate("l1", INV, initial_value=1)
    ring.add_output("out")
    ring.connect("in", "l0", PureDelayChannel(0.5), pin=0, name="drive")
    ring.connect("l0", "l1", PureDelayChannel(0.5), pin=0, name="fwd")
    ring.connect("l1", "l0", PureDelayChannel(0.5), pin=1, name="back")
    ring.connect("l1", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 2.0)}, end_time=500.0)
    ]
    with pytest.raises(SimulationError) as scalar_exc:
        run_many(ring, scenarios, backend="sequential", max_events=64)
    with pytest.warns(RuntimeWarning, match="free-running oscillation"):
        with pytest.raises(SimulationError) as vector_exc:
            run_many(ring, scenarios, backend="vector", max_events=64)
    assert str(scalar_exc.value) == str(vector_exc.value)
    assert "max_events=64" in str(vector_exc.value)


def test_bounded_oscillator_converges_and_raises_max_events_identically():
    # Same ring, horizon short enough for the fixpoint to converge: the
    # vector backend executes (no fallback) and must still raise the
    # scalar engine's exact max_events error from its own global check.
    from repro.circuits.gates import OR2

    ring = Circuit("ring")
    ring.add_input("in", initial_value=0)
    ring.add_gate("l0", OR2, initial_value=0)
    ring.add_gate("l1", INV, initial_value=1)
    ring.add_output("out")
    ring.connect("in", "l0", PureDelayChannel(0.5), pin=0, name="drive")
    ring.connect("l0", "l1", PureDelayChannel(0.5), pin=0, name="fwd")
    ring.connect("l1", "l0", PureDelayChannel(0.5), pin=1, name="back")
    ring.connect("l1", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 2.0)}, end_time=30.0)
    ]
    with pytest.raises(SimulationError) as scalar_exc:
        run_many(ring, scenarios, backend="sequential", max_events=40)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        with pytest.raises(SimulationError) as vector_exc:
            run_many_vector(CircuitTopology(ring), scenarios, max_events=40)
    assert str(scalar_exc.value) == str(vector_exc.value)


def test_zero_delay_loop_raises_like_scalar():
    # A combinational zero-delay loop oscillates within one instant; the
    # scalar engine detects it via its delta-cycle bound.  The vector
    # backend cannot express the cycle, falls back, and surfaces the very
    # same error.
    from repro.circuits.gates import GateType

    nandish = GateType("NANDish", 2, lambda v: 1 - (v[0] & v[1]))
    loop = Circuit("osc")
    loop.add_input("in", initial_value=0)
    loop.add_gate("g", nandish, initial_value=0)
    loop.add_output("out")
    loop.connect("in", "g", ZeroDelayChannel(), pin=0, name="drive")
    loop.connect("g", "g", ZeroDelayChannel(), pin=1, name="loop")
    loop.connect("g", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 3.0)}, end_time=10.0)
    ]
    with pytest.raises(SimulationError, match="loop"):
        run_many(loop, scenarios, backend="sequential")
    with pytest.warns(RuntimeWarning):
        with pytest.raises(SimulationError, match="loop"):
            run_many(loop, scenarios, backend="vector")


def test_scenario_dependent_structure_falls_back():
    circuit = inverter_chain(
        2, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    scenarios = [
        Scenario(
            name="a",
            inputs={"in": Signal.pulse(1.0, 3.0)},
            end_time=30.0,
        ),
        Scenario(
            name="b",
            inputs={"in": Signal(1, [(2.0, 0)])},
            end_time=30.0,
        ),
    ]
    report = vector_capability(circuit, scenarios)
    assert any("initial value differs" in reason for reason in report.reasons)
    with pytest.warns(RuntimeWarning, match="initial value differs"):
        result = run_many(circuit, scenarios, backend="vector")
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_shared_random_adversary_falls_back_bit_identical():
    # One seeded RandomAdversary *instance* on several edges: the scalar
    # engine interleaves a single RNG stream across the sharing edges in
    # event order, which per-edge eta matrices cannot replay -- the
    # compiler must refuse (and the fallback must match sequential).
    shared = RandomAdversary(seed=7)
    circuit = inverter_chain(
        2, lambda: EtaInvolutionChannel(PAIR, ETA, shared)
    )
    scenarios = [
        Scenario(
            name="s",
            inputs={"in": Signal.from_times([1.0, 4.0, 7.0])},
            end_time=40.0,
        )
    ]
    report = vector_capability(circuit, scenarios)
    assert any("shared by edges" in reason for reason in report.reasons)
    with pytest.warns(RuntimeWarning, match="shared by edges"):
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "sequential"
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_provenance_records_executed_backend():
    # theorem9's storage loop now vectorizes on the fixpoint schedule:
    # the artifact must say what actually ran, not just what was
    # requested.
    from repro import api

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = api.experiment(
            "theorem9", {"pulse_lengths": [0.3]}, backend="vector"
        )
    assert result.provenance["backend"] == "vector"
    assert result.provenance["backend_executed"] == "vector"
    vectorized = api.experiment(
        "eta_coverage", {"n_runs": 4, "stages": 2}, backend="vector"
    )
    assert vectorized.provenance["backend_executed"] == "vector"


def test_cli_sweep_reports_executed_backend(tmp_path, capsys):
    # A vector request over the (cyclic) SPF netlist now runs on the
    # fixpoint schedule; the CLI envelope must report the backend that
    # actually ran, with no fallback reasons.
    import json as _json

    from repro.cli import main

    netlist = tmp_path / "spf.json"
    main(["export", "spf", "-o", str(netlist)])
    capsys.readouterr()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        main(["sweep", str(netlist), "--runs", "2", "--backend", "vector", "--json"])
    payload = _json.loads(capsys.readouterr().out)
    assert payload["backend"] == "vector"
    assert payload["backend_requested"] == "vector"
    assert "vector_fallback_reasons" not in payload


def test_scaling_rows_record_executed_backend():
    # A requested process backend degrades to sequential for scaling's
    # single-scenario sweeps; the published rows must say what ran.
    from repro import api

    result = api.experiment(
        "scaling",
        {"stage_counts": [2], "input_transitions": 20},
        backend="process",
        max_workers=4,
    )
    assert [row["backend"] for row in result.rows] == ["sequential"]
    vectorized = api.experiment(
        "scaling",
        {"stage_counts": [2], "input_transitions": 20},
        backend="vector",
    )
    assert [row["backend"] for row in vectorized.rows] == ["vector"]
    assert [row["events"] for row in vectorized.rows] == [
        row["events"] for row in result.rows
    ]


def test_zero_constant_delay_falls_back_bit_identical():
    # A zero-delay *valued* timed channel schedules every delivery at its
    # own input instant; the engine resolves that with a second batch at
    # the same timestamp (double gate evaluation), which the compiler
    # must refuse statically.
    circuit = Circuit("same-instant")
    circuit.add_input("a", initial_value=0)
    circuit.add_gate("g", BUF, initial_value=1)  # settle-inconsistent
    circuit.add_output("o")
    circuit.connect("a", "g", PureDelayChannel(0.0), pin=0, name="e1")
    circuit.connect("g", "o", PureDelayChannel(0.2), pin=0, name="e2")
    scenarios = [
        Scenario(name="s", inputs={"a": Signal.pulse(0.0, 1.0)}, end_time=5.0)
    ]
    report = vector_capability(circuit, scenarios)
    assert any("same-instant" in reason for reason in report.reasons)
    with pytest.warns(RuntimeWarning, match="same-instant"):
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "sequential"
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_settle_flip_through_zero_delay_edge_falls_back():
    # An upstream gate whose declared initial flips in the settle pass
    # glitches its zero-delay-fed neighbour within the time-0 instant;
    # event counts diverge unless the compiler refuses.
    from repro.core.channel import ZeroDelayChannel

    circuit = Circuit("settle-glitch")
    circuit.add_input("a", initial_value=0)
    circuit.add_gate("g1", BUF, initial_value=1)  # settles to 0 at t=0
    circuit.add_gate("g2", BUF, initial_value=0)
    circuit.add_output("o")
    circuit.connect("a", "g1", PureDelayChannel(1.0), pin=0, name="e1")
    circuit.connect("g1", "g2", ZeroDelayChannel(), pin=0, name="e2")
    circuit.connect("g2", "o", PureDelayChannel(0.5), pin=0, name="e3")
    scenarios = [
        Scenario(name="s", inputs={"a": Signal.from_times([2.0])}, end_time=10.0)
    ]
    report = vector_capability(circuit, scenarios)
    assert any("settle" in reason for reason in report.reasons)
    with pytest.warns(RuntimeWarning):
        result = run_many(circuit, scenarios, backend="vector")
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_dynamic_same_instant_delivery_falls_back():
    # DegradationDelayChannel yields a 0.0 delay for closely spaced
    # transitions (T <= T0) -- statically fine, but the run discovers the
    # same-instant delivery and must fall back, not diverge.
    circuit = Circuit("degradation")
    circuit.add_input("a", initial_value=0)
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("o")
    circuit.connect(
        "a", "g", DegradationDelayChannel(1.5, 2.0, T0=0.5), pin=0, name="e1"
    )
    circuit.connect("g", "o")
    scenarios = [
        Scenario(
            name="s",
            inputs={"a": Signal.from_times([1.0, 1.2, 1.3, 1.35])},
            end_time=20.0,
        )
    ]
    assert vector_capability(circuit, scenarios).supported  # static pass
    with pytest.warns(RuntimeWarning, match="same-instant"):
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "sequential"
    sequential = run_many(circuit, scenarios, backend="sequential")
    assert_bit_identical(sequential, result.runs)


def test_unseeded_random_adversary_vectorizes():
    # Unseeded RandomAdversary instances are materialised by pre-drawing
    # one seed per (scenario, edge) slot before compilation -- no longer
    # a capability obstacle.  With the same pre-drawn seeds applied to
    # both backends the runs are bit-identical.
    circuit = inverter_chain(
        2, lambda: EtaInvolutionChannel(PAIR, ETA, RandomAdversary())
    )
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 3.0)}, end_time=30.0)
    ]
    report = vector_capability(circuit, scenarios)
    assert report.supported, report.reasons
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = run_many(circuit, scenarios, backend="vector")
    assert result.backend == "vector"
    pinned = predraw_random_adversaries(
        CircuitTopology(circuit), scenarios, seed=1234
    )
    sequential = run_many(circuit, pinned, backend="sequential")
    vectorized = run_many(circuit, pinned, backend="vector")
    assert vectorized.backend == "vector"
    assert_bit_identical(sequential, vectorized.runs)


def test_capability_probe_never_raises_on_invalid_sweeps():
    circuit = inverter_chain(
        2, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    invalid = [
        Scenario(name="missing", inputs={}, end_time=10.0),
        Scenario(
            name="unknown-port",
            inputs={"in": Signal.pulse(1.0, 2.0), "bogus": Signal.constant(0)},
            end_time=10.0,
        ),
        Scenario(
            name="unknown-edge",
            inputs={"in": Signal.pulse(1.0, 2.0)},
            end_time=10.0,
            channels={"nope": PureDelayChannel(1.0)},
        ),
    ]
    for scenario in invalid:
        report = vector_capability(circuit, [scenario])
        assert not report.supported
        assert any("invalid sweep" in reason for reason in report.reasons)
        # compile_sweep (and the engine itself) still raise for these.
        with pytest.raises(SimulationError):
            compile_sweep(circuit, [scenario])


# --------------------------------------------------------------------------- #
# Deterministic adversaries, varying horizons, multi-input gates
# --------------------------------------------------------------------------- #


def test_deterministic_adversaries_bit_identical():
    inputs = {"in": Signal.from_times([1.0, 1.8, 4.0, 4.7, 9.0])}
    adversaries = [
        WorstCaseAdversary(),
        BestCaseAdversary(),
        SineAdversary(period=3.0, phase=0.4),
        SequenceAdversary([0.01, -0.01, 0.02], fill=0.0),
    ]
    circuit = inverter_chain(
        3, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    scenarios = [
        Scenario(
            name=f"adv{i}",
            inputs=inputs,
            end_time=40.0,
            channels={
                ename: edge.channel.with_adversary(adversary)
                for ename, edge in circuit.edges.items()
                if isinstance(edge.channel, EtaInvolutionChannel)
            },
        )
        for i, adversary in enumerate(adversaries)
    ]
    both_backends(circuit, scenarios)


def test_inadmissible_sequence_shift_raises_like_scalar():
    circuit = inverter_chain(
        1,
        lambda: EtaInvolutionChannel(
            PAIR, ETA, SequenceAdversary([10.0 * (ETA.eta_plus + 1.0)])
        ),
    )
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.pulse(1.0, 3.0)}, end_time=30.0)
    ]
    topology = CircuitTopology(circuit)
    with pytest.raises(ValueError, match="outside the admissible"):
        run_many(topology, scenarios, backend="sequential")
    with pytest.raises(ValueError, match="outside the admissible"):
        run_many_vector(topology, scenarios)


def test_varying_end_times_and_inputs():
    circuit = inverter_chain(
        3, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    scenarios = [
        Scenario(
            name=f"s{i}",
            inputs={"in": Signal.from_times([1.0 + 0.3 * i, 4.0 + 0.2 * i, 7.5])},
            end_time=5.0 + 4.0 * i,
        )
        for i in range(6)
    ]
    both_backends(circuit, scenarios)


def test_multi_input_gate_with_settle():
    # XOR of a signal with a delayed copy of itself: a two-input gate fed
    # by two timed channels with different delays, producing glitches.
    circuit = glitch_generator(
        PureDelayChannel(0.4, 0.4), PureDelayChannel(1.7, 1.7)
    )
    scenarios = [
        Scenario(
            name=f"s{i}",
            inputs={"in": Signal.from_times([1.0, 3.0 + 0.1 * i, 6.0])},
            end_time=20.0,
        )
        for i in range(4)
    ]
    both_backends(circuit, scenarios)


def test_inconsistent_gate_initial_settles_at_zero():
    circuit = Circuit("settle")
    circuit.add_input("in", initial_value=1)
    # BUF of a constant-1 input declared with initial 0: the engine's
    # settle pass flips it at time 0.
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("out")
    circuit.connect("in", "g", PureDelayChannel(0.5), pin=0, name="ch")
    circuit.connect("g", "out")
    scenarios = [
        Scenario(name="s", inputs={"in": Signal.constant(1)}, end_time=10.0)
    ]
    sequential, vector_runs = both_backends(circuit, scenarios)
    out = vector_runs[0].execution.node_signals["g"]
    assert out.initial_value == 0 and list(out)[0].time == 0.0


def test_max_events_exceeded_raises_like_scalar():
    circuit = inverter_chain(
        4, lambda: EtaInvolutionChannel(PAIR, ETA, ZeroAdversary())
    )
    inputs = {"in": Signal.from_times([1.0 + 0.9 * k for k in range(30)])}
    scenarios = [Scenario(name="s", inputs=inputs, end_time=200.0)]
    topology = CircuitTopology(circuit)
    with pytest.raises(SimulationError, match="max_events"):
        run_many(topology, scenarios, backend="sequential", max_events=20)
    with pytest.raises(SimulationError, match="max_events"):
        run_many_vector(topology, scenarios, max_events=20)


def test_api_sweep_vector_backend():
    from repro import api
    from repro.specs import ChannelSpec

    channel = ChannelSpec.exp_eta_involution(
        tau=1.0, t_p=0.5, eta=(0.05, 0.05)
    )
    circuit = inverter_chain(4, channel)
    circuit_built, scenarios = api.monte_carlo(
        circuit, {"in": Signal.pulse(1.0, 4.0)}, end_time=60.0, n_runs=8, seed=2
    )
    vector = api.sweep(circuit_built, scenarios, backend="vector")
    sequential = api.sweep(circuit_built, scenarios, backend="sequential")
    assert vector.backend == "vector"
    assert_bit_identical(sequential, vector.runs)
