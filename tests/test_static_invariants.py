"""AST-level determinism gates over the engine and core trees.

Reproducibility is the project's north star: every stochastic or
time-dependent value inside ``repro.engine`` and ``repro.core`` must be
derived from an explicit seed or an explicit simulation clock.  These
tests parse the source (no imports, no execution) and forbid:

* ``time.time()`` / ``time.time_ns()`` -- wall-clock entropy leaking
  into results (``time.perf_counter`` for *measuring* durations is
  fine: it annotates results, it never decides them),
* the stdlib ``random`` module in any form -- its global state is
  process-wide and unseedable per-run,
* legacy ``np.random.*`` calls (global-state RNG) and zero-argument
  ``np.random.default_rng()`` / ``np.random.SeedSequence()`` -- fresh
  OS entropy that cannot be replayed.

Seeded constructions (``np.random.default_rng(seed)``,
``np.random.SeedSequence(seed)``) and the ``np.random.Generator`` type
(annotations) stay allowed.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parents[1] / "src" / "repro"
CHECKED_TREES = ("engine", "core")

#: np.random attributes allowed as non-call references (types/annotations).
ALLOWED_NP_RANDOM_ATTRS = {"default_rng", "SeedSequence", "Generator"}


def _checked_files():
    for tree in CHECKED_TREES:
        yield from sorted((SRC / tree).rglob("*.py"))


def _is_np_random(node):
    """True for an ``np.random`` / ``numpy.random`` attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def _violations(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    found = []

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    found.append((node.lineno, "import random"))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" or (
                node.module or ""
            ).startswith("random."):
                found.append((node.lineno, f"from {node.module} import ..."))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("time", "time_ns")
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                found.append((node.lineno, f"time.{func.attr}()"))
            if isinstance(func, ast.Attribute) and _is_np_random(func.value):
                if func.attr not in ALLOWED_NP_RANDOM_ATTRS:
                    found.append(
                        (node.lineno, f"legacy np.random.{func.attr}()")
                    )
                elif not node.args and not node.keywords:
                    found.append(
                        (node.lineno, f"unseeded np.random.{func.attr}()")
                    )
        elif isinstance(node, ast.Attribute) and _is_np_random(node.value):
            if node.attr not in ALLOWED_NP_RANDOM_ATTRS:
                found.append((node.lineno, f"np.random.{node.attr}"))

    return found


def test_checked_trees_exist_and_are_nonempty():
    files = list(_checked_files())
    assert len(files) > 5, files


@pytest.mark.parametrize(
    "path", list(_checked_files()), ids=lambda p: str(p.relative_to(SRC))
)
def test_no_determinism_hazards(path):
    violations = _violations(path)
    assert not violations, "\n".join(
        f"{path}:{line}: {what}" for line, what in violations
    )


def test_gate_actually_detects_hazards(tmp_path):
    """The detector itself is tested: seed each forbidden construct."""
    cases = {
        "import random\n": "import random",
        "from random import choice\n": "from random import",
        "import time\nt = time.time()\n": "time.time()",
        "import numpy as np\nx = np.random.rand(3)\n": "legacy np.random.rand",
        "import numpy as np\nr = np.random.default_rng()\n": (
            "unseeded np.random.default_rng"
        ),
        "import numpy as np\ns = np.random.seed\n": "np.random.seed",
    }
    for source, expectation in cases.items():
        probe = tmp_path / "probe.py"
        probe.write_text(source)
        violations = _violations(probe)
        assert violations, f"not detected: {source!r}"
        assert any(expectation in what for _, what in violations), violations

    clean = tmp_path / "clean.py"
    clean.write_text(
        "import time\nimport numpy as np\n"
        "t = time.perf_counter()\n"
        "rng = np.random.default_rng(42)\n"
        "seq = np.random.SeedSequence(7)\n"
        "g: np.random.Generator = rng\n"
    )
    assert not _violations(clean)
