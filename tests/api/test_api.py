"""Tests for the `repro.api` facade."""

import pytest

from repro import api
from repro.circuits import Circuit, inverter_chain
from repro.core import Signal
from repro.engine import CircuitTopology, Scenario
from repro.io.netlist import save_netlist
from repro.specs import ChannelSpec


@pytest.fixture()
def chain_spec():
    return inverter_chain(3, ChannelSpec.exp_eta_involution(1.0, 0.5, (0.05, 0.05))).to_spec()


class TestBuild:
    def test_build_from_spec(self, chain_spec):
        circuit = api.build(chain_spec)
        assert isinstance(circuit, Circuit)
        assert circuit.to_spec() == chain_spec

    def test_build_from_dict(self, chain_spec):
        assert api.build(chain_spec.to_dict()).to_spec() == chain_spec

    def test_build_passes_circuits_through(self, chain_spec):
        circuit = chain_spec.build()
        assert api.build(circuit) is circuit

    def test_build_from_netlist_path(self, chain_spec, tmp_path):
        path = save_netlist(chain_spec, tmp_path / "c.json")
        assert api.build(path).to_spec() == chain_spec
        assert api.build(str(path)).to_spec() == chain_spec


class TestSimulate:
    def test_simulate_spec_matches_circuit(self, chain_spec):
        inputs = {"in": Signal.pulse(1.0, 3.0)}
        a = api.simulate(chain_spec, inputs, 60.0)
        b = api.simulate(chain_spec.build(), inputs, 60.0)
        assert a.output("out") == b.output("out")

    def test_simulate_coerces_signal_dicts(self, chain_spec):
        a = api.simulate(
            chain_spec, {"in": {"pulse": {"start": 1.0, "length": 3.0}}}, 60.0
        )
        b = api.simulate(chain_spec, {"in": Signal.pulse(1.0, 3.0)}, 60.0)
        assert a.output("out") == b.output("out")


class TestSweep:
    def test_sweep_from_spec(self, chain_spec):
        scenarios = [
            Scenario(f"w={w}", {"in": Signal.pulse(1.0, w)}, 60.0)
            for w in (1.0, 2.0, 4.0)
        ]
        result = api.sweep(chain_spec, scenarios)
        assert len(result) == 3
        for run in result:
            reference = api.simulate(chain_spec, run.scenario.inputs, 60.0)
            assert run.execution.output("out") == reference.output("out")

    def test_sweep_accepts_prebuilt_topology(self, chain_spec):
        topology = CircuitTopology(chain_spec.build())
        result = api.sweep(
            topology, [Scenario("s", {"in": Signal.pulse(1.0, 2.0)}, 50.0)]
        )
        assert result.topology is topology

    def test_monte_carlo_end_to_end(self, chain_spec):
        circuit, scenarios = api.monte_carlo(
            chain_spec, {"in": Signal.pulse(1.0, 4.0)}, 60.0, 4, seed=9
        )
        assert len(scenarios) == 4
        sequential = api.sweep(circuit, scenarios)
        process = api.sweep(circuit, scenarios, backend="process", max_workers=2)
        for seq, proc in zip(sequential, process):
            assert seq.execution.node_signals == proc.execution.node_signals
