"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings as hypothesis_settings

from repro.core import (
    EtaBound,
    EtaInvolutionChannel,
    InvolutionChannel,
    InvolutionPair,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
)

# Hypothesis budgets.  `dev` (the default, and what tier-1's plain
# `pytest -x -q` gets) is small and derandomized so the suite stays fast
# and deterministic; `ci` is the large-budget profile the dedicated
# differential CI job selects with `--hypothesis-profile=ci` (plus a
# pinned `--hypothesis-seed`).  Tests that set their own @settings
# (max_examples/deadline) keep those values -- the profile only fills
# in what they leave unset.
hypothesis_settings.register_profile(
    "ci",
    max_examples=200,
    deadline=None,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
hypothesis_settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def exp_pair() -> InvolutionPair:
    """The canonical symmetric exp-channel pair used throughout the tests."""
    return InvolutionPair.exp_channel(tau=1.0, t_p=0.5)


@pytest.fixture(scope="session")
def asymmetric_pair() -> InvolutionPair:
    """An asymmetric exp-channel pair (threshold 0.6)."""
    return InvolutionPair.exp_channel(tau=0.8, t_p=0.4, v_th=0.6)


@pytest.fixture(scope="session")
def eta_small(exp_pair) -> EtaBound:
    """A small admissible eta bound for the canonical pair."""
    return admissible_eta_bound(exp_pair, eta_plus=0.05)


@pytest.fixture()
def involution_channel(exp_pair) -> InvolutionChannel:
    """A deterministic involution channel over the canonical pair."""
    return InvolutionChannel(exp_pair)


@pytest.fixture()
def eta_channel_zero(exp_pair, eta_small) -> EtaInvolutionChannel:
    """An eta-involution channel resolved by the zero adversary."""
    return EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())


@pytest.fixture()
def eta_channel_worst(exp_pair, eta_small) -> EtaInvolutionChannel:
    """An eta-involution channel resolved by the worst-case adversary."""
    return EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need random data."""
    return np.random.default_rng(20180319)
