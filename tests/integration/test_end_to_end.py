"""Integration tests spanning several subsystems.

These tests exercise the full pipelines a downstream user would run:
analog simulation -> characterisation -> model construction -> circuit
simulation -> SPF verification, mirroring the paper's methodology end to
end (at reduced problem sizes).
"""

import numpy as np
import pytest

from repro.analog import AnalogInverterChain, UMC90
from repro.circuits import Simulator, fed_back_or, inverter_chain, simulate
from repro.core import (
    EtaBound,
    EtaInvolutionChannel,
    InvolutionChannel,
    RandomAdversary,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.fitting import CharacterizationDriver, compute_deviations, fit_exp_channel
from repro.spf import SPFAnalysis, SPFChecker, build_spf_circuit


class TestAnalogToModelPipeline:
    """Characterise the analog substrate and use the result as a channel model."""

    @pytest.fixture(scope="class")
    def characterised_pair(self):
        chain = AnalogInverterChain(UMC90, stages=3)
        driver = CharacterizationDriver(chain, stage_index=1)
        widths = np.concatenate(
            [np.linspace(6.0, 24.0, 12), np.linspace(28.0, 120.0, 8)]
        )
        measurement = driver.measure(widths)
        return measurement, measurement.to_involution_pair()

    def test_characterised_pair_is_plausible(self, characterised_pair):
        _, pair = characterised_pair
        assert 0.0 < pair.delta_min < pair.delta_up_inf
        assert pair.delta_up_inf < 50.0  # ps scale

    def test_characterised_channel_filters_glitches_in_circuit(self, characterised_pair):
        _, pair = characterised_pair

        def factory():
            return InvolutionChannel(pair)

        circuit = inverter_chain(4, factory, expose_taps=True)
        wide = simulate(circuit, {"in": Signal.pulse(0.0, 80.0)}, 600.0)
        narrow = simulate(circuit, {"in": Signal.pulse(0.0, 4.0)}, 600.0)
        assert len(wide.output_signals["out"]) == 2
        assert narrow.output_signals["out"].is_constant()

    def test_exp_fit_of_characterised_stage_predicts_small_T_behaviour(
        self, characterised_pair
    ):
        measurement, pair = characterised_pair
        fit = fit_exp_channel(measurement)
        analysis = compute_deviations(
            measurement, fit.pair(), eta_plus=0.2 * fit.pair().delta_min
        )
        assert analysis.coverage(T_max=float(np.percentile(
            [s.T for s in analysis.samples], 25.0
        ))) >= 0.75

    def test_spf_analysis_on_characterised_pair(self, characterised_pair):
        # A small symmetric bound: measured (extrapolated) pairs satisfy the
        # involution property only approximately, so the maximal eta_minus of
        # constraint (C) may fall outside the extrapolated delay domain.
        _, pair = characterised_pair
        eta = EtaBound.symmetric(0.02 * pair.delta_min)
        analysis = SPFAnalysis(pair, eta)
        assert analysis.delta_bound < analysis.delta_min
        assert analysis.duty_cycle_bound < 1.0
        assert analysis.cancel_threshold < analysis.delta_tilde_0 < analysis.latch_threshold


class TestSPFCircuitEndToEnd:
    def test_spf_circuit_solves_spf_under_all_adversaries(self, exp_pair, eta_small):
        circuit = build_spf_circuit(exp_pair, eta_small)
        checker = SPFChecker(
            circuit,
            adversary_factories={
                "zero": ZeroAdversary,
                "worst": WorstCaseAdversary,
                "random": lambda: RandomAdversary(seed=99),
            },
            end_time=400.0,
        )
        report = checker.check(np.linspace(0.1, 2.0, 10))
        assert report.solves_spf

    def test_storage_loop_regimes_match_theory_for_random_adversaries(
        self, exp_pair, eta_small
    ):
        analysis = SPFAnalysis(exp_pair, eta_small)
        for seed in range(5):
            channel = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=seed))
            circuit = fed_back_or(channel)
            # Below the cancelled threshold: only the input pulse.
            execution = Simulator(circuit, max_events=300_000).run(
                {"i": Signal.pulse(0.0, analysis.cancel_threshold * 0.9)}, 200.0
            )
            out = execution.output_signals["or_out"]
            assert out.final_value == 0
            assert len(out.pulses()) == 1
            # Above the latch threshold: a single rising transition.
            execution = Simulator(circuit, max_events=300_000).run(
                {"i": Signal.pulse(0.0, analysis.latch_threshold * 1.1)}, 200.0
            )
            out = execution.output_signals["or_out"]
            assert out.final_value == 1
            assert len(out) == 1

    def test_marginal_pulses_respect_lemma5_bounds(self, exp_pair, eta_small):
        analysis = SPFAnalysis(exp_pair, eta_small)
        tolerance = 1e-9
        for seed in range(8):
            channel = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=seed))
            circuit = fed_back_or(channel)
            delta_0 = 0.5 * (analysis.cancel_threshold + analysis.latch_threshold)
            execution = Simulator(circuit, max_events=300_000).run(
                {"i": Signal.pulse(0.0, delta_0)}, 300.0
            )
            out = execution.output_signals["or_out"]
            if out.final_value == 1:
                continue
            for pulse in out.pulses()[1:]:
                assert pulse.length <= analysis.delta_bound + tolerance


class TestModelInterchangeability:
    def test_channel_families_share_the_simulator(self, exp_pair, eta_small):
        """All channel families plug into the same circuit topology."""
        from repro.core import (
            DegradationDelayChannel,
            InertialDelayChannel,
            PureDelayChannel,
        )

        factories = {
            "pure": lambda: PureDelayChannel(1.2),
            "inertial": lambda: InertialDelayChannel(1.2, 0.5),
            "ddm": lambda: DegradationDelayChannel(1.2, 1.0),
            "involution": lambda: InvolutionChannel(exp_pair),
            "eta": lambda: EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=1)),
        }
        stimulus = Signal.pulse_train(1.0, [2.0, 0.3, 2.0], [1.0, 1.0])
        final_values = {}
        for name, factory in factories.items():
            circuit = inverter_chain(3, factory)
            execution = simulate(circuit, {"in": stimulus}, 100.0)
            out = execution.output_signals["out"]
            final_values[name] = out.final_value
            times = out.transition_times()
            assert times == sorted(times)
        # All models agree on the final (stable) value.
        assert len(set(final_values.values())) == 1
