"""Unit tests for the content-addressed artifact store."""

import json

import pytest

from repro.experiments import ExperimentResult, ExperimentSpec, run_experiment
from repro.store import ArtifactStore, as_store


@pytest.fixture()
def result():
    return run_experiment("lemma5", {"eta_plus_values": [0.03]})


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeys:
    def test_key_is_sha256_of_canonical_spec(self, result):
        key = ArtifactStore.key_for(result.spec)
        assert len(key) == 64
        assert key == ArtifactStore.key_for(result.spec.to_dict())

    def test_key_ignores_param_order(self):
        a = ExperimentSpec("lemma5", {"eta_plus_values": [0.1], "back_off": 1e-3})
        b = ExperimentSpec("lemma5", {"back_off": 1e-3, "eta_plus_values": [0.1]})
        assert ArtifactStore.key_for(a) == ArtifactStore.key_for(b)

    def test_key_differs_per_params(self):
        a = ExperimentSpec("lemma5", {"eta_plus_values": [0.1]})
        b = ExperimentSpec("lemma5", {"eta_plus_values": [0.2]})
        assert ArtifactStore.key_for(a) != ArtifactStore.key_for(b)

    def test_layout_is_sharded(self, store, result):
        path = store.path_for(result.spec)
        key = ArtifactStore.key_for(result.spec)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"


class TestPutGet:
    def test_round_trip(self, store, result):
        assert store.get(result.spec) is None
        assert result.spec not in store
        path = store.put(result)
        assert path.exists()
        assert result.spec in store
        loaded = store.get(result.spec)
        assert loaded == result
        loaded.validate()

    def test_stored_file_is_canonical_result_json(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-experiment-result"
        assert ExperimentResult.from_dict(data) == result

    def test_mismatched_embedded_spec_is_a_miss(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        data["spec"]["eta_plus_values"] = [0.999]
        path.write_text(json.dumps(data))
        assert store.get(result.spec) is None
        assert result.spec not in store  # __contains__ agrees with get()

    def test_corrupt_artifact_is_a_miss_not_a_crash(self, store, result):
        path = store.put(result)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(result.spec) is None
        assert result.spec not in store
        # run_experiment recomputes over the damaged entry and repairs it.
        from repro.experiments import run_experiment

        repaired = run_experiment(result.spec, cache=store)
        assert not repaired.from_cache
        assert store.get(result.spec) == result

    def test_newer_result_version_is_a_miss(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert store.get(result.spec) is None

    def test_paths_len_clear(self, store, result):
        assert len(store) == 0
        store.put(result)
        other = run_experiment("lemma5", {"eta_plus_values": [0.07]})
        store.put(other)
        assert len(store) == 2
        assert store.paths() == sorted(store.paths())
        assert store.clear() == 2
        assert len(store) == 0


class TestAtomicWrites:
    def test_tmp_names_are_unique_per_write(self, store, result):
        path = store.path_for(result.spec)
        names = {store._tmp_for(path).name for _ in range(32)}
        assert len(names) == 32
        assert all(not name.endswith(".json") for name in names)

    def test_failed_write_leaves_no_tmp_file(self, store, result, monkeypatch):
        # Force the rename step to fail: the temp file must be cleaned up.
        from pathlib import Path

        def boom(self, target):
            raise OSError("disk full")

        monkeypatch.setattr(Path, "replace", boom)
        with pytest.raises(OSError):
            store.put(result)
        monkeypatch.undo()
        leftovers = list(store.root.rglob("*.tmp-*"))
        assert leftovers == []

    def test_gc_tmp_removes_only_stale_files(self, store, result):
        import os
        import time

        path = store.put(result)
        stale = path.with_name(path.name + ".tmp-123-deadbeef")
        fresh = path.with_name(path.name + ".tmp-456-cafebabe")
        stale.write_text("{")
        fresh.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert store.gc_tmp(max_age_s=3600.0) == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's in-flight file is never raced
        assert path.exists()  # real artifacts are untouched

    def test_gc_tmp_on_missing_root(self, tmp_path):
        assert ArtifactStore(tmp_path / "never-created").gc_tmp() == 0

    def test_clear_prunes_empty_shard_subdirs(self, store, result):
        path = store.put(result)
        shard_dir = path.parent
        assert store.clear() == 1
        assert not shard_dir.exists()
        assert store.root.exists()  # the root itself stays

    def test_clear_keeps_subdirs_holding_tmp_litter(self, store, result):
        path = store.put(result)
        litter = path.with_name(path.name + ".tmp-1-aaaaaaaa")
        litter.write_text("{")
        store.clear()
        assert path.parent.exists()  # not empty: the stale tmp is still there
        assert litter.exists()


class TestDamagedArtifactWarnings:
    def test_put_over_truncated_artifact_warns_with_path(self, store, result):
        path = store.put(result)
        path.write_text(path.read_text()[:40])
        with pytest.warns(RuntimeWarning, match=str(path)):
            store.put(result)
        assert store.get(result.spec) == result  # repaired

    def test_put_over_hand_edited_spec_warns(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        data["spec"]["eta_plus_values"] = [0.999]
        path.write_text(json.dumps(data))
        with pytest.warns(RuntimeWarning, match="spec does not match"):
            store.put(result)

    def test_put_over_healthy_artifact_does_not_warn(self, store, result):
        import warnings

        store.put(result)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store.put(result)

    def test_cache_rerun_repairs_and_warns(self, store, result):
        path = store.put(result)
        path.write_text("not json at all")
        with pytest.warns(RuntimeWarning, match="unparseable"):
            repaired = run_experiment(result.spec, cache=store)
        assert not repaired.from_cache
        assert store.get(result.spec) == result


class TestPayloads:
    SPEC = {"kind": "sweep_chunk", "n": 1}

    def test_round_trip(self, store):
        payload = {"runs": [1, 2, 3], "backend": "vector"}
        path = store.put_payload(self.SPEC, payload, fmt="test-chunk")
        assert path.exists()
        assert store.get_payload(self.SPEC, fmt="test-chunk") == payload

    def test_format_mismatch_is_a_miss(self, store):
        store.put_payload(self.SPEC, {"x": 1}, fmt="test-chunk")
        assert store.get_payload(self.SPEC, fmt="other-format") is None

    def test_spec_mismatch_is_a_miss(self, store):
        path = store.put_payload(self.SPEC, {"x": 1}, fmt="test-chunk")
        data = json.loads(path.read_text())
        data["spec"] = {"kind": "sweep_chunk", "n": 999}
        path.write_text(json.dumps(data))
        assert store.get_payload(self.SPEC, fmt="test-chunk") is None

    def test_torn_payload_is_a_miss(self, store):
        path = store.put_payload(self.SPEC, {"x": 1}, fmt="test-chunk")
        path.write_text(path.read_text()[:10])
        assert store.get_payload(self.SPEC, fmt="test-chunk") is None

    def test_missing_payload_is_a_miss(self, store):
        assert store.get_payload(self.SPEC, fmt="test-chunk") is None

    def test_payloads_and_results_share_the_keyspace(self, store, result):
        # A payload stored under a result's spec occupies the same path --
        # and the format tag is what keeps get() from confusing them.
        store.put_payload(result.spec.to_dict(), {"x": 1}, fmt="test-chunk")
        assert store.get(result.spec) is None


class TestCoercion:
    def test_as_store(self, tmp_path, store):
        assert as_store(store) is store
        assert as_store(tmp_path).root == tmp_path
        assert as_store(str(tmp_path)).root == tmp_path
        with pytest.raises(TypeError):
            as_store(42)

    def test_run_experiment_accepts_path_and_store(self, tmp_path, store):
        first = run_experiment("lemma5", {"eta_plus_values": [0.03]}, cache=store)
        assert not first.from_cache
        hit = run_experiment(
            "lemma5", {"eta_plus_values": [0.03]}, cache=store.root
        )
        assert hit.from_cache
