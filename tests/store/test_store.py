"""Unit tests for the content-addressed artifact store."""

import json

import pytest

from repro.experiments import ExperimentResult, ExperimentSpec, run_experiment
from repro.store import ArtifactStore, as_store


@pytest.fixture()
def result():
    return run_experiment("lemma5", {"eta_plus_values": [0.03]})


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeys:
    def test_key_is_sha256_of_canonical_spec(self, result):
        key = ArtifactStore.key_for(result.spec)
        assert len(key) == 64
        assert key == ArtifactStore.key_for(result.spec.to_dict())

    def test_key_ignores_param_order(self):
        a = ExperimentSpec("lemma5", {"eta_plus_values": [0.1], "back_off": 1e-3})
        b = ExperimentSpec("lemma5", {"back_off": 1e-3, "eta_plus_values": [0.1]})
        assert ArtifactStore.key_for(a) == ArtifactStore.key_for(b)

    def test_key_differs_per_params(self):
        a = ExperimentSpec("lemma5", {"eta_plus_values": [0.1]})
        b = ExperimentSpec("lemma5", {"eta_plus_values": [0.2]})
        assert ArtifactStore.key_for(a) != ArtifactStore.key_for(b)

    def test_layout_is_sharded(self, store, result):
        path = store.path_for(result.spec)
        key = ArtifactStore.key_for(result.spec)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.json"


class TestPutGet:
    def test_round_trip(self, store, result):
        assert store.get(result.spec) is None
        assert result.spec not in store
        path = store.put(result)
        assert path.exists()
        assert result.spec in store
        loaded = store.get(result.spec)
        assert loaded == result
        loaded.validate()

    def test_stored_file_is_canonical_result_json(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-experiment-result"
        assert ExperimentResult.from_dict(data) == result

    def test_mismatched_embedded_spec_is_a_miss(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        data["spec"]["eta_plus_values"] = [0.999]
        path.write_text(json.dumps(data))
        assert store.get(result.spec) is None
        assert result.spec not in store  # __contains__ agrees with get()

    def test_corrupt_artifact_is_a_miss_not_a_crash(self, store, result):
        path = store.put(result)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(result.spec) is None
        assert result.spec not in store
        # run_experiment recomputes over the damaged entry and repairs it.
        from repro.experiments import run_experiment

        repaired = run_experiment(result.spec, cache=store)
        assert not repaired.from_cache
        assert store.get(result.spec) == result

    def test_newer_result_version_is_a_miss(self, store, result):
        path = store.put(result)
        data = json.loads(path.read_text())
        data["version"] = 999
        path.write_text(json.dumps(data))
        assert store.get(result.spec) is None

    def test_paths_len_clear(self, store, result):
        assert len(store) == 0
        store.put(result)
        other = run_experiment("lemma5", {"eta_plus_values": [0.07]})
        store.put(other)
        assert len(store) == 2
        assert store.paths() == sorted(store.paths())
        assert store.clear() == 2
        assert len(store) == 0


class TestCoercion:
    def test_as_store(self, tmp_path, store):
        assert as_store(store) is store
        assert as_store(tmp_path).root == tmp_path
        assert as_store(str(tmp_path)).root == tmp_path
        with pytest.raises(TypeError):
            as_store(42)

    def test_run_experiment_accepts_path_and_store(self, tmp_path, store):
        first = run_experiment("lemma5", {"eta_plus_values": [0.03]}, cache=store)
        assert not first.from_cache
        hit = run_experiment(
            "lemma5", {"eta_plus_values": [0.03]}, cache=store.root
        )
        assert hit.from_cache
