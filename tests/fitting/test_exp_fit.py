"""Unit tests for exp-channel fitting."""

import numpy as np
import pytest

from repro.core import InvolutionPair
from repro.fitting import DelayMeasurement, DelaySample, exp_delay_model, fit_exp_channel


def synthetic_measurement(tau=1.4, t_p=0.6, v_th=0.55, noise=0.0, seed=0) -> DelayMeasurement:
    """Samples drawn from an exact exp-channel, optionally with noise."""
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    rng = np.random.default_rng(seed)
    measurement = DelayMeasurement(label="synthetic")
    T_values = np.linspace(-0.4, 8.0, 40)
    for T in T_values:
        for rising in (True, False):
            delay_fn = pair.delta_up if rising else pair.delta_down
            value = delay_fn(float(T))
            if not np.isfinite(value):
                continue
            measurement.add(
                DelaySample(
                    T=float(T),
                    delta=float(value + rng.normal(0.0, noise)),
                    rising_output=rising,
                    pulse_width=float("nan"),
                )
            )
    return measurement


class TestExpDelayModel:
    def test_matches_exp_delay_class(self):
        from repro.core import ExpDelay

        delay = ExpDelay(1.2, 0.4, 0.5)
        T = np.array([-0.3, 0.0, 1.0, 5.0])
        assert np.allclose(exp_delay_model(T, 1.2, 0.4, 0.5), [delay(t) for t in T])

    def test_out_of_domain_penalised(self):
        values = exp_delay_model(np.array([-100.0]), 1.0, 0.5, 0.5)
        assert values[0] <= -1e5


class TestFitExpChannel:
    def test_recovers_exact_parameters(self):
        fit = fit_exp_channel(synthetic_measurement())
        assert fit.tau == pytest.approx(1.4, rel=1e-3)
        assert fit.t_p == pytest.approx(0.6, rel=1e-3)
        assert fit.v_th == pytest.approx(0.55, abs=1e-3)
        assert fit.rms_residual < 1e-6

    def test_noisy_fit_still_close(self):
        fit = fit_exp_channel(synthetic_measurement(noise=0.02, seed=3))
        assert fit.tau == pytest.approx(1.4, rel=0.1)
        assert fit.t_p == pytest.approx(0.6, rel=0.15)
        assert fit.rms_residual < 0.1

    def test_fixed_threshold_mode(self):
        fit = fit_exp_channel(synthetic_measurement(v_th=0.5), fit_threshold=False)
        assert fit.v_th == 0.5
        assert fit.tau == pytest.approx(1.4, rel=1e-3)

    def test_result_builds_involution_pair(self):
        fit = fit_exp_channel(synthetic_measurement())
        pair = fit.pair()
        assert pair.delta_min == pytest.approx(fit.t_p, rel=1e-6)
        assert fit.delta_up()(1.0) == pytest.approx(pair.delta_up(1.0))
        assert fit.delta_down()(1.0) == pytest.approx(pair.delta_down(1.0))

    def test_needs_enough_samples(self):
        measurement = DelayMeasurement()
        measurement.add(DelaySample(T=1.0, delta=1.0, rising_output=True, pulse_width=1.0))
        with pytest.raises(ValueError):
            fit_exp_channel(measurement)

    def test_small_T_weighting_changes_fit(self):
        measurement = synthetic_measurement(noise=0.05, seed=7)
        plain = fit_exp_channel(measurement)
        weighted = fit_exp_channel(measurement, weight_small_T=5.0)
        assert plain.n_samples == weighted.n_samples
        # Both are valid fits; the weighting must at least keep the result
        # in the same ballpark.
        assert weighted.tau == pytest.approx(plain.tau, rel=0.2)
