"""Unit tests for deviation / eta-coverage analysis."""

import numpy as np
import pytest

from repro.core import EtaBound, InvolutionPair, max_eta_minus
from repro.fitting import (
    DelayMeasurement,
    DelaySample,
    compute_deviations,
    eta_band,
)


def measurement_from_pair(pair, offset=0.0, rising_offset=None) -> DelayMeasurement:
    """Synthetic measurement: the pair's delays shifted by a constant offset."""
    measurement = DelayMeasurement()
    for T in np.linspace(-0.3, 6.0, 25):
        for rising in (True, False):
            delay_fn = pair.delta_up if rising else pair.delta_down
            value = delay_fn(float(T))
            if not np.isfinite(value):
                continue
            shift = offset if (rising_offset is None or not rising) else rising_offset
            measurement.add(
                DelaySample(
                    T=float(T),
                    delta=float(value + shift),
                    rising_output=rising,
                    pulse_width=float("nan"),
                )
            )
    return measurement


class TestEtaBand:
    def test_matches_paper_dimensioning(self, exp_pair):
        band = eta_band(exp_pair, 0.05)
        assert band.eta_plus == 0.05
        assert band.eta_minus == pytest.approx(max_eta_minus(exp_pair, 0.05))

    def test_back_off(self, exp_pair):
        band = eta_band(exp_pair, 0.05, back_off=0.1)
        assert band.eta_minus == pytest.approx(0.9 * max_eta_minus(exp_pair, 0.05))


class TestComputeDeviations:
    def test_zero_deviation_for_exact_model(self, exp_pair):
        measurement = measurement_from_pair(exp_pair)
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert analysis.max_abs_deviation() == pytest.approx(0.0, abs=1e-9)
        assert analysis.coverage() == 1.0

    def test_positive_offset_detected(self, exp_pair):
        measurement = measurement_from_pair(exp_pair, offset=0.03)
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert analysis.max_abs_deviation() == pytest.approx(0.03, abs=1e-9)
        assert analysis.coverage() == 1.0

    def test_offset_beyond_band_not_covered(self, exp_pair):
        measurement = measurement_from_pair(exp_pair, offset=0.2)
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert analysis.coverage() == 0.0

    def test_negative_offset_uses_eta_minus(self, exp_pair):
        # eta_minus is much larger than eta_plus under the paper's
        # dimensioning, so a negative offset of 0.2 is still covered.
        measurement = measurement_from_pair(exp_pair, offset=-0.2)
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert analysis.coverage() == 1.0

    def test_polarity_specific_deviation(self, exp_pair):
        measurement = measurement_from_pair(exp_pair, offset=0.0, rising_offset=0.1)
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        T_up, D_up = analysis.polarity(True)
        T_down, D_down = analysis.polarity(False)
        assert np.allclose(D_up, 0.1)
        assert np.allclose(D_down, 0.0)

    def test_coverage_restricted_to_small_T(self, exp_pair):
        # Deviation grows with T: covered for small T, not for large T.
        measurement = DelayMeasurement()
        for T in np.linspace(0.0, 6.0, 30):
            value = exp_pair.delta_down(float(T))
            measurement.add(
                DelaySample(
                    T=float(T),
                    delta=float(value + 0.02 * T),
                    rising_output=False,
                    pulse_width=float("nan"),
                )
            )
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert analysis.coverage(T_max=1.0) == 1.0
        assert analysis.coverage() < 1.0

    def test_band_or_eta_plus_required(self, exp_pair):
        with pytest.raises(ValueError):
            compute_deviations(measurement_from_pair(exp_pair), exp_pair)

    def test_explicit_band(self, exp_pair):
        measurement = measurement_from_pair(exp_pair, offset=0.08)
        analysis = compute_deviations(
            measurement, exp_pair, eta=EtaBound(0.1, 0.1)
        )
        assert analysis.coverage() == 1.0

    def test_summary_keys(self, exp_pair):
        analysis = compute_deviations(
            measurement_from_pair(exp_pair), exp_pair, eta_plus=0.05
        )
        summary = analysis.summary()
        for key in ("coverage_all", "coverage_small_T", "max_abs_deviation", "n_samples"):
            assert key in summary

    def test_out_of_domain_samples_skipped(self, exp_pair):
        measurement = DelayMeasurement()
        measurement.add(
            DelaySample(T=-10.0, delta=1.0, rising_output=True, pulse_width=1.0)
        )
        measurement.add(
            DelaySample(T=1.0, delta=exp_pair.delta_up(1.0), rising_output=True, pulse_width=1.0)
        )
        analysis = compute_deviations(measurement, exp_pair, eta_plus=0.05)
        assert len(analysis.samples) == 1

    def test_empty_coverage_is_nan(self, exp_pair):
        analysis = compute_deviations(DelayMeasurement(), exp_pair, eta_plus=0.05)
        assert np.isnan(analysis.coverage())


class TestSimulatedEtaCoverage:
    """Monte Carlo coverage via the batched sweep runner."""

    def test_admissible_noise_is_fully_covered(self, exp_pair, eta_small):
        from repro.fitting import simulated_eta_coverage

        analysis = simulated_eta_coverage(
            exp_pair, eta_small, stages=3, n_runs=8, seed=7
        )
        assert len(analysis.samples) > 0
        # Every sampled shift is admissible, so the band must cover all
        # deviations exactly; anything less is an engine/kernel regression.
        assert analysis.coverage() == 1.0
        assert analysis.max_abs_deviation() <= max(
            eta_small.eta_plus, eta_small.eta_minus
        ) + 1e-9

    def test_deterministic_per_seed(self, exp_pair, eta_small):
        from repro.fitting import simulated_eta_coverage

        first = simulated_eta_coverage(exp_pair, eta_small, stages=2, n_runs=4, seed=3)
        second = simulated_eta_coverage(exp_pair, eta_small, stages=2, n_runs=4, seed=3)
        assert [s.deviation for s in first.samples] == [
            s.deviation for s in second.samples
        ]
