"""Unit tests for delay-function characterisation."""

import numpy as np
import pytest

from repro.analog import AnalogInverterChain, UMC90
from repro.core import InvolutionChannel, InvolutionPair, Signal
from repro.fitting import (
    CharacterizationDriver,
    DelayMeasurement,
    DelaySample,
    extract_delay_samples,
)


@pytest.fixture(scope="module")
def measurement() -> DelayMeasurement:
    chain = AnalogInverterChain(UMC90, stages=3)
    driver = CharacterizationDriver(chain, stage_index=1)
    widths = np.concatenate([np.linspace(6.0, 24.0, 14), np.linspace(28.0, 120.0, 10)])
    return driver.measure(widths, label="unit-test")


class TestExtractDelaySamples:
    def test_ideal_inverter_with_known_delay(self):
        # Feed a known single-history channel and recover its delay samples.
        pair = InvolutionPair.exp_channel(1.0, 0.5)
        channel = InvolutionChannel(pair, inverting=True)
        signal = Signal.pulse_train(5.0, [3.0, 2.0, 4.0], [3.0, 2.5])
        output = channel(signal)
        samples = extract_delay_samples(signal, output)
        assert len(samples) == len(signal) - 1
        for sample in samples:
            delay_fn = pair.delta_up if sample.rising_output else pair.delta_down
            assert sample.delta == pytest.approx(delay_fn(sample.T), abs=1e-9)

    def test_suppressed_pulse_produces_no_sample(self):
        pair = InvolutionPair.exp_channel(1.0, 0.5)
        channel = InvolutionChannel(pair, inverting=True)
        signal = Signal.pulse_train(5.0, [3.0, 0.1], [3.0])
        output = channel(signal)
        samples = extract_delay_samples(signal, output)
        # The 0.1-wide pulse is filtered: at most the first falling edge of
        # the wide pulse yields a sample.
        assert all(s.pulse_width != 0.1 for s in samples)

    def test_empty_output(self):
        samples = extract_delay_samples(Signal.pulse(0.0, 1.0), Signal.one())
        assert samples == []


class TestDelayMeasurement:
    def test_polarity_split(self, measurement):
        T_up, d_up = measurement.rising()
        T_down, d_down = measurement.falling()
        assert len(T_up) > 5 and len(T_down) > 5
        assert len(measurement) == len(T_up) + len(T_down)

    def test_samples_sorted_by_T(self, measurement):
        T_up, _ = measurement.rising()
        assert np.all(np.diff(T_up) >= 0)

    def test_delay_curve_is_increasing_in_T(self, measurement):
        # The physical delay function is increasing; allow small numerical
        # wiggle from the digitisation grid.
        T, delta = measurement.falling()
        coarse = np.interp(
            np.linspace(T.min(), T.max(), 8), T, delta
        )
        assert all(b >= a - 0.05 for a, b in zip(coarse, coarse[1:]))

    def test_to_involution_pair(self, measurement):
        pair = measurement.to_involution_pair()
        assert pair.delta_min > 0
        assert pair.delta_up_inf > pair.delta_min

    def test_to_involution_pair_requires_samples(self):
        empty = DelayMeasurement()
        with pytest.raises(ValueError):
            empty.to_involution_pair()

    def test_add_sample(self):
        measurement = DelayMeasurement()
        measurement.add(DelaySample(T=1.0, delta=2.0, rising_output=True, pulse_width=5.0))
        assert len(measurement) == 1


class TestCharacterizationDriver:
    def test_stage_index_validated(self):
        chain = AnalogInverterChain(UMC90, stages=2)
        with pytest.raises(ValueError):
            CharacterizationDriver(chain, stage_index=5)

    def test_run_pulse_returns_digitised_signals(self):
        chain = AnalogInverterChain(UMC90, stages=2)
        driver = CharacterizationDriver(chain, stage_index=0)
        stage_in, stage_out = driver.run_pulse(60.0)
        assert len(stage_in) == 2
        assert len(stage_out) == 2
        # The stage inverts: input rises first, output falls first.
        assert stage_in[0].value == 1
        assert stage_out[0].value == 0

    def test_negative_polarity_pulse(self):
        chain = AnalogInverterChain(UMC90, stages=2)
        driver = CharacterizationDriver(chain, stage_index=0)
        stage_in, stage_out = driver.run_pulse(60.0, polarity=0)
        assert stage_in.initial_value == 1
        assert stage_out.initial_value == 0

    def test_measurement_covers_small_T(self, measurement):
        T_up, _ = measurement.rising()
        T_down, _ = measurement.falling()
        smallest = min(T_up.min(), T_down.min())
        largest = max(T_up.max(), T_down.max())
        assert smallest < 10.0
        assert largest > 60.0
