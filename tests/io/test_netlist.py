"""JSON netlist load/save round-trips and golden-file checks."""

import json
from pathlib import Path

import pytest

from repro import api
from repro.circuits import Circuit, inverter_chain
from repro.core import Signal
from repro.io.netlist import (
    Netlist,
    load_netlist,
    netlist_from_dict,
    netlist_to_dict,
    save_netlist,
    signal_from_dict,
    signal_to_dict,
)
from repro.specs import ChannelSpec, SpecError

GOLDEN = Path(__file__).parent / "golden"
EXAMPLES = Path(__file__).parents[2] / "examples" / "netlists"


class TestSignalSerialisation:
    def test_transition_list_round_trip(self):
        signal = Signal.pulse_train(1.0, [2.0, 1.0], [3.0])
        assert signal_from_dict(signal_to_dict(signal)) == signal

    def test_constant_round_trip(self):
        assert signal_from_dict(signal_to_dict(Signal.one())) == Signal.one()

    def test_pulse_shorthand(self):
        assert signal_from_dict({"pulse": {"start": 1.0, "length": 2.0}}) == Signal.pulse(1.0, 2.0)

    def test_pulse_train_shorthand(self):
        data = {"pulse_train": {"start": 1.0, "widths": [2.0, 1.0], "gaps": [3.0]}}
        assert signal_from_dict(data) == Signal.pulse_train(1.0, [2.0, 1.0], [3.0])


class TestNetlistRoundTrip:
    def _chain(self):
        return inverter_chain(3, ChannelSpec.exp_involution(1.0, 0.5))

    def test_save_load_round_trip(self, tmp_path):
        circuit = self._chain()
        inputs = {"in": Signal.pulse(1.0, 3.0)}
        path = save_netlist(circuit, tmp_path / "c.json", inputs=inputs, end_time=50.0)
        netlist = load_netlist(path)
        assert netlist.circuit == circuit.to_spec()
        assert netlist.inputs == inputs
        assert netlist.end_time == 50.0

    def test_round_trip_simulates_identically(self, tmp_path):
        circuit = self._chain()
        inputs = {"in": Signal.pulse_train(1.0, [3.0, 0.8], [4.0])}
        path = save_netlist(circuit, tmp_path / "c.json", inputs=inputs, end_time=40.0)
        netlist = load_netlist(path)
        a = api.simulate(circuit, inputs, 40.0)
        b = api.simulate(netlist.circuit, netlist.inputs, netlist.end_time)
        assert a.node_signals == b.node_signals
        assert a.edge_signals == b.edge_signals
        assert a.event_count == b.event_count

    def test_bare_circuit_spec_dict_accepted(self):
        netlist = netlist_from_dict(self._chain().to_spec().to_dict())
        assert isinstance(netlist, Netlist)
        assert netlist.inputs == {} and netlist.end_time is None

    def test_wrong_format_rejected(self):
        with pytest.raises(SpecError, match="format"):
            netlist_from_dict({"format": "spice", "circuit": {}})

    def test_newer_version_rejected(self):
        data = netlist_to_dict(self._chain())
        data["version"] = 99
        with pytest.raises(SpecError, match="version"):
            netlist_from_dict(data)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="JSON"):
            load_netlist(path)


class TestGoldenFiles:
    """Committed netlists must keep loading and producing the same outputs."""

    def test_golden_netlist_simulates_to_expected_outputs(self):
        netlist = load_netlist(GOLDEN / "inverter_chain_3.json")
        expected = json.loads((GOLDEN / "inverter_chain_3.expected.json").read_text())
        execution = api.simulate(netlist.circuit, netlist.inputs, netlist.end_time)
        assert execution.event_count == expected["event_count"]
        for name, golden_signal in expected["outputs"].items():
            signal = execution.output_signals[name]
            assert signal.initial_value == golden_signal["initial_value"]
            assert [t.value for t in signal] == [
                v for _, v in golden_signal["transitions"]
            ]
            assert [t.time for t in signal] == pytest.approx(
                [t for t, _ in golden_signal["transitions"]], rel=1e-9
            )

    def test_golden_netlist_round_trips_textually(self, tmp_path):
        """save(load(golden)) reproduces the committed JSON byte-for-byte."""
        source = GOLDEN / "inverter_chain_3.json"
        netlist = load_netlist(source)
        rewritten = save_netlist(
            netlist.circuit,
            tmp_path / "rewritten.json",
            inputs=netlist.inputs,
            end_time=netlist.end_time,
            metadata=netlist.metadata,
        )
        assert rewritten.read_text() == source.read_text()

    @pytest.mark.parametrize("name", ["inverter_chain.json", "spf.json"])
    def test_example_netlists_load_and_validate(self, name):
        netlist = load_netlist(EXAMPLES / name)
        circuit = netlist.build()
        circuit.validate()
        assert netlist.end_time is not None
        assert set(netlist.inputs) == {p.name for p in circuit.input_ports()}

    def test_example_inverter_chain_simulates(self):
        netlist = load_netlist(EXAMPLES / "inverter_chain.json")
        execution = api.simulate(netlist.circuit, netlist.inputs, netlist.end_time)
        # 4 input pulses through an odd-length chain: all survive inverted.
        assert len(execution.output_signals["out"]) == 8


class TestCircuitFromSpecEntryPoint:
    def test_circuit_from_spec_accepts_dict(self):
        circuit = inverter_chain(2, ChannelSpec.exp_involution(1.0, 0.5))
        rebuilt = Circuit.from_spec(circuit.to_spec().to_dict())
        assert rebuilt.to_spec() == circuit.to_spec()
