"""Unit tests for the experiment-result exporters (JSON/CSV/VCD)."""

import csv
import io

import pytest

from repro.experiments import ExperimentResult, run_experiment
from repro.io import export_result, result_to_csv, result_to_vcd
from repro.specs import SpecError


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        "comparison", {"stages": 2, "pulse_count": 3, "record_traces": True}
    )


class TestCsv:
    def test_header_and_rows(self, result):
        text = result_to_csv(result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(result.rows)
        assert list(rows[0]) == result.columns

    def test_list_cells_joined(self, result):
        text = result_to_csv(result)
        first = next(csv.DictReader(io.StringIO(text)))
        survivors = first["survivors_per_stage"]
        assert ";" in survivors or survivors.isdigit()


class TestVcd:
    def test_traces_rendered(self, result):
        text = result_to_vcd(result)
        assert text.startswith("$comment repro experiment comparison")
        assert "$var wire 1" in text
        assert "pure.out" in text

    def test_without_traces_raises(self):
        bare = run_experiment("lemma5", {"eta_plus_values": [0.05]})
        with pytest.raises(SpecError, match="no recorded traces"):
            result_to_vcd(bare)


class TestExportResult:
    def test_json_round_trips(self, result, tmp_path):
        path = tmp_path / "r.json"
        text = export_result(result, "json", path)
        assert path.read_text() == text
        assert ExperimentResult.from_json(text) == result

    def test_csv_and_vcd_written(self, result, tmp_path):
        export_result(result, "csv", tmp_path / "r.csv")
        export_result(result, "vcd", tmp_path / "r.vcd")
        assert (tmp_path / "r.csv").read_text().startswith("model,")
        assert "$enddefinitions" in (tmp_path / "r.vcd").read_text()

    def test_unknown_format_rejected(self, result):
        with pytest.raises(SpecError, match="unknown export format"):
            export_result(result, "xlsx")
