"""Unit tests for VCD export."""

import io
from pathlib import Path

from repro.circuits import simulate
from repro.circuits.library import buffer_chain
from repro.core import PureDelayChannel, Signal
from repro.io import execution_to_vcd, signals_to_vcd, write_vcd
from repro.io.vcd import _identifier

GOLDEN = Path(__file__).parent / "golden"


class TestIdentifiers:
    def test_unique_for_many_indices(self):
        identifiers = {_identifier(i) for i in range(2000)}
        assert len(identifiers) == 2000

    def test_first_identifier(self):
        assert _identifier(0) == "!"


class TestSignalsToVcd:
    def test_header_and_values(self):
        text = signals_to_vcd({"a": Signal.pulse(1.0, 2.0)}, comment="unit test")
        assert "$timescale 1ps $end" in text
        assert "$var wire 1 ! a $end" in text
        assert "$dumpvars" in text
        assert "#1" in text and "#3" in text
        assert "unit test" in text

    def test_initial_values_dumped(self):
        text = signals_to_vcd({"a": Signal.one(), "b": Signal.zero()})
        dump_section = text.split("$dumpvars")[1].split("$end")[0]
        assert "1!" in dump_section
        assert '0"' in dump_section

    def test_time_scale_factor(self):
        text = signals_to_vcd({"a": Signal.step(1.5)}, time_scale_factor=1000)
        assert "#1500" in text

    def test_write_to_file_object(self):
        buffer = io.StringIO()
        write_vcd(buffer, {"a": Signal.step(1.0)})
        assert "$enddefinitions" in buffer.getvalue()

    def test_write_to_path(self, tmp_path):
        path = tmp_path / "trace.vcd"
        write_vcd(path, {"a": Signal.step(1.0)})
        assert path.read_text().startswith("$timescale")

    def test_simultaneous_events_grouped(self):
        text = signals_to_vcd({"a": Signal.step(2.0), "b": Signal.step(2.0)})
        assert text.count("#2") == 1


class TestGoldenFile:
    """Golden-file pin of the full VCD text (identifier rollover + rounding).

    60 signals force the 58-character identifier alphabet past one
    character (indices 58/59 become ``!!``/``!"``), and the 0.05-spaced
    step times under ``time_scale_factor=10`` exercise integer-tick
    rounding including the round-half-to-even cases.
    """

    def _render(self) -> str:
        signals = {f"s{k:02d}": Signal.step(0.05 * (k + 1)) for k in range(60)}
        return signals_to_vcd(
            signals,
            timescale="100ps",
            time_scale_factor=10.0,
            comment="golden: identifier rollover + tick rounding",
        )

    def test_matches_golden(self):
        expected = (GOLDEN / "identifier_rollover.expected.vcd").read_text()
        assert self._render() == expected

    def test_rollover_identifiers_present(self):
        text = self._render()
        assert '$var wire 1 !! s58 $end' in text
        assert '$var wire 1 !" s59 $end' in text
        # The rollover identifiers never collide with one-character ones.
        assert _identifier(58) == "!!"
        assert _identifier(59) == '!"'
        assert "!!" not in {_identifier(i) for i in range(58)}

    def test_tick_rounding(self):
        text = self._render()
        # s00 steps at t=0.05 -> 0.5 ticks -> rounds half-to-even to #0,
        # s02 steps at t=0.15 -> 1.5 ticks -> rounds half-to-even to #2.
        assert "#0\n1!" in text
        assert "#1\n1\"\n#2" in text


class TestExecutionToVcd:
    def test_includes_node_signals(self):
        circuit = buffer_chain(2, lambda: PureDelayChannel(1.0))
        execution = simulate(circuit, {"in": Signal.pulse(1.0, 3.0)}, 20.0)
        text = execution_to_vcd(execution)
        assert "buf1" in text and "out" in text

    def test_optionally_includes_edges(self):
        circuit = buffer_chain(1, lambda: PureDelayChannel(1.0))
        execution = simulate(circuit, {"in": Signal.pulse(1.0, 3.0)}, 20.0)
        with_edges = execution_to_vcd(execution, include_edges=True)
        without_edges = execution_to_vcd(execution, include_edges=False)
        assert "edge." in with_edges
        assert "edge." not in without_edges
