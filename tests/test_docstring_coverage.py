"""Docstring coverage enforcement for the documented public surface.

The MkDocs API reference (mkdocstrings) renders ``repro.api``,
``repro.specs``, ``repro.store`` and the engine's sweep/vector modules;
an undocumented public object there is a hole in the site.  This test
walks those modules with ``ast`` (no extra dependency needed locally)
and requires a docstring on **every** public module, class, method and
function -- the same 100% threshold the ``interrogate`` CI step
enforces.

Private names (leading underscore) are exempt, as are nested function
definitions (implementation details) and ``__dunder__`` methods --
including ``__init__``, whose parameters this codebase documents in the
class docstring (the numpy convention mkdocstrings renders via
``merge_init_into_class``); the ``interrogate`` CI step mirrors that
with ``--ignore-init-method``.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Modules whose public surface must be fully documented.
ENFORCED = [
    SRC / "api.py",
    SRC / "specs.py",
    SRC / "store.py",
    SRC / "engine" / "sweep.py",
    SRC / "engine" / "vector.py",
    SRC / "engine" / "shard.py",
    SRC / "engine" / "__init__.py",
    SRC / "engine" / "capability.py",
    SRC / "lint" / "__init__.py",
    SRC / "lint" / "diagnostics.py",
    SRC / "lint" / "rules.py",
    SRC / "lint" / "runner.py",
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_docstrings(path: Path):
    tree = ast.parse(path.read_text())
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}: module docstring")

    def walk(node, qualifier: str, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
                relevant = (
                    not inside_function
                    and _is_public(name)
                    and not name.startswith("__")
                )
                if relevant and ast.get_docstring(child) is None:
                    missing.append(f"{path.name}:{child.lineno} {qualifier}{name}")
                walk(child, f"{qualifier}{name}.", True)
            elif isinstance(child, ast.ClassDef):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    missing.append(
                        f"{path.name}:{child.lineno} {qualifier}{child.name}"
                    )
                # Methods of private classes stay exempt along with their
                # class; public classes get their public methods checked.
                if _is_public(child.name):
                    walk(child, f"{qualifier}{child.name}.", inside_function)

    walk(tree, "", False)
    return missing


@pytest.mark.parametrize("path", ENFORCED, ids=lambda p: str(p.relative_to(SRC)))
def test_public_surface_is_fully_documented(path):
    missing = _missing_docstrings(path)
    assert not missing, (
        "undocumented public objects (add real docstrings, not stubs):\n  "
        + "\n  ".join(missing)
    )
