"""Regression tests for simulator policies left untested by the seed.

Covers the ``on_causality="drop"`` policy and the combinational
zero-delay-loop :class:`SimulationError` path.
"""

import pytest

from repro.circuits import (
    BUF,
    NOR2,
    CausalityError,
    Circuit,
    SimulationError,
    simulate,
)
from repro.core import Channel, Signal


class ScriptedDelayChannel(Channel):
    """Channel returning a scripted delay per transition index (test helper)."""

    def __init__(self, delays):
        super().__init__()
        self._delays = list(delays)

    def delay_for(self, T, rising_output, index, time):
        return self._delays[index]


def buffer_circuit(channel) -> Circuit:
    circuit = Circuit("buffer")
    circuit.add_input("a")
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("y")
    circuit.connect("a", "g", channel, pin=0)
    circuit.connect("g", "y")
    return circuit


class TestCausalityPolicies:
    """A negative scripted delay schedules the falling output at 0.5, before
    the already-delivered rising output at 1.0."""

    def test_error_policy_raises(self):
        with pytest.raises(CausalityError):
            simulate(
                buffer_circuit(ScriptedDelayChannel([1.0, -1.5])),
                {"a": Signal.pulse(0.0, 2.0)},
                20.0,
            )

    def test_drop_policy_discards_and_counts(self):
        execution = simulate(
            buffer_circuit(ScriptedDelayChannel([1.0, -1.5])),
            {"a": Signal.pulse(0.0, 2.0)},
            20.0,
            on_causality="drop",
        )
        assert execution.dropped_transitions == 1
        # Only the rising transition survives: the acausal fall is dropped.
        out = execution.output("y")
        assert out.transition_times() == [1.0]
        assert out.final_value == 1

    def test_drop_policy_suppresses_no_change_without_counting(self):
        # A no-change acausal transition (same value as delivered, after the
        # pending fall at 7.0 was transport-cancelled) is a plain
        # suppression in both policies, not a drop.
        execution = simulate(
            buffer_circuit(ScriptedDelayChannel([1.0, 5.0, -2.5])),
            {"a": Signal.from_times([0.0, 2.0, 3.0])},
            20.0,
            on_causality="drop",
        )
        assert execution.dropped_transitions == 0
        assert execution.output("y").transition_times() == [1.0]


class TestZeroDelayLoop:
    def test_combinational_loop_detected(self):
        # NOR fed back through a zero-delay channel oscillates in zero time:
        # NOR(0, q) = not q forever within the time-0 delta cycles.
        circuit = Circuit("zero-delay-loop")
        circuit.add_input("i", initial_value=0)
        circuit.add_gate("nor", NOR2, initial_value=0)
        circuit.add_output("q")
        circuit.connect("i", "nor", pin=0)
        circuit.connect("nor", "nor", pin=1)  # zero-delay feedback
        circuit.connect("nor", "q")
        with pytest.raises(SimulationError, match="zero-delay"):
            simulate(circuit, {"i": Signal.zero()}, 10.0)
