"""Unit tests for the event-driven simulator."""

import pytest

from repro.circuits import (
    BUF,
    INV,
    OR2,
    XOR2,
    CausalityError,
    Circuit,
    SimulationError,
    Simulator,
    simulate,
)
from repro.core import (
    EtaBound,
    EtaInvolutionChannel,
    InertialDelayChannel,
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    Signal,
    WorstCaseAdversary,
)


def buffer_circuit(channel) -> Circuit:
    circuit = Circuit("buffer")
    circuit.add_input("a")
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("y")
    circuit.connect("a", "g", channel, pin=0)
    circuit.connect("g", "y")
    return circuit


class TestBasicSimulation:
    def test_pure_delay_buffer(self):
        execution = simulate(
            buffer_circuit(PureDelayChannel(1.5)), {"a": Signal.pulse(1.0, 2.0)}, 20.0
        )
        assert execution.output("y").transition_times() == [2.5, 4.5]

    def test_simulated_channel_matches_offline_channel_function(self, exp_pair):
        channel = InvolutionChannel(exp_pair)
        offline = channel(Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0]))
        execution = simulate(
            buffer_circuit(InvolutionChannel(exp_pair)),
            {"a": Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0])},
            100.0,
        )
        online = execution.output("y")
        assert online.transition_times() == pytest.approx(offline.transition_times())

    def test_missing_input_rejected(self):
        simulator = Simulator(buffer_circuit(PureDelayChannel(1.0)))
        with pytest.raises(SimulationError):
            simulator.run({}, 10.0)

    def test_unknown_input_rejected(self):
        simulator = Simulator(buffer_circuit(PureDelayChannel(1.0)))
        with pytest.raises(SimulationError):
            simulator.run({"a": Signal.zero(), "b": Signal.zero()}, 10.0)

    def test_end_time_truncates(self):
        execution = simulate(
            buffer_circuit(PureDelayChannel(1.0)), {"a": Signal.pulse(1.0, 10.0)}, 5.0
        )
        assert execution.output("y").transition_times() == [2.0]

    def test_event_count_reported(self):
        execution = simulate(
            buffer_circuit(PureDelayChannel(1.0)), {"a": Signal.pulse(1.0, 2.0)}, 20.0
        )
        assert execution.event_count > 0

    def test_max_events_guard(self, exp_pair, eta_small):
        from repro.circuits import fed_back_or

        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        circuit = fed_back_or(channel)
        with pytest.raises(SimulationError):
            Simulator(circuit, max_events=5).run({"i": Signal.pulse(0.0, 1.0)}, 100.0)

    def test_invalid_causality_policy(self):
        with pytest.raises(ValueError):
            Simulator(buffer_circuit(PureDelayChannel(1.0)), on_causality="ignore")

    def test_execution_accessors(self):
        execution = simulate(
            buffer_circuit(PureDelayChannel(1.0)), {"a": Signal.pulse(1.0, 2.0)}, 20.0
        )
        assert execution.output() == execution.output("y")
        assert execution.node("g").final_value == 0
        assert len(execution.edge_signals) == 2


class TestGatesInCircuits:
    def test_inverter_initial_settle(self):
        # A BUF gate declared with an initial value inconsistent with its
        # input settles with a transition at time 0.
        circuit = Circuit("settle")
        circuit.add_input("a", initial_value=1)
        circuit.add_gate("g", BUF, initial_value=0)
        circuit.add_output("y")
        circuit.connect("a", "g", PureDelayChannel(1.0), pin=0)
        circuit.connect("g", "y")
        execution = simulate(circuit, {"a": Signal.one()}, 10.0)
        out = execution.output("y")
        assert out.final_value == 1

    def test_or_gate_combines_inputs(self):
        circuit = Circuit("or")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", OR2, initial_value=0)
        circuit.add_output("y")
        circuit.connect("a", "g", PureDelayChannel(0.5), pin=0)
        circuit.connect("b", "g", PureDelayChannel(0.5), pin=1)
        circuit.connect("g", "y")
        execution = simulate(
            circuit,
            {"a": Signal.pulse(1.0, 4.0), "b": Signal.pulse(3.0, 4.0)},
            20.0,
        )
        out = execution.output("y")
        assert out.transition_times() == pytest.approx([1.5, 7.5])

    def test_xor_glitch_generation(self):
        # XOR of a signal and a delayed copy produces a glitch per transition.
        circuit = Circuit("xor")
        circuit.add_input("a")
        circuit.add_gate("g", XOR2, initial_value=0)
        circuit.add_output("y")
        circuit.connect("a", "g", PureDelayChannel(0.1), pin=0)
        circuit.connect("a", "g", PureDelayChannel(0.6), pin=1)
        circuit.connect("g", "y")
        execution = simulate(circuit, {"a": Signal.step(1.0)}, 20.0)
        pulses = execution.output("y").pulses()
        assert len(pulses) == 1
        assert pulses[0].length == pytest.approx(0.5)

    def test_inverting_channel_in_circuit(self, exp_pair):
        circuit = Circuit("inverting")
        circuit.add_input("a")
        # The inverting channel's output idles at 1, so the buffer gate must
        # be declared with a consistent initial value of 1.
        circuit.add_gate("g", BUF, initial_value=1)
        circuit.add_output("y")
        circuit.connect("a", "g", InvolutionChannel(exp_pair, inverting=True), pin=0)
        circuit.connect("g", "y")
        execution = simulate(circuit, {"a": Signal.step(0.0)}, 20.0)
        out = execution.output("y")
        assert out.initial_value == 1
        assert out.final_value == 0
        assert len(out) == 1

    def test_inertial_channel_filters_in_circuit(self):
        circuit = buffer_circuit(InertialDelayChannel(delay=1.0, window=0.5))
        short = simulate(circuit, {"a": Signal.pulse(1.0, 0.3)}, 20.0)
        long = simulate(circuit, {"a": Signal.pulse(1.0, 2.0)}, 20.0)
        assert short.output("y").is_zero()
        assert len(long.output("y")) == 2

    def test_same_time_input_events_single_gate_evaluation(self):
        circuit = Circuit("simultaneous")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", XOR2, initial_value=0)
        circuit.add_output("y")
        circuit.connect("a", "g", pin=0)
        circuit.connect("b", "g", pin=1)
        circuit.connect("g", "y")
        execution = simulate(
            circuit, {"a": Signal.step(1.0), "b": Signal.step(1.0)}, 10.0
        )
        # Both inputs rise simultaneously through zero-delay channels: XOR
        # stays 0 and must not produce a zero-width glitch.
        assert execution.output("y").is_zero()


class TestFeedback:
    def test_storage_loop_latches(self, exp_pair, eta_small):
        from repro.circuits import fed_back_or

        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        circuit = fed_back_or(channel)
        execution = simulate(circuit, {"i": Signal.pulse(0.0, 5.0)}, 100.0)
        out = execution.output_signals["or_out"]
        assert out.final_value == 1
        assert len(out) == 1

    def test_storage_loop_filters_short_pulse(self, exp_pair, eta_small):
        from repro.circuits import fed_back_or

        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        circuit = fed_back_or(channel)
        execution = simulate(circuit, {"i": Signal.pulse(0.0, 0.2)}, 100.0)
        out = execution.output_signals["or_out"]
        assert out.final_value == 0
        assert len(out.pulses()) == 1

    def test_sr_latch_sets_and_resets(self, exp_pair):
        from repro.circuits import sr_latch_nor

        circuit = sr_latch_nor(lambda: InvolutionChannel(InvolutionPair.exp_channel(1.0, 0.5)))
        execution = simulate(
            circuit,
            {"s": Signal.pulse(1.0, 5.0), "r": Signal.pulse(20.0, 5.0)},
            60.0,
        )
        q = execution.output_signals["q"]
        assert q.value_at(15.0) == 1
        assert q.final_value == 0
