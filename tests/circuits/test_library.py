"""Unit tests for the prebuilt circuit library."""

import pytest

from repro.circuits import (
    buffer_chain,
    fed_back_or,
    glitch_generator,
    inverter_chain,
    simulate,
    sr_latch_nor,
)
from repro.core import InvolutionChannel, InvolutionPair, PureDelayChannel, Signal


def exp_factory():
    return InvolutionChannel(InvolutionPair.exp_channel(1.0, 0.5))


class TestInverterChain:
    def test_structure(self):
        circuit = inverter_chain(7, exp_factory)
        assert len(circuit.gates()) == 7
        assert len(circuit.output_ports()) == 1
        circuit.validate()

    def test_taps_exposed(self):
        circuit = inverter_chain(3, exp_factory, expose_taps=True)
        names = {p.name for p in circuit.output_ports()}
        assert names == {"q1", "q2", "q3", "out"}

    def test_odd_chain_inverts_step(self):
        circuit = inverter_chain(3, exp_factory)
        execution = simulate(circuit, {"in": Signal.step(0.0)}, 50.0)
        out = execution.output("out")
        assert out.initial_value == 1
        assert out.final_value == 0

    def test_even_chain_preserves_polarity(self):
        circuit = inverter_chain(4, exp_factory)
        execution = simulate(circuit, {"in": Signal.step(0.0)}, 50.0)
        out = execution.output("out")
        assert out.initial_value == 0
        assert out.final_value == 1

    def test_narrow_pulse_dies_along_the_chain(self):
        circuit = inverter_chain(5, exp_factory, expose_taps=True)
        execution = simulate(circuit, {"in": Signal.pulse(0.0, 0.75)}, 80.0)
        first = execution.output_signals["q1"]
        last = execution.output_signals["q5"]
        assert len(first) >= 2
        assert last.is_constant()

    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            inverter_chain(0, exp_factory)


class TestBufferChain:
    def test_step_propagates_with_accumulated_delay(self):
        circuit = buffer_chain(4, lambda: PureDelayChannel(1.0))
        execution = simulate(circuit, {"in": Signal.step(0.0)}, 20.0)
        out = execution.output("out")
        assert out.transition_times() == pytest.approx([4.0])

    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            buffer_chain(0, exp_factory)


class TestFedBackOr:
    def test_has_feedback(self):
        circuit = fed_back_or(exp_factory())
        assert circuit.has_feedback()
        circuit.validate()

    def test_input_channel_can_be_customised(self):
        circuit = fed_back_or(exp_factory(), input_channel=PureDelayChannel(0.5))
        execution = simulate(circuit, {"i": Signal.pulse(0.0, 5.0)}, 60.0)
        out = execution.output_signals["or_out"]
        # The input channel delays the OR's rise by 0.5.
        assert out[0].time == pytest.approx(0.5)
        assert out.final_value == 1


class TestGlitchGenerator:
    def test_generates_one_glitch_per_input_transition(self):
        circuit = glitch_generator(PureDelayChannel(1.0), PureDelayChannel(0.2))
        execution = simulate(circuit, {"in": Signal.pulse(1.0, 10.0)}, 40.0)
        pulses = execution.output("out").pulses()
        assert len(pulses) == 2
        assert pulses[0].length == pytest.approx(0.8)


class TestSRLatch:
    def test_structure(self):
        circuit = sr_latch_nor(exp_factory)
        assert len(circuit.gates()) == 2
        assert circuit.has_feedback()
        circuit.validate()
