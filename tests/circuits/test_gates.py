"""Unit tests for the gate library."""

import pytest

from repro.circuits import (
    AND2,
    AND3,
    BUF,
    GATE_LIBRARY,
    INV,
    MAJ3,
    MUX2,
    NAND2,
    NOR2,
    OR2,
    OR3,
    XNOR2,
    XOR2,
    GateType,
)


class TestStandardGates:
    def test_buf_and_inv(self):
        assert BUF(0) == 0 and BUF(1) == 1
        assert INV(0) == 1 and INV(1) == 0

    def test_and_or(self):
        assert AND2(1, 1) == 1 and AND2(1, 0) == 0
        assert OR2(0, 0) == 0 and OR2(0, 1) == 1

    def test_nand_nor(self):
        assert NAND2(1, 1) == 0 and NAND2(0, 0) == 1
        assert NOR2(0, 0) == 1 and NOR2(1, 0) == 0

    def test_xor_xnor(self):
        assert XOR2(1, 0) == 1 and XOR2(1, 1) == 0
        assert XNOR2(1, 1) == 1 and XNOR2(1, 0) == 0

    def test_three_input_gates(self):
        assert AND3(1, 1, 1) == 1 and AND3(1, 1, 0) == 0
        assert OR3(0, 0, 0) == 0 and OR3(0, 0, 1) == 1

    def test_mux(self):
        # MUX2(select, a, b): select ? a : b
        assert MUX2(1, 1, 0) == 1
        assert MUX2(0, 1, 0) == 0

    def test_majority(self):
        assert MAJ3(1, 1, 0) == 1
        assert MAJ3(1, 0, 0) == 0

    def test_library_contains_all(self):
        for name in ("BUF", "INV", "AND2", "OR2", "NAND2", "NOR2", "XOR2"):
            assert name in GATE_LIBRARY
            assert GATE_LIBRARY[name].name == name


class TestGateType:
    def test_arity_checked(self):
        with pytest.raises(ValueError):
            AND2.evaluate([1])

    def test_arity_must_be_positive(self):
        with pytest.raises(ValueError):
            GateType("bad", 0, lambda v: 0)

    def test_non_boolean_output_rejected(self):
        gate = GateType("weird", 1, lambda v: 7)
        with pytest.raises(ValueError):
            gate.evaluate([1])

    def test_from_function(self):
        gate = GateType.from_function("AOI", 3, lambda a, b, c: not (a and b or c))
        assert gate(1, 1, 0) == 0
        assert gate(0, 0, 0) == 1

    def test_from_truth_table(self):
        gate = GateType.from_truth_table("odd", 2, {(0, 1): 1, (1, 0): 1})
        assert gate(0, 1) == 1
        assert gate(1, 1) == 0

    def test_truth_table_roundtrip(self):
        table = XOR2.truth_table()
        assert table[(0, 1)] == 1
        assert table[(1, 1)] == 0
        assert len(table) == 4

    def test_inputs_coerced_to_bool(self):
        assert OR2.evaluate([0, 2]) == 1
