"""Unit tests for circuit construction and validation."""

import pytest

from repro.circuits import BUF, INV, OR2, Circuit, CircuitError
from repro.core import PureDelayChannel, ZeroDelayChannel


def small_circuit() -> Circuit:
    circuit = Circuit("small")
    circuit.add_input("a")
    circuit.add_gate("g", BUF, initial_value=0)
    circuit.add_output("y")
    circuit.connect("a", "g", PureDelayChannel(1.0), pin=0)
    circuit.connect("g", "y")
    return circuit


class TestConstruction:
    def test_summary_counts(self):
        circuit = small_circuit()
        assert "1 inputs" in circuit.summary()
        assert "1 gates" in circuit.summary()

    def test_duplicate_node_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_gate("a", BUF)

    def test_unknown_nodes_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.connect("a", "nonexistent")
        with pytest.raises(CircuitError):
            circuit.connect("nonexistent", "a")

    def test_output_port_cannot_drive(self):
        circuit = Circuit()
        circuit.add_output("y")
        circuit.add_gate("g", BUF)
        with pytest.raises(CircuitError):
            circuit.connect("y", "g")

    def test_input_port_cannot_be_driven(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", BUF)
        with pytest.raises(CircuitError):
            circuit.connect("g", "a")

    def test_pin_range_checked(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", OR2)
        with pytest.raises(CircuitError):
            circuit.connect("a", "g", pin=2)

    def test_double_driver_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", BUF)
        circuit.connect("a", "g", pin=0)
        with pytest.raises(CircuitError):
            circuit.connect("b", "g", pin=0)

    def test_default_channel_is_zero_delay(self):
        circuit = small_circuit()
        edge = circuit.edges_into("y")[0]
        assert isinstance(edge.channel, ZeroDelayChannel)

    def test_gate_initial_value_validated(self):
        circuit = Circuit()
        with pytest.raises(CircuitError):
            circuit.add_gate("g", BUF, initial_value=2)

    def test_duplicate_edge_name_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", OR2)
        circuit.connect("a", "g", pin=0, name="e")
        circuit.add_input("b")
        with pytest.raises(CircuitError):
            circuit.connect("b", "g", pin=1, name="e")


class TestValidationAndQueries:
    def test_valid_circuit_passes(self):
        small_circuit().validate()

    def test_undriven_gate_pin_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", OR2)
        circuit.add_output("y")
        circuit.connect("a", "g", pin=0)
        circuit.connect("g", "y")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_missing_ports_detected(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_gate("g", BUF)
        circuit.connect("a", "g", pin=0)
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_output_needs_exactly_one_driver(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_output("y")
        with pytest.raises(CircuitError):
            circuit.validate()

    def test_edges_into_sorted_by_pin(self):
        circuit = Circuit()
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("g", OR2)
        circuit.connect("b", "g", pin=1)
        circuit.connect("a", "g", pin=0)
        pins = [e.pin for e in circuit.edges_into("g")]
        assert pins == [0, 1]

    def test_fan_in(self):
        circuit = small_circuit()
        assert circuit.fan_in("g") == 1
        assert circuit.fan_in("y") == 1

    def test_feedback_detection(self):
        circuit = Circuit()
        circuit.add_input("i")
        circuit.add_gate("or", OR2, initial_value=0)
        circuit.add_output("o")
        circuit.connect("i", "or", pin=0)
        circuit.connect("or", "or", PureDelayChannel(1.0), pin=1)
        circuit.connect("or", "o")
        assert circuit.has_feedback()
        assert not small_circuit().has_feedback()

    def test_to_networkx(self):
        graph = small_circuit().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2

    def test_node_and_edge_lookup(self):
        circuit = small_circuit()
        assert circuit.node("g").name == "g"
        with pytest.raises(CircuitError):
            circuit.node("nope")
        edge_name = next(iter(circuit.edges))
        assert circuit.edge(edge_name).name == edge_name
        with pytest.raises(CircuitError):
            circuit.edge("nope")
