"""Unit tests for signals and transitions."""

import math

import pytest

from repro.core import Pulse, Signal, SignalError, Transition


class TestTransition:
    def test_rising_and_falling_flags(self):
        assert Transition(1.0, 1).is_rising
        assert not Transition(1.0, 1).is_falling
        assert Transition(2.0, 0).is_falling

    def test_invalid_value_rejected(self):
        with pytest.raises(SignalError):
            Transition(0.0, 2)

    def test_shifted(self):
        assert Transition(1.0, 1).shifted(0.5) == Transition(1.5, 1)

    def test_inverted(self):
        assert Transition(1.0, 1).inverted() == Transition(1.0, 0)

    def test_ordering_by_time(self):
        assert Transition(1.0, 0) < Transition(2.0, 1)


class TestPulse:
    def test_end_time(self):
        assert Pulse(1.0, 2.0).end == 3.0

    def test_nonpositive_length_rejected(self):
        with pytest.raises(SignalError):
            Pulse(0.0, 0.0)
        with pytest.raises(SignalError):
            Pulse(0.0, -1.0)

    def test_to_signal_positive(self):
        signal = Pulse(1.0, 2.0).to_signal()
        assert signal.initial_value == 0
        assert signal.transition_times() == [1.0, 3.0]
        assert [t.value for t in signal] == [1, 0]

    def test_to_signal_negative_polarity(self):
        signal = Pulse(1.0, 2.0, polarity=0).to_signal()
        assert signal.initial_value == 1
        assert [t.value for t in signal] == [0, 1]


class TestSignalConstruction:
    def test_constant_signals(self):
        assert Signal.zero().is_zero()
        assert Signal.one().final_value == 1
        assert Signal.zero().is_constant()

    def test_step(self):
        step = Signal.step(2.0)
        assert step.initial_value == 0
        assert step.value_at(1.9) == 0
        assert step.value_at(2.0) == 1

    def test_pulse_constructor(self):
        pulse = Signal.pulse(1.0, 0.5)
        assert len(pulse) == 2
        assert pulse.final_value == 0

    def test_from_times_alternates(self):
        signal = Signal.from_times([1.0, 2.0, 3.0])
        assert [t.value for t in signal] == [1, 0, 1]

    def test_from_times_initial_one(self):
        signal = Signal.from_times([1.0, 2.0], initial_value=1)
        assert [t.value for t in signal] == [0, 1]

    def test_pulse_train(self):
        train = Signal.pulse_train(0.0, [1.0, 2.0, 1.0], [0.5, 0.5])
        assert len(train) == 6
        ups, downs = train.up_down_times()
        assert ups == [1.0, 2.0, 1.0]
        assert downs == [0.5, 0.5]

    def test_pulse_train_empty(self):
        assert Signal.pulse_train(0.0, [], []).is_zero()

    def test_pulse_train_rejects_bad_downs(self):
        with pytest.raises(SignalError):
            Signal.pulse_train(0.0, [1.0, 1.0], [])

    def test_nonmonotonic_times_rejected(self):
        with pytest.raises(SignalError):
            Signal(0, [Transition(2.0, 1), Transition(1.0, 0)])

    def test_equal_times_rejected(self):
        with pytest.raises(SignalError):
            Signal(0, [Transition(1.0, 1), Transition(1.0, 0)])

    def test_non_alternating_values_rejected(self):
        with pytest.raises(SignalError):
            Signal(0, [Transition(1.0, 1), Transition(2.0, 1)])

    def test_first_value_must_differ_from_initial(self):
        with pytest.raises(SignalError):
            Signal(1, [Transition(1.0, 1)])

    def test_negative_times_rejected_by_default(self):
        with pytest.raises(SignalError):
            Signal(0, [Transition(-1.0, 1)])

    def test_negative_times_allowed_when_requested(self):
        signal = Signal(0, [Transition(-1.0, 1)], allow_negative_times=True)
        assert signal.value_at(0.0) == 1

    def test_nan_time_rejected(self):
        with pytest.raises(SignalError):
            Signal(0, [Transition(math.nan, 1)])

    def test_invalid_initial_value(self):
        with pytest.raises(SignalError):
            Signal(2, [])


class TestSignalQueries:
    def test_value_at(self):
        signal = Signal.from_times([1.0, 2.0, 3.0])
        assert signal.value_at(0.5) == 0
        assert signal.value_at(1.0) == 1
        assert signal.value_at(2.5) == 0
        assert signal.value_at(10.0) == 1

    def test_values_at(self):
        signal = Signal.pulse(1.0, 1.0)
        assert signal.values_at([0.0, 1.5, 3.0]) == [0, 1, 0]

    def test_final_value(self):
        assert Signal.pulse(0.0, 1.0).final_value == 0
        assert Signal.step(0.0).final_value == 1
        assert Signal.zero().final_value == 0

    def test_pulses_positive(self):
        train = Signal.pulse_train(0.0, [1.0, 2.0], [3.0])
        pulses = train.pulses()
        assert [p.length for p in pulses] == [1.0, 2.0]
        assert [p.start for p in pulses] == [0.0, 4.0]

    def test_pulses_negative_polarity(self):
        signal = Signal.pulse(1.0, 2.0, polarity=0)
        pulses = signal.pulses(0)
        assert len(pulses) == 1
        assert pulses[0].length == 2.0

    def test_trailing_step_not_a_pulse(self):
        signal = Signal.step(1.0)
        assert signal.pulses() == []

    def test_shortest_pulse_length(self):
        train = Signal.pulse_train(0.0, [1.0, 0.25, 2.0], [1.0, 1.0])
        assert train.shortest_pulse_length() == 0.25
        assert Signal.zero().shortest_pulse_length() is None

    def test_contains_pulse_shorter_than(self):
        train = Signal.pulse_train(0.0, [1.0, 0.25], [1.0])
        assert train.contains_pulse_shorter_than(0.5)
        assert not train.contains_pulse_shorter_than(0.2)

    def test_duty_cycles(self):
        train = Signal.pulse_train(0.0, [1.0, 1.0], [1.0])
        # First pulse: up 1.0, period 2.0 (rise to rise).
        assert train.duty_cycles() == [0.5]

    def test_up_down_times(self):
        train = Signal.pulse_train(2.0, [1.0, 3.0], [0.5])
        ups, downs = train.up_down_times()
        assert ups == [1.0, 3.0]
        assert downs == [0.5]

    def test_stabilization_time(self):
        assert Signal.zero().stabilization_time() == -math.inf
        assert Signal.pulse(1.0, 2.0).stabilization_time() == 3.0


class TestSignalTransformations:
    def test_shifted(self):
        shifted = Signal.pulse(1.0, 1.0).shifted(2.0)
        assert shifted.transition_times() == [3.0, 4.0]

    def test_inverted(self):
        inverted = Signal.pulse(1.0, 1.0).inverted()
        assert inverted.initial_value == 1
        assert [t.value for t in inverted] == [0, 1]
        assert inverted.inverted() == Signal.pulse(1.0, 1.0)

    def test_restricted(self):
        # Transitions at 0, 1, 2, 3.
        train = Signal.pulse_train(0.0, [1.0, 1.0], [1.0])
        assert len(train.restricted(2.5)) == 3
        assert len(train.restricted(1.5)) == 2

    def test_after(self):
        train = Signal.pulse_train(0.0, [1.0, 1.0], [1.0])
        later = train.after(2.5)
        assert later.initial_value == 1
        assert len(later) == 1
        assert later.transition_times() == [3.0]

    def test_equality_and_hash(self):
        a = Signal.pulse(1.0, 1.0)
        b = Signal.pulse(1.0, 1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Signal.pulse(1.0, 2.0)

    def test_repr_is_compact(self):
        text = repr(Signal.pulse_train(0.0, [1.0] * 10, [1.0] * 9))
        assert "..." in text
