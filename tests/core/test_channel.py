"""Unit tests for the channel base machinery and cancellation resolvers."""

import math

import pytest

from repro.core import (
    PendingTransition,
    Signal,
    ZeroDelayChannel,
    cancel_non_fifo,
    cancel_non_fifo_reference,
    pending_to_signal,
    transport_resolve,
)


def make_pending(times, initial_value=0):
    """Build alternating pending transitions with the given output times."""
    value = 1 - initial_value
    pending = []
    for t in times:
        pending.append(PendingTransition(input_time=0.0, delay=t, value=value))
        value = 1 - value
    return pending


class TestCancellationResolvers:
    def test_fifo_order_keeps_everything(self):
        times = [1.0, 2.0, 3.0, 4.0]
        assert cancel_non_fifo(times) == [False] * 4
        assert cancel_non_fifo_reference(times) == [False] * 4

    def test_single_inversion_cancels_pair(self):
        times = [2.0, 1.0]
        assert cancel_non_fifo(times) == [True, True]
        assert cancel_non_fifo_reference(times) == [True, True]

    def test_equal_times_cancel(self):
        times = [1.0, 1.0]
        assert cancel_non_fifo(times) == [True, True]

    def test_record_sweep_matches_reference_on_overlaps(self):
        times = [1.0, 5.0, 6.0, 4.0, 10.0]
        assert cancel_non_fifo(times) == cancel_non_fifo_reference(times)

    def test_empty_input(self):
        assert cancel_non_fifo([]) == []
        assert cancel_non_fifo_reference([]) == []

    def test_transport_resolve_pairwise_case(self):
        # A short pulse: the falling tentative transition is scheduled before
        # the pending rising one -> the pulse vanishes entirely.
        pending = make_pending([2.0, 1.0])
        out = transport_resolve(0, pending)
        assert out.is_zero()
        assert all(p.cancelled for p in pending)

    def test_transport_resolve_keeps_fifo(self):
        pending = make_pending([1.0, 2.0, 3.0, 4.0])
        out = transport_resolve(0, pending)
        assert out.transition_times() == [1.0, 2.0, 3.0, 4.0]

    def test_transport_resolve_triple_overlap_yields_valid_signal(self):
        # Times [5, 7, 4]: the literal pairwise rule would cancel an odd
        # number of transitions; transport resolution must still produce a
        # well-formed alternating signal.
        pending = make_pending([5.0, 7.0, 4.0, 10.0])
        out = transport_resolve(0, pending)
        values = [t.value for t in out]
        # Alternation starting from the initial value 0.
        for previous, current in zip([0] + values, values):
            assert previous != current
        times = out.transition_times()
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_transport_drops_minus_inf(self):
        # The guard case of the eta-channel: the second transition gets a
        # -inf delay while its predecessor is still pending -> both vanish.
        pending = [
            PendingTransition(input_time=0.0, delay=2.0, value=1),
            PendingTransition(input_time=1.0, delay=-math.inf, value=0),
        ]
        out = transport_resolve(0, pending)
        assert out.is_zero()

    def test_pending_to_signal_modes_agree_on_simple_cases(self):
        for times in ([1.0, 2.0, 3.0], [3.0, 2.0], [1.0, 4.0, 2.0, 5.0]):
            pending_a = make_pending(times)
            pending_b = make_pending(times)
            pending_c = make_pending(times)
            transport = pending_to_signal(0, pending_a, mode="transport")
            record = pending_to_signal(0, pending_b, mode="record")
            pairwise = pending_to_signal(0, pending_c, mode="pairwise")
            assert record == pairwise
            # Traces agree even when the transition lists differ formally.
            probe_times = [0.5, 1.5, 2.5, 3.5, 4.5, 6.0]
            assert transport.values_at(probe_times) == record.values_at(probe_times)

    def test_pending_to_signal_unknown_mode(self):
        with pytest.raises(ValueError):
            pending_to_signal(0, make_pending([1.0]), mode="bogus")

    def test_legacy_reference_flag(self):
        pending = make_pending([2.0, 1.0])
        out = pending_to_signal(0, pending, use_reference_cancellation=True)
        assert out.is_zero()


class TestZeroDelayChannel:
    def test_identity(self):
        channel = ZeroDelayChannel()
        signal = Signal.pulse(1.0, 2.0)
        assert channel(signal) == signal

    def test_inverting(self):
        channel = ZeroDelayChannel(inverting=True)
        signal = Signal.pulse(1.0, 2.0)
        assert channel(signal) == signal.inverted()

    def test_output_initial_value(self):
        assert ZeroDelayChannel().output_initial_value(1) == 1
        assert ZeroDelayChannel(inverting=True).output_initial_value(1) == 0

    def test_repr(self):
        assert "ZeroDelayChannel" in repr(ZeroDelayChannel())


class TestPendingTransition:
    def test_output_time(self):
        pending = PendingTransition(input_time=2.0, delay=0.5, value=1)
        assert pending.output_time == 2.5

    def test_defaults(self):
        pending = PendingTransition(input_time=0.0, delay=1.0, value=0)
        assert not pending.cancelled
        assert pending.eta == 0.0
