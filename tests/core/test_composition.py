"""Unit tests for serial channel composition."""

import pytest

from repro.core import (
    InvolutionChannel,
    InvolutionPair,
    PureDelayChannel,
    SerialChannel,
    Signal,
)
from repro.circuits import inverter_chain, simulate


class TestSerialChannel:
    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            SerialChannel([])

    def test_pure_delays_add_up(self):
        composite = SerialChannel([PureDelayChannel(1.0), PureDelayChannel(2.0)])
        out = composite(Signal.step(0.0))
        assert out.transition_times() == [3.0]

    def test_inversion_parity(self, exp_pair):
        odd = SerialChannel([InvolutionChannel(exp_pair, inverting=True)] * 3)
        even = SerialChannel([InvolutionChannel(exp_pair, inverting=True)] * 2)
        assert odd.inverting
        assert not even.inverting
        assert odd.output_initial_value(0) == 1
        assert even.output_initial_value(0) == 0

    def test_matches_circuit_simulation_of_a_chain(self, exp_pair):
        # Composing N inverting involution channels equals simulating an
        # N-stage inverter chain built from non-inverting channels + INV gates.
        stages = 4
        composite = SerialChannel(
            [InvolutionChannel(exp_pair, inverting=True) for _ in range(stages)]
        )
        stimulus = Signal.pulse_train(0.0, [2.0, 1.0], [2.0])
        composed = composite(stimulus)

        circuit = inverter_chain(stages, lambda: InvolutionChannel(exp_pair))
        execution = simulate(circuit, {"in": stimulus}, 200.0)
        simulated = execution.output_signals["out"]
        assert composed.initial_value == simulated.initial_value
        assert composed.transition_times() == pytest.approx(simulated.transition_times())

    def test_stage_outputs_attenuate_glitches(self, exp_pair):
        composite = SerialChannel(
            [InvolutionChannel(exp_pair, inverting=True) for _ in range(5)]
        )
        train = Signal.pulse_train(0.0, [0.8] * 6, [0.7] * 5)
        taps = composite.stage_outputs(train)
        assert len(taps) == 5
        counts = [len(s) for s in taps]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_reset_propagates(self, exp_pair, eta_small):
        from repro.core import EtaInvolutionChannel, RandomAdversary

        stage = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=5))
        composite = SerialChannel([stage])
        signal = Signal.pulse_train(0.0, [1.0, 1.0], [1.0])
        first = composite(signal)
        second = composite(signal)
        assert first == second

    def test_delay_for_is_not_defined(self, exp_pair):
        composite = SerialChannel([InvolutionChannel(exp_pair)])
        with pytest.raises(NotImplementedError):
            composite.delay_for(1.0, True, 0, 0.0)

    def test_len_and_repr(self, exp_pair):
        composite = SerialChannel([InvolutionChannel(exp_pair)] * 2)
        assert len(composite) == 2
        assert "SerialChannel" in repr(composite)
