"""Unit tests for delay functions."""

import math

import numpy as np
import pytest

from repro.core import ConstantDelay, ExpDelay, ScaledDelay, ShiftedDelay, TableDelay
from repro.core.delay_functions import FunctionalDelay, numeric_derivative, numeric_inverse


class TestExpDelay:
    def test_limit_matches_closed_form(self):
        delay = ExpDelay(tau=1.0, t_p=0.5, v_th=0.5, rising=True)
        assert delay.delta_inf() == pytest.approx(0.5 + math.log(2.0))

    def test_large_T_approaches_limit(self):
        delay = ExpDelay(1.0, 0.5)
        assert delay(50.0) == pytest.approx(delay.delta_inf(), rel=1e-9)

    def test_monotone_increasing(self):
        delay = ExpDelay(1.0, 0.5)
        values = [delay(t) for t in np.linspace(-0.5, 5.0, 50)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_concave(self):
        delay = ExpDelay(1.0, 0.5)
        ts = np.linspace(-0.5, 5.0, 50)
        derivatives = [delay.derivative(t) for t in ts]
        assert all(b <= a + 1e-12 for a, b in zip(derivatives, derivatives[1:]))

    def test_domain_low_gives_minus_inf(self):
        delay = ExpDelay(1.0, 0.5)
        assert delay(delay.domain_low()) == -math.inf
        assert delay(delay.domain_low() - 1.0) == -math.inf

    def test_delta_at_minus_tp_is_tp(self):
        # Lemma 1: for exp-channels delta_min = t_p.
        delay = ExpDelay(1.3, 0.7, 0.5)
        assert delay(-0.7) == pytest.approx(0.7, rel=1e-12)

    def test_asymmetric_thresholds_are_partners(self):
        up = ExpDelay(1.0, 0.5, v_th=0.7, rising=True)
        down = up.partner()
        assert down.v_th == 0.7
        assert not down.rising
        # Involution: -up(-down(T)) == T.
        for T in (0.0, 0.5, 2.0):
            assert -up(-down(T)) == pytest.approx(T, abs=1e-9)

    def test_analytic_derivative_matches_numeric(self):
        delay = ExpDelay(0.8, 0.3, 0.6)
        for T in (-0.2, 0.0, 1.0, 3.0):
            assert delay.derivative(T) == pytest.approx(
                numeric_derivative(delay, T), rel=1e-4
            )

    def test_analytic_inverse(self):
        delay = ExpDelay(1.0, 0.5)
        for T in (-0.4, 0.0, 2.0):
            assert delay.inverse(delay(T)) == pytest.approx(T, abs=1e-9)

    def test_inverse_rejects_values_above_limit(self):
        delay = ExpDelay(1.0, 0.5)
        with pytest.raises(ValueError):
            delay.inverse(delay.delta_inf() + 0.1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExpDelay(0.0, 0.5)
        with pytest.raises(ValueError):
            ExpDelay(1.0, 0.0)
        with pytest.raises(ValueError):
            ExpDelay(1.0, 0.5, v_th=1.0)

    def test_strict_causality_check(self):
        assert ExpDelay(1.0, 0.5).is_strictly_causal_at_zero()

    def test_sample_returns_array(self):
        delay = ExpDelay(1.0, 0.5)
        values = delay.sample([0.0, 1.0, 2.0])
        assert values.shape == (3,)
        assert np.all(np.diff(values) > 0)

    def test_describe_mentions_limits(self):
        text = ExpDelay(1.0, 0.5).describe()
        assert "delta_inf" in text


class TestConstantDelay:
    def test_constant_everywhere(self):
        delay = ConstantDelay(2.0)
        assert delay(-100.0) == 2.0
        assert delay(100.0) == 2.0
        assert delay.derivative(0.0) == 0.0
        assert delay.delta_inf() == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantDelay(-1.0)


class TestShiftedAndScaled:
    def test_shifted_delay(self):
        base = ExpDelay(1.0, 0.5)
        shifted = ShiftedDelay(base, shift_T=1.0, shift_delta=0.25)
        assert shifted(2.0) == pytest.approx(base(1.0) + 0.25)
        assert shifted.delta_inf() == pytest.approx(base.delta_inf() + 0.25)
        assert shifted.domain_low() == pytest.approx(base.domain_low() + 1.0)

    def test_scaled_delay_preserves_shape(self):
        base = ExpDelay(1.0, 0.5)
        scaled = ScaledDelay(base, 1000.0)  # ns -> ps
        assert scaled(1000.0) == pytest.approx(1000.0 * base(1.0))
        assert scaled.delta_inf() == pytest.approx(1000.0 * base.delta_inf())
        assert scaled.derivative(1000.0) == pytest.approx(base.derivative(1.0), rel=1e-4)

    def test_scaled_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            ScaledDelay(ExpDelay(1.0, 0.5), 0.0)


class TestTableDelay:
    def _reference_table(self):
        base = ExpDelay(1.0, 0.5)
        T = np.linspace(-0.6, 6.0, 40)
        return base, TableDelay(T, [base(t) for t in T])

    def test_interpolates_within_support(self):
        base, table = self._reference_table()
        for T in (0.1, 1.3, 4.2):
            assert table(T) == pytest.approx(base(T), abs=5e-3)

    def test_right_tail_saturates(self):
        _, table = self._reference_table()
        assert table(1e6) == pytest.approx(table.delta_inf(), rel=1e-9)
        assert table(100.0) < table.delta_inf()

    def test_left_tail_diverges(self):
        _, table = self._reference_table()
        assert table(table.domain_low()) == -math.inf
        near = table(table.domain_low() + 1e-12)
        assert near < table(table.support()[0])

    def test_monotone(self):
        _, table = self._reference_table()
        ts = np.linspace(table.domain_low() + 1e-6, 20.0, 200)
        values = [table(t) for t in ts]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            TableDelay([0.0], [1.0])
        with pytest.raises(ValueError):
            TableDelay([0.0, 0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            TableDelay([0.0, 1.0], [1.0, 2.0], delta_inf=1.5)

    def test_unsorted_samples_are_sorted(self):
        table = TableDelay([2.0, 0.0, 1.0], [3.0, 1.0, 2.0])
        assert table(0.5) == pytest.approx(1.5)

    def test_support(self):
        table = TableDelay([0.0, 1.0, 2.0], [1.0, 1.5, 1.8])
        assert table.support() == (0.0, 2.0)

    def test_sample_is_bitwise_identical_to_scalar_calls(self):
        # The vectorized path claims to match the scalar path exactly;
        # that includes the boundary T == T_samples[-1], where the scalar
        # path returns the last sample value directly while a naive
        # last-segment interpolation can differ in the last ulp.
        table = TableDelay(
            [2.660802367371721, 2.845129271316791, 4.066220476820962,
             4.129786110851996],
            [0.42494073603928073, 0.7660541415989874, 0.8441821189624154,
             1.9943195568377343],
        )
        points = [0.0, 2.660802367371721, 2.9, 4.0, 4.129786110851996, 5.0, 50.0]
        sampled = table.sample(points)
        for point, value in zip(points, sampled):
            assert value == table(point), point


class TestFunctionalDelay:
    def test_wraps_callable(self):
        base = ExpDelay(1.0, 0.5)
        wrapped = FunctionalDelay(base, base.delta_inf(), base.domain_low())
        assert wrapped(1.0) == pytest.approx(base(1.0))
        assert wrapped(wrapped.domain_low() - 1.0) == -math.inf

    def test_generic_inverse(self):
        base = ExpDelay(1.0, 0.5)
        wrapped = FunctionalDelay(base, base.delta_inf(), base.domain_low())
        assert wrapped.inverse(base(0.7)) == pytest.approx(0.7, abs=1e-6)


class TestNumericHelpers:
    def test_numeric_inverse(self):
        assert numeric_inverse(lambda x: x**3, 8.0, 0.0, 3.0) == pytest.approx(2.0, abs=1e-9)

    def test_numeric_inverse_out_of_range(self):
        with pytest.raises(ValueError):
            numeric_inverse(lambda x: x, 5.0, 0.0, 1.0)

    def test_numeric_derivative(self):
        assert numeric_derivative(math.sin, 0.0) == pytest.approx(1.0, abs=1e-6)
