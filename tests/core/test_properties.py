"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    EtaBound,
    EtaInvolutionChannel,
    ExpDelay,
    InvolutionChannel,
    InvolutionPair,
    RandomAdversary,
    Signal,
    ZeroAdversary,
    cancel_non_fifo,
    cancel_non_fifo_reference,
    constraint_C_margin,
    max_eta_minus,
)
from repro.core.constraint import max_eta_plus


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

positive_times = st.lists(
    st.floats(min_value=0.01, max_value=1e3, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=25,
)

exp_params = st.tuples(
    st.floats(min_value=0.1, max_value=5.0),  # tau
    st.floats(min_value=0.05, max_value=3.0),  # t_p
    st.floats(min_value=0.2, max_value=0.8),  # v_th
)

output_time_lists = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=30,
)


def signal_from_gaps(gaps):
    """Build a valid signal from positive inter-transition gaps."""
    times = []
    current = 0.0
    for gap in gaps:
        current += gap
        times.append(current)
    return Signal.from_times(times)


# --------------------------------------------------------------------------- #
# Signal invariants
# --------------------------------------------------------------------------- #


@given(positive_times)
def test_signal_from_gaps_is_well_formed(gaps):
    signal = signal_from_gaps(gaps)
    times = signal.transition_times()
    assert times == sorted(times)
    values = [t.value for t in signal]
    for previous, current in zip([signal.initial_value] + values, values):
        assert previous != current


@given(positive_times)
def test_signal_double_inversion_is_identity(gaps):
    signal = signal_from_gaps(gaps)
    assert signal.inverted().inverted() == signal


@given(positive_times, st.floats(min_value=-10, max_value=1000))
def test_signal_value_at_matches_final_value_after_last_transition(gaps, probe):
    signal = signal_from_gaps(gaps)
    last = signal.stabilization_time()
    if probe >= last:
        assert signal.value_at(probe) == signal.final_value


@given(positive_times)
def test_pulse_count_is_half_of_transitions(gaps):
    signal = signal_from_gaps(gaps)
    pulses = signal.pulses()
    assert len(pulses) == len(signal) // 2


# --------------------------------------------------------------------------- #
# Cancellation resolvers
# --------------------------------------------------------------------------- #


@given(output_time_lists)
def test_record_sweep_equals_pairwise_reference(times):
    assert cancel_non_fifo(times) == cancel_non_fifo_reference(times)


@given(output_time_lists)
def test_record_survivors_are_strictly_increasing(times):
    cancelled = cancel_non_fifo(times)
    survivors = [t for t, c in zip(times, cancelled) if not c]
    assert survivors == sorted(survivors)
    assert len(set(survivors)) == len(survivors)


# --------------------------------------------------------------------------- #
# Involution property and derived quantities
# --------------------------------------------------------------------------- #


@given(exp_params)
@settings(max_examples=30, deadline=None)
def test_exp_pair_satisfies_involution_property(params):
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    assert pair.involution_residual() < 1e-6


@given(exp_params)
@settings(max_examples=30, deadline=None)
def test_exp_pair_delta_min_is_pure_delay(params):
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    assert math.isclose(pair.delta_min, t_p, rel_tol=1e-6)


@given(exp_params, st.floats(min_value=0.0, max_value=0.9))
@settings(max_examples=30, deadline=None)
def test_constraint_c_dimensioning_is_tight(params, fraction):
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    eta_plus = fraction * max_eta_plus(pair)
    supremum = max_eta_minus(pair, eta_plus)
    below = EtaBound(eta_plus, supremum * 0.999)
    assert constraint_C_margin(pair, below) > 0


# --------------------------------------------------------------------------- #
# Channel behaviour
# --------------------------------------------------------------------------- #


@given(exp_params, positive_times)
@settings(max_examples=40, deadline=None)
def test_involution_channel_output_is_well_formed(params, gaps):
    tau, t_p, v_th = params
    channel = InvolutionChannel(InvolutionPair.exp_channel(tau, t_p, v_th))
    out = channel(signal_from_gaps(gaps))
    times = out.transition_times()
    assert times == sorted(times)
    values = [t.value for t in out]
    for previous, current in zip([out.initial_value] + values, values):
        assert previous != current


@given(exp_params, positive_times)
@settings(max_examples=40, deadline=None)
def test_involution_channel_output_has_no_more_transitions_than_input(params, gaps):
    tau, t_p, v_th = params
    channel = InvolutionChannel(InvolutionPair.exp_channel(tau, t_p, v_th))
    signal = signal_from_gaps(gaps)
    out = channel(signal)
    assert len(out) <= len(signal)


@given(exp_params, positive_times)
@settings(max_examples=40, deadline=None)
def test_involution_channel_preserves_final_value_for_separated_inputs(params, gaps):
    # If all transitions are far apart (wider than delta_inf), nothing
    # cancels and the output has exactly the input's transition count.
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    channel = InvolutionChannel(pair)
    spacing = 2.0 * max(pair.delta_up_inf, pair.delta_down_inf)
    times = [spacing * (i + 1) for i in range(len(gaps))]
    signal = Signal.from_times(times)
    out = channel(signal)
    assert len(out) == len(signal)
    assert out.final_value == signal.final_value


@given(exp_params, positive_times, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_eta_channel_with_random_adversary_is_well_formed(params, gaps, seed):
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    eta_plus = 0.3 * max_eta_plus(pair)
    eta = EtaBound(eta_plus, max_eta_minus(pair, eta_plus) * 0.9)
    channel = EtaInvolutionChannel(pair, eta, RandomAdversary(seed=seed))
    out = channel(signal_from_gaps(gaps))
    times = out.transition_times()
    assert times == sorted(times)
    values = [t.value for t in out]
    for previous, current in zip([out.initial_value] + values, values):
        assert previous != current


@given(exp_params, positive_times)
@settings(max_examples=30, deadline=None)
def test_eta_channel_zero_adversary_equals_involution_channel(params, gaps):
    tau, t_p, v_th = params
    pair = InvolutionPair.exp_channel(tau, t_p, v_th)
    eta = EtaBound(0.05 * t_p, 0.05 * t_p)
    assume(constraint_C_margin(pair, eta) > 0)
    signal = signal_from_gaps(gaps)
    deterministic = InvolutionChannel(pair)(signal)
    eta_out = EtaInvolutionChannel(pair, eta, ZeroAdversary())(signal)
    assert deterministic == eta_out


@given(
    st.floats(min_value=0.1, max_value=5.0),
    st.floats(min_value=0.05, max_value=3.0),
    st.floats(min_value=0.01, max_value=20.0),
)
@settings(max_examples=50, deadline=None)
def test_single_pulse_cancellation_matches_lemma4_boundary(tau, t_p, width):
    # With eta = 0, a single input pulse is cancelled iff its width is at
    # most delta_up_inf - delta_min (Lemma 4 specialised to eta = 0).
    pair = InvolutionPair.exp_channel(tau, t_p)
    channel = InvolutionChannel(pair)
    out = channel(Signal.pulse(0.0, width))
    threshold = pair.delta_up_inf - pair.delta_min
    if width < threshold - 1e-9:
        assert out.is_zero()
    elif width > threshold + 1e-9:
        assert len(out) == 2
