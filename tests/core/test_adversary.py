"""Unit tests for eta bounds and adversary strategies."""

import math

import pytest

from repro.core import (
    BestCaseAdversary,
    DeCancelAdversary,
    EtaBound,
    RandomAdversary,
    SequenceAdversary,
    SineAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
)


class TestEtaBound:
    def test_basic_properties(self):
        bound = EtaBound(0.1, 0.2)
        assert bound.eta_plus == 0.1
        assert bound.eta_minus == 0.2
        assert bound.width == pytest.approx(0.3)

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            EtaBound(-0.1, 0.0)
        with pytest.raises(ValueError):
            EtaBound(0.0, -0.1)

    def test_zero_and_symmetric(self):
        assert EtaBound.zero().width == 0.0
        sym = EtaBound.symmetric(0.25)
        assert sym.eta_plus == sym.eta_minus == 0.25

    def test_contains(self):
        bound = EtaBound(0.1, 0.2)
        assert bound.contains(0.1)
        assert bound.contains(-0.2)
        assert bound.contains(0.0)
        assert not bound.contains(0.11)
        assert not bound.contains(-0.21)

    def test_clip(self):
        bound = EtaBound(0.1, 0.2)
        assert bound.clip(0.5) == 0.1
        assert bound.clip(-0.5) == -0.2
        assert bound.clip(0.05) == 0.05

    def test_equality(self):
        assert EtaBound(0.1, 0.2) == EtaBound(0.1, 0.2)
        assert EtaBound(0.1, 0.2) != EtaBound(0.2, 0.1)


class TestDeterministicAdversaries:
    BOUND = EtaBound(0.1, 0.2)

    def test_zero(self):
        assert ZeroAdversary().choose(0, 0.0, True, 0.0, self.BOUND) == 0.0

    def test_worst_case(self):
        adversary = WorstCaseAdversary()
        assert adversary.choose(0, 0.0, True, 0.0, self.BOUND) == 0.1
        assert adversary.choose(1, 0.0, False, 0.0, self.BOUND) == -0.2

    def test_best_case(self):
        adversary = BestCaseAdversary()
        assert adversary.choose(0, 0.0, True, 0.0, self.BOUND) == -0.2
        assert adversary.choose(1, 0.0, False, 0.0, self.BOUND) == 0.1

    def test_decancel(self):
        adversary = DeCancelAdversary()
        assert adversary.choose(0, 0.0, True, 0.0, self.BOUND) == -0.2
        assert adversary.choose(1, 0.0, False, 0.0, self.BOUND) == 0.1

    def test_sequence_helper(self):
        seq = WorstCaseAdversary().sequence(4, self.BOUND)
        assert seq == [0.1, -0.2, 0.1, -0.2]


class TestSequenceAdversary:
    BOUND = EtaBound(0.1, 0.2)

    def test_replay(self):
        adversary = SequenceAdversary([0.05, -0.1])
        assert adversary.choose(0, 0.0, True, 0.0, self.BOUND) == 0.05
        assert adversary.choose(1, 0.0, False, 0.0, self.BOUND) == -0.1

    def test_fill_value(self):
        adversary = SequenceAdversary([0.05], fill=0.01)
        assert adversary.choose(5, 0.0, True, 0.0, self.BOUND) == 0.01

    def test_inadmissible_raises(self):
        adversary = SequenceAdversary([0.5])
        with pytest.raises(ValueError):
            adversary.choose(0, 0.0, True, 0.0, self.BOUND)

    def test_clipping_mode(self):
        adversary = SequenceAdversary([0.5], clip=True)
        assert adversary.choose(0, 0.0, True, 0.0, self.BOUND) == 0.1


class TestRandomAdversary:
    BOUND = EtaBound(0.1, 0.2)

    def test_uniform_within_bounds(self):
        adversary = RandomAdversary(seed=1)
        for i in range(200):
            eta = adversary.choose(i, 0.0, bool(i % 2), 0.0, self.BOUND)
            assert self.BOUND.contains(eta)

    def test_gaussian_within_bounds(self):
        adversary = RandomAdversary(seed=2, distribution="gaussian")
        for i in range(200):
            eta = adversary.choose(i, 0.0, True, 0.0, self.BOUND)
            assert self.BOUND.contains(eta)

    def test_reset_reproduces_sequence(self):
        adversary = RandomAdversary(seed=3)
        first = [adversary.choose(i, 0.0, True, 0.0, self.BOUND) for i in range(5)]
        adversary.reset()
        second = [adversary.choose(i, 0.0, True, 0.0, self.BOUND) for i in range(5)]
        assert first == second

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            RandomAdversary(distribution="poisson")

    def test_zero_width_gaussian(self):
        adversary = RandomAdversary(seed=4, distribution="gaussian")
        assert adversary.choose(0, 0.0, True, 0.0, EtaBound.zero()) == 0.0


class TestSineAdversary:
    BOUND = EtaBound(0.1, 0.2)

    def test_within_bounds_over_a_period(self):
        adversary = SineAdversary(period=10.0)
        for k in range(50):
            eta = adversary.choose(k, k * 0.37, True, 0.0, self.BOUND)
            assert self.BOUND.contains(eta)

    def test_phase_shifts_pattern(self):
        a = SineAdversary(period=10.0, phase=0.0)
        b = SineAdversary(period=10.0, phase=math.pi)
        eta_a = a.choose(0, 2.5, True, 0.0, self.BOUND)
        eta_b = b.choose(0, 2.5, True, 0.0, self.BOUND)
        assert eta_a == pytest.approx(-eta_b * (self.BOUND.eta_plus / self.BOUND.eta_minus), rel=1e-6) or eta_a != eta_b

    def test_amplitude_fraction(self):
        adversary = SineAdversary(period=4.0, amplitude_fraction=0.5)
        eta = adversary.choose(0, 1.0, True, 0.0, self.BOUND)  # sin = 1 at t=1, period 4
        assert eta == pytest.approx(0.05)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SineAdversary(period=0.0)
        with pytest.raises(ValueError):
            SineAdversary(period=1.0, amplitude_fraction=2.0)
