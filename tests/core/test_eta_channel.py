"""Unit tests for the eta-involution channel (Fig. 3/4 behaviour)."""

import math

import pytest

from repro.core import (
    BestCaseAdversary,
    DeCancelAdversary,
    EtaBound,
    EtaInvolutionChannel,
    InvolutionPair,
    RandomAdversary,
    SequenceAdversary,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
)


class TestZeroAdversaryEquivalence:
    def test_matches_deterministic_channel(self, exp_pair, eta_small, involution_channel):
        channel = EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        for width in (0.3, 1.0, 2.0, 5.0):
            signal = Signal.pulse(0.0, width)
            assert channel(signal) == involution_channel(signal)

    def test_zero_bound_any_adversary_is_deterministic(self, exp_pair, involution_channel):
        channel = EtaInvolutionChannel(exp_pair, EtaBound.zero(), WorstCaseAdversary())
        signal = Signal.pulse(0.0, 2.0)
        assert channel(signal) == involution_channel(signal)


class TestShiftEffects:
    def test_worst_case_delays_rising_and_hastens_falling(
        self, exp_pair, eta_small, involution_channel, eta_channel_worst
    ):
        signal = Signal.pulse(0.0, 5.0)
        deterministic = involution_channel(signal)
        shifted = eta_channel_worst(signal)
        assert shifted[0].time == pytest.approx(
            deterministic[0].time + eta_small.eta_plus
        )
        # The falling transition is eta_minus earlier, but its T also changed
        # because the rising transition moved; only the direction is fixed.
        assert shifted[1].time < deterministic[1].time

    def test_best_case_extends_pulses(self, exp_pair, eta_small, involution_channel):
        channel = EtaInvolutionChannel(exp_pair, eta_small, BestCaseAdversary())
        signal = Signal.pulse(0.0, 2.0)
        deterministic = involution_channel(signal)
        extended = channel(signal)
        det_width = deterministic[1].time - deterministic[0].time
        ext_width = extended[1].time - extended[0].time
        assert ext_width > det_width

    def test_decancel_adversary_rescues_pulse(self, exp_pair):
        # Choose a pulse width that the deterministic channel cancels but
        # that admissible shifts can rescue (Fig. 4, out2).
        eta = EtaBound(0.2, 0.2)
        deterministic = EtaInvolutionChannel(exp_pair, eta, ZeroAdversary())
        decancel = EtaInvolutionChannel(exp_pair, eta, DeCancelAdversary())
        width = exp_pair.delta_up_inf - exp_pair.delta_min - 0.05
        signal = Signal.pulse(0.0, width)
        assert deterministic(signal).is_zero()
        assert len(decancel(signal)) == 2

    def test_adversary_can_cancel_otherwise_surviving_pulse(self, exp_pair):
        eta = EtaBound(0.2, 0.2)
        worst = EtaInvolutionChannel(exp_pair, eta, WorstCaseAdversary())
        zero = EtaInvolutionChannel(exp_pair, eta, ZeroAdversary())
        width = exp_pair.delta_up_inf - exp_pair.delta_min + 0.05
        signal = Signal.pulse(0.0, width)
        assert len(zero(signal)) == 2
        assert worst(signal).is_zero()


class TestAdmissibleParameters:
    def test_apply_with_choices(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(exp_pair, eta_small)
        signal = Signal.pulse(0.0, 5.0)
        out = channel.apply_with_choices(signal, [eta_small.eta_plus, -eta_small.eta_minus])
        worst = channel.with_adversary(WorstCaseAdversary())(signal)
        assert out == worst

    def test_inadmissible_choice_rejected(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(exp_pair, eta_small)
        with pytest.raises(ValueError):
            channel.apply_with_choices(Signal.pulse(0.0, 5.0), [10.0 * (1 + eta_small.eta_plus)])

    def test_adversary_outside_bound_rejected(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(
            exp_pair, eta_small, SequenceAdversary([eta_small.eta_plus + 1.0])
        )
        with pytest.raises(ValueError):
            channel(Signal.pulse(0.0, 5.0))

    def test_last_eta_choices_recorded(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        channel(Signal.pulse(0.0, 5.0))
        assert channel.last_eta_choices == [eta_small.eta_plus, -eta_small.eta_minus]

    def test_deterministic_output_helper(self, exp_pair, eta_small, involution_channel):
        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        signal = Signal.pulse(0.0, 3.0)
        assert channel.deterministic_output(signal) == involution_channel(signal)

    def test_pending_with_etas(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(exp_pair, eta_small, WorstCaseAdversary())
        pending = channel.pending_with_etas(Signal.pulse(0.0, 3.0))
        assert [p.eta for p in pending] == [eta_small.eta_plus, -eta_small.eta_minus]


class TestRandomAdversary:
    def test_output_bracketed_by_extremes(self, exp_pair, eta_small):
        signal = Signal.pulse(0.0, 5.0)
        random_channel = EtaInvolutionChannel(
            exp_pair, eta_small, RandomAdversary(seed=123)
        )
        out = random_channel(signal)
        deterministic = EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())(signal)
        # Every output transition lies within eta of *some* admissible
        # behaviour; a simple sanity check is that the first transition is
        # within [det - eta_minus, det + eta_plus].
        assert (
            deterministic[0].time - eta_small.eta_minus - 1e-12
            <= out[0].time
            <= deterministic[0].time + eta_small.eta_plus + 1e-12
        )

    def test_seeded_random_is_reproducible(self, exp_pair, eta_small):
        signal = Signal.pulse_train(0.0, [1.0, 1.0, 1.0], [1.0, 1.0])
        a = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=9))(signal)
        b = EtaInvolutionChannel(exp_pair, eta_small, RandomAdversary(seed=9))(signal)
        assert a == b


class TestMisc:
    def test_exp_channel_constructor(self, eta_small):
        channel = EtaInvolutionChannel.exp_channel(1.0, 0.5, eta_small)
        assert channel.delta_min == pytest.approx(0.5)

    def test_constraint_check(self, exp_pair, eta_small):
        good = EtaInvolutionChannel(exp_pair, eta_small)
        bad = EtaInvolutionChannel(exp_pair, EtaBound(0.4, 0.4))
        assert good.satisfies_constraint_C()
        assert not bad.satisfies_constraint_C()

    def test_domain_guard_produces_cancellation(self, exp_pair, eta_small):
        channel = EtaInvolutionChannel(exp_pair, eta_small, ZeroAdversary())
        signal = Signal.from_times([0.0, 100.0, 100.0 + 1e-9])
        out = channel(signal)
        assert out.final_value == 1
        assert len(out) == 1

    def test_zero_signal_maps_to_zero(self, eta_channel_worst):
        assert eta_channel_worst(Signal.zero()).is_zero()

    def test_repr(self, eta_channel_worst):
        assert "EtaInvolutionChannel" in repr(eta_channel_worst)
