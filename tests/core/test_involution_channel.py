"""Unit tests for the deterministic involution channel (Fig. 2 behaviour)."""

import math

import pytest

from repro.core import InvolutionChannel, InvolutionPair, Signal


class TestSinglePulse:
    def test_first_transition_delayed_by_delta_inf(self, involution_channel):
        out = involution_channel(Signal.step(0.0))
        assert len(out) == 1
        assert out[0].time == pytest.approx(involution_channel.delta_up_inf)

    def test_long_pulse_propagates(self, involution_channel):
        out = involution_channel(Signal.pulse(0.0, 5.0))
        assert len(out) == 2
        assert out[0].value == 1 and out[1].value == 0
        assert out[0].time == pytest.approx(involution_channel.delta_up_inf)

    def test_long_pulse_width_approximately_preserved(self, involution_channel):
        out = involution_channel(Signal.pulse(0.0, 20.0))
        width = out[1].time - out[0].time
        assert width == pytest.approx(20.0, abs=1e-6)

    def test_short_pulse_cancelled(self, involution_channel):
        out = involution_channel(Signal.pulse(0.0, 0.1))
        assert out.is_zero()

    def test_cancellation_threshold_matches_theory(self, exp_pair):
        # A single pulse of width Delta_0 is cancelled iff
        # Delta_0 <= delta_up_inf - delta_min (Lemma 4 with eta = 0).
        channel = InvolutionChannel(exp_pair)
        threshold = exp_pair.delta_up_inf - exp_pair.delta_min
        cancelled = channel(Signal.pulse(0.0, threshold - 1e-6))
        passed = channel(Signal.pulse(0.0, threshold + 1e-3))
        assert cancelled.is_zero()
        assert len(passed) == 2

    def test_pulse_attenuation_is_monotone(self, involution_channel):
        # Wider input pulses produce wider (or equal) output pulses.
        widths = [0.75, 0.9, 1.2, 2.0, 4.0]
        outputs = [involution_channel(Signal.pulse(0.0, w)) for w in widths]
        out_widths = [o[1].time - o[0].time for o in outputs]
        assert all(b > a for a, b in zip(out_widths, out_widths[1:]))

    def test_output_pulse_shorter_than_input_pulse(self, involution_channel):
        out = involution_channel(Signal.pulse(0.0, 1.0))
        assert (out[1].time - out[0].time) < 1.0

    def test_zero_signal_maps_to_zero(self, involution_channel):
        assert involution_channel(Signal.zero()).is_zero()

    def test_constant_one_maps_to_constant_one(self, involution_channel):
        assert involution_channel(Signal.one()) == Signal.one()


class TestPulseTrains:
    def test_fig2_attenuation_and_cancellation(self, involution_channel):
        # Two pulses: a wide one that survives (attenuated) and a narrow one
        # that is cancelled -- the scenario of Fig. 2.
        signal = Signal.pulse_train(0.0, [2.0, 0.4], [2.0])
        out = involution_channel(signal)
        pulses = out.pulses()
        assert len(pulses) == 1
        assert pulses[0].length < 2.0

    def test_glitch_train_partial_suppression(self, involution_channel):
        signal = Signal.pulse_train(0.0, [0.5] * 6, [0.5] * 5)
        out = involution_channel(signal)
        assert len(out.pulses()) < 6

    def test_inverting_channel(self, exp_pair):
        channel = InvolutionChannel(exp_pair, inverting=True)
        out = channel(Signal.pulse(0.0, 5.0))
        assert out.initial_value == 1
        assert [t.value for t in out] == [0, 1]

    def test_reference_cancellation_mode_agrees(self, involution_channel):
        signal = Signal.pulse_train(0.0, [2.0, 0.4, 1.5], [2.0, 1.0])
        transport = involution_channel.apply(signal, mode="transport")
        pairwise = involution_channel.apply(signal, mode="pairwise")
        probes = [0.5 * k for k in range(0, 30)]
        assert transport.values_at(probes) == pairwise.values_at(probes)


class TestChannelProperties:
    def test_delta_min_exposed(self, involution_channel):
        assert involution_channel.delta_min == pytest.approx(0.5)

    def test_exp_channel_constructor(self):
        channel = InvolutionChannel.exp_channel(2.0, 1.0)
        assert channel.delta_min == pytest.approx(1.0)
        assert channel.delta_up_inf == pytest.approx(1.0 + 2.0 * math.log(2.0))

    def test_domain_guard_cancels_extreme_glitch(self, exp_pair):
        channel = InvolutionChannel(exp_pair, guard_domain=True)
        # A glitch so short after a long stable phase that T leaves the
        # domain of the delay function: the transition pair must cancel.
        signal = Signal.from_times([0.0, 100.0, 100.0 + 1e-9])
        out = channel(signal)
        # The long rise survives; the glitch does not add transitions.
        assert out.final_value == 1
        assert len(out) == 1

    def test_repr(self, involution_channel):
        assert "InvolutionChannel" in repr(involution_channel)

    def test_output_times_strictly_increasing(self, involution_channel):
        signal = Signal.pulse_train(0.0, [1.0, 0.8, 1.2, 0.6], [0.7, 0.9, 0.5])
        out = involution_channel(signal)
        times = out.transition_times()
        assert times == sorted(times)
        assert len(set(times)) == len(times)
