"""Unit tests for constraint (C) helpers."""

import pytest

from repro.core import (
    EtaBound,
    InvolutionPair,
    admissible_eta_bound,
    constraint_C_margin,
    max_eta_minus,
    max_symmetric_eta,
    satisfies_constraint_C,
)
from repro.core.constraint import max_eta_plus


class TestConstraintC:
    def test_zero_noise_always_satisfies(self, exp_pair):
        assert satisfies_constraint_C(exp_pair, EtaBound.zero())

    def test_margin_formula(self, exp_pair):
        eta = EtaBound(0.05, 0.1)
        expected = exp_pair.delta_down(-0.05) - exp_pair.delta_min - 0.15
        assert constraint_C_margin(exp_pair, eta) == pytest.approx(expected)

    def test_large_noise_violates(self, exp_pair):
        assert not satisfies_constraint_C(exp_pair, EtaBound(0.5, 0.5))

    def test_margin_monotone_in_eta_minus(self, exp_pair):
        margins = [
            constraint_C_margin(exp_pair, EtaBound(0.05, m)) for m in (0.0, 0.1, 0.2, 0.3)
        ]
        assert all(b < a for a, b in zip(margins, margins[1:]))

    def test_eta_plus_out_of_domain_gives_minus_inf(self, exp_pair):
        eta = EtaBound(10.0 * exp_pair.delta_down_inf, 0.0)
        assert constraint_C_margin(exp_pair, eta) == float("-inf")


class TestDimensioning:
    def test_max_eta_minus_is_supremum(self, exp_pair):
        supremum = max_eta_minus(exp_pair, 0.05)
        just_below = EtaBound(0.05, supremum * (1 - 1e-9))
        at_supremum = EtaBound(0.05, supremum)
        assert satisfies_constraint_C(exp_pair, just_below)
        assert not satisfies_constraint_C(exp_pair, at_supremum)

    def test_max_eta_minus_matches_paper_formula(self, exp_pair):
        # eta_minus = delta_down(-eta_plus) - delta_min - eta_plus.
        eta_plus = 0.08
        expected = exp_pair.delta_down(-eta_plus) - exp_pair.delta_min - eta_plus
        assert max_eta_minus(exp_pair, eta_plus) == pytest.approx(expected)

    def test_max_eta_minus_rejects_huge_eta_plus(self, exp_pair):
        with pytest.raises(ValueError):
            max_eta_minus(exp_pair, 2.0)

    def test_max_eta_plus_below_delta_min(self, exp_pair):
        # The paper notes constraint (C) implies eta_plus < delta_min.
        supremum = max_eta_plus(exp_pair)
        assert 0.0 < supremum < exp_pair.delta_min
        assert satisfies_constraint_C(exp_pair, EtaBound(supremum * 0.999, 0.0))
        assert not satisfies_constraint_C(exp_pair, EtaBound(supremum * 1.001, 0.0))

    def test_max_symmetric_eta(self, exp_pair):
        supremum = max_symmetric_eta(exp_pair)
        assert supremum > 0
        assert satisfies_constraint_C(exp_pair, EtaBound.symmetric(supremum * 0.999))
        assert not satisfies_constraint_C(exp_pair, EtaBound.symmetric(supremum * 1.001))

    def test_admissible_eta_bound_default(self, exp_pair):
        bound = admissible_eta_bound(exp_pair, 0.05)
        assert satisfies_constraint_C(exp_pair, bound)
        assert bound.eta_plus == 0.05
        assert bound.eta_minus < max_eta_minus(exp_pair, 0.05)

    def test_admissible_eta_bound_explicit_minus(self, exp_pair):
        bound = admissible_eta_bound(exp_pair, 0.05, eta_minus=0.1)
        assert bound.eta_minus == 0.1

    def test_admissible_eta_bound_rejects_violation(self, exp_pair):
        with pytest.raises(ValueError):
            admissible_eta_bound(exp_pair, 0.05, eta_minus=1.0)

    def test_negative_eta_plus_rejected(self, exp_pair):
        with pytest.raises(ValueError):
            max_eta_minus(exp_pair, -0.1)

    def test_asymmetric_channel_dimensioning(self, asymmetric_pair):
        bound = admissible_eta_bound(asymmetric_pair, 0.03)
        assert satisfies_constraint_C(asymmetric_pair, bound)
