"""Unit tests for involution delay pairs."""

import math

import pytest

from repro.core import ConstantDelay, ExpDelay, InvolutionError, InvolutionPair, exp_channel_pair


class TestExpChannelPair:
    def test_delta_min_equals_pure_delay(self, exp_pair):
        # Lemma 1: for exp-channels delta_min = T_p.
        assert exp_pair.delta_min == pytest.approx(0.5, rel=1e-9)

    def test_delta_min_positive_for_asymmetric(self, asymmetric_pair):
        assert asymmetric_pair.delta_min == pytest.approx(0.4, rel=1e-6)

    def test_involution_property_holds(self, exp_pair):
        assert exp_pair.satisfies_involution()
        assert exp_pair.involution_residual() < 1e-8

    def test_limits(self, exp_pair):
        assert exp_pair.delta_up_inf == pytest.approx(0.5 + math.log(2.0))
        assert exp_pair.delta_down_inf == pytest.approx(0.5 + math.log(2.0))

    def test_asymmetric_limits_differ(self, asymmetric_pair):
        assert asymmetric_pair.delta_up_inf != pytest.approx(asymmetric_pair.delta_down_inf)

    def test_derivative_identity_at_delta_min(self, exp_pair):
        # Lemma 1: delta_up'(-delta_min) = 1 / delta_down'(-delta_min).
        d = exp_pair.delta_min
        assert exp_pair.derivative_up(-d) == pytest.approx(
            1.0 / exp_pair.derivative_down(-d), rel=1e-6
        )

    def test_exp_channel_pair_helper(self):
        pair = exp_channel_pair(2.0, 1.0)
        assert pair.delta_min == pytest.approx(1.0, rel=1e-9)

    def test_describe(self, exp_pair):
        assert "delta_min" in exp_pair.describe()


class TestConstruction:
    def test_from_up_completes_pair(self):
        up = ExpDelay(1.0, 0.5, 0.5, rising=True)
        pair = InvolutionPair.from_up(up)
        reference = InvolutionPair.exp_channel(1.0, 0.5)
        for T in (-0.4, 0.0, 1.0, 3.0):
            assert pair.delta_down(T) == pytest.approx(reference.delta_down(T), abs=1e-6)
        assert pair.delta_min == pytest.approx(0.5, abs=1e-6)

    def test_from_down_completes_pair(self):
        down = ExpDelay(1.0, 0.5, 0.6, rising=False)
        pair = InvolutionPair.from_down(down)
        reference = InvolutionPair.exp_channel(1.0, 0.5, 0.6)
        for T in (0.0, 1.0):
            assert pair.delta_up(T) == pytest.approx(reference.delta_up(T), abs=1e-6)

    def test_from_samples(self):
        base = InvolutionPair.exp_channel(1.0, 0.5)
        import numpy as np

        T = np.linspace(-0.45, 5.0, 30)
        pair = InvolutionPair.from_samples(
            T, [base.delta_up(t) for t in T], T, [base.delta_down(t) for t in T]
        )
        assert pair.delta_min == pytest.approx(0.5, abs=0.05)

    def test_from_up_rejects_unbounded_domain(self):
        with pytest.raises(InvolutionError):
            InvolutionPair.from_up(ConstantDelay(1.0))

    def test_swapped(self, asymmetric_pair):
        swapped = asymmetric_pair.swapped()
        assert swapped.delta_up(1.0) == asymmetric_pair.delta_down(1.0)
        assert swapped.delta_down(1.0) == asymmetric_pair.delta_up(1.0)
        assert swapped.delta_min == pytest.approx(asymmetric_pair.delta_min, rel=1e-6)


class TestValidation:
    def test_non_involution_pair_rejected(self):
        up = ExpDelay(1.0, 0.5, 0.5, rising=True)
        wrong_down = ExpDelay(2.0, 0.9, 0.5, rising=False)
        with pytest.raises(InvolutionError):
            InvolutionPair(up, wrong_down)

    def test_non_strictly_causal_rejected(self):
        # Shift the delay down so delta(0) <= 0.
        from repro.core import ShiftedDelay

        up = ShiftedDelay(ExpDelay(1.0, 0.5), shift_delta=-2.0)
        down = ShiftedDelay(ExpDelay(1.0, 0.5), shift_delta=-2.0)
        with pytest.raises(InvolutionError):
            InvolutionPair(up, down)

    def test_validation_can_be_disabled(self):
        up = ExpDelay(1.0, 0.5, 0.5, rising=True)
        wrong_down = ExpDelay(2.0, 0.9, 0.5, rising=False)
        pair = InvolutionPair(up, wrong_down, validate=False)
        assert pair.involution_residual() > 1e-3

    def test_constant_delay_rejected_as_involution(self):
        # Pure delays have no finite saturation/pole structure; the validator
        # must not accept them as involution pairs.
        with pytest.raises(InvolutionError):
            InvolutionPair(ConstantDelay(1.0), ConstantDelay(1.0))

    def test_delta_min_mismatch_detected(self):
        up = ExpDelay(1.0, 0.5, 0.5, rising=True)
        wrong_down = ExpDelay(1.0, 2.5, 0.5, rising=False)
        pair = InvolutionPair(up, wrong_down, validate=False)
        with pytest.raises(InvolutionError):
            _ = pair.delta_min
