"""Unit tests for the non-faithful baseline channels."""

import pytest

from repro.core import (
    DegradationDelayChannel,
    InertialDelayChannel,
    PureDelayChannel,
    Signal,
    remove_short_pulses,
)


class TestRemoveShortPulses:
    def test_removes_single_short_pulse(self):
        signal = Signal.pulse(1.0, 0.2)
        assert remove_short_pulses(signal, 0.5).is_zero()

    def test_keeps_long_pulse(self):
        signal = Signal.pulse(1.0, 2.0)
        assert remove_short_pulses(signal, 0.5) == signal

    def test_cascading_removal_merges_train(self):
        # A train of short pulses separated by short gaps collapses entirely.
        signal = Signal.pulse_train(0.0, [0.2] * 5, [0.2] * 4)
        assert remove_short_pulses(signal, 0.3).is_zero()

    def test_mixed_train(self):
        signal = Signal.pulse_train(0.0, [2.0, 0.1, 2.0], [1.0, 1.0])
        filtered = remove_short_pulses(signal, 0.5)
        assert len(filtered.pulses()) == 2


class TestPureDelayChannel:
    def test_shifts_all_transitions(self):
        channel = PureDelayChannel(1.5)
        out = channel(Signal.pulse(1.0, 2.0))
        assert out.transition_times() == [2.5, 4.5]

    def test_propagates_arbitrarily_short_pulses(self):
        channel = PureDelayChannel(1.5)
        out = channel(Signal.pulse(1.0, 1e-6))
        assert len(out) == 2

    def test_asymmetric_delays_can_cancel(self):
        channel = PureDelayChannel(1.0, falling_delay=0.2)
        out = channel(Signal.pulse(0.0, 0.5))
        # Rising scheduled at 1.0, falling at 0.7 -> non-FIFO -> pulse vanishes.
        assert out.is_zero()

    def test_inverting(self):
        channel = PureDelayChannel(1.0, inverting=True)
        out = channel(Signal.step(0.0))
        assert out.initial_value == 1
        assert out[0].value == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PureDelayChannel(-1.0)


class TestInertialDelayChannel:
    def test_filters_short_pulse(self):
        channel = InertialDelayChannel(delay=1.0, window=0.5)
        assert channel(Signal.pulse(0.0, 0.4)).is_zero()

    def test_passes_long_pulse(self):
        channel = InertialDelayChannel(delay=1.0, window=0.5)
        out = channel(Signal.pulse(0.0, 2.0))
        assert out.transition_times() == [1.0, 3.0]

    def test_solves_bounded_spf_in_one_stage(self):
        # The root of non-faithfulness: every pulse below the window is
        # filtered immediately, every pulse above propagates -- a perfect
        # bounded-time short-pulse filter.
        channel = InertialDelayChannel(delay=1.0, window=0.5)
        for width in (0.01, 0.1, 0.49):
            assert channel(Signal.pulse(0.0, width)).is_zero()
        for width in (0.51, 1.0, 10.0):
            assert len(channel(Signal.pulse(0.0, width))) == 2

    def test_rejection_window_exposed(self):
        assert InertialDelayChannel(1.0, 0.5).rejection_window() == 0.5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            InertialDelayChannel(-1.0, 0.5)
        with pytest.raises(ValueError):
            InertialDelayChannel(1.0, -0.5)


class TestDegradationDelayChannel:
    def test_isolated_transition_gets_nominal_delay(self):
        channel = DegradationDelayChannel(delta_nominal=1.0, tau_deg=0.5)
        out = channel(Signal.step(2.0))
        assert out[0].time == pytest.approx(3.0)

    def test_closely_spaced_transitions_are_degraded(self):
        channel = DegradationDelayChannel(delta_nominal=1.0, tau_deg=0.5)
        out = channel(Signal.pulse(0.0, 0.3))
        if len(out) == 2:
            width = out[1].time - out[0].time
            assert width < 0.3
        else:
            assert out.is_zero()

    def test_glitch_train_attenuates_gradually(self):
        channel = DegradationDelayChannel(delta_nominal=1.0, tau_deg=1.0)
        train = Signal.pulse_train(0.0, [0.5] * 6, [0.5] * 5)
        out = channel(train)
        assert len(out.pulses()) < 6

    def test_delay_bounded_by_nominal(self):
        channel = DegradationDelayChannel(delta_nominal=1.0, tau_deg=0.5, T0=0.1)
        for T in (-5.0, 0.0, 0.05, 0.2, 1.0, 100.0):
            delay = channel.delay_for(T, True, 0, 0.0)
            assert 0.0 <= delay <= 1.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DegradationDelayChannel(0.0, 1.0)
        with pytest.raises(ValueError):
            DegradationDelayChannel(1.0, 0.0)
