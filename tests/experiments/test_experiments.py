"""Smoke and shape tests for the experiment drivers (small configurations).

The full-size experiments run in ``benchmarks/``; here we only check that
the drivers work end to end and that the qualitative shapes match the
paper (monotonicities, coverage orderings, regime consistency).
"""

import numpy as np
import pytest

from repro.core import InvolutionPair
from repro.experiments import (
    default_adversaries,
    format_table,
    format_value,
    run_fig7,
    run_fig8,
    run_fig9,
    run_lemma5_sweep,
    run_model_comparison,
    run_scaling,
    run_theorem9,
)


@pytest.fixture(scope="module")
def pair() -> InvolutionPair:
    return InvolutionPair.exp_channel(1.0, 0.5)


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value([1, 2]) == "[1, 2]"

    def test_format_value_scientific_for_extreme_magnitudes(self):
        # Large/small magnitudes deliberately use scientific notation so
        # mixed-magnitude columns stay scannable.
        assert format_value(0.000123456) == "1.235e-04"
        assert format_value(123456.789) == "1.235e+05"
        assert format_value(-123456.789) == "-1.235e+05"
        assert format_value(1e-9) == "1.000e-09"

    def test_format_value_boundaries(self):
        # Exactly 1e5 and anything below 1e-3 switch to scientific; the
        # half-open band [1e-3, 1e5) keeps the general format.
        assert format_value(1e5) == "1.000e+05"
        assert format_value(99999.0, precision=5) == "99999"
        assert format_value(1e-3) == "0.001"
        assert format_value(0.00099999) == "1.000e-03"
        assert format_value(1.0) == "1"
        assert format_value(0.0) == "0"

    def test_format_value_precision(self):
        assert format_value(0.000123456, precision=2) == "1.2e-04"
        assert format_value(123456.789, precision=6) == "1.23457e+05"

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, title="T")
        assert text.splitlines()[0] == "T"
        assert "a" in text and "b" in text

    def test_format_empty_table(self):
        assert "(no rows)" in format_table([])


class TestFig7:
    def test_delay_ordering_with_vdd(self):
        result = run_fig7(vdd_levels=(0.6, 1.0), n_widths=10, stages=2, stage_index=1)
        assert result.is_monotone_in_vdd()
        delays = result.saturation_delays()
        assert delays[0.6] > delays[1.0]

    def test_curves_are_concave_increasing(self):
        result = run_fig7(vdd_levels=(1.0,), n_widths=12, stages=2, stage_index=1)
        curve = result.curves[1.0]
        assert len(curve.T) >= 6
        # Increasing in T (up to digitisation wiggle).
        coarse = np.interp(np.linspace(curve.T[0], curve.T[-1], 6), curve.T, curve.delta)
        assert all(b >= a - 0.05 for a, b in zip(coarse, coarse[1:]))

    def test_rows_structure(self):
        result = run_fig7(vdd_levels=(1.0,), n_widths=8, stages=2, stage_index=1)
        rows = result.rows()
        assert rows[0]["vdd"] == 1.0
        assert rows[0]["n_samples"] > 0


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # Three stages so the characterised stage sees realistic input slew,
        # and a dense-enough width sweep that the reference delta_min is not
        # overestimated; the band asymmetry (large eta_minus, small eta_plus)
        # then matches the paper's dimensioning and the Fig. 8 coverage
        # pattern.
        return run_fig8(stages=3, stage_index=1, n_widths=16, seed=1)

    def test_all_scenarios_present(self, result):
        assert set(result.scenarios) == {"supply_1pct", "width_plus10", "width_minus10"}

    def test_small_variations_covered_at_small_T(self, result):
        supply = result.scenarios["supply_1pct"].summary
        assert supply["coverage_small_T"] >= 0.9

    def test_narrow_transistors_exceed_band_at_large_T(self, result):
        narrow = result.scenarios["width_minus10"].summary
        assert narrow["coverage_all"] < 1.0

    def test_wider_covered_better_than_narrower(self, result):
        wide = result.scenarios["width_plus10"].summary
        narrow = result.scenarios["width_minus10"].summary
        assert wide["coverage_all"] >= narrow["coverage_all"]

    def test_rows(self, result):
        rows = result.rows()
        assert len(rows) == 3
        assert all("coverage_all" in row for row in rows)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_fig8(scenarios=("bogus",), stages=2, n_widths=6)


class TestFig9:
    def test_exp_fit_reasonable(self):
        result = run_fig9(stages=2, stage_index=1, n_widths=12)
        assert result.fit.tau > 0
        assert result.fit.t_p > 0
        assert 0.0 < result.fit.v_th < 1.0
        # Deviations of the fitted exp-channel stay small near T = 0
        # ("only minor mispredictions near T = 0").
        assert result.summary["coverage_small_T"] >= 0.8
        assert result.rows()[0]["tau"] == result.fit.tau


class TestTheorem9:
    def test_all_observations_consistent(self, pair):
        result = run_theorem9(
            pair,
            pulse_lengths=np.linspace(0.2, 1.4, 7),
            adversaries=default_adversaries(),
            end_time=250.0,
        )
        assert result.all_consistent
        assert len(result.rows()) == 7 * 4

    def test_regime_fractions(self, pair):
        result = run_theorem9(pair, end_time=250.0)
        regimes = {obs.regime for obs in result.observations}
        assert {"cancelled", "marginal", "latched"} <= regimes

    def test_lemma5_sweep_monotonicities(self, pair):
        rows = run_lemma5_sweep(pair, [0.0, 0.02, 0.05, 0.1])
        taus = [row["tau"] for row in rows]
        gammas = [row["gamma"] for row in rows]
        assert all(b > a for a, b in zip(taus, taus[1:]))
        assert all(g < 1.0 for g in gammas)
        assert all(row["Delta"] < row["delta_min"] for row in rows)

    def test_accepts_pair_and_adversary_specs(self, pair):
        """Drivers accept declarative spec dicts in place of live objects."""
        lengths = np.linspace(0.3, 1.3, 3)
        from_objects = run_theorem9(
            pair,
            pulse_lengths=lengths,
            adversaries={"zero": default_adversaries()["zero"]},
            end_time=150.0,
        )
        from_specs = run_theorem9(
            {"kind": "exp", "tau": 1.0, "t_p": 0.5, "v_th": 0.5},
            pulse_lengths=lengths,
            adversaries={"zero": {"kind": "zero"}},
            end_time=150.0,
        )
        assert from_objects.rows() == from_specs.rows()
        spec_rows = run_lemma5_sweep(
            {"kind": "exp", "tau": 1.0, "t_p": 0.5}, [0.02, 0.05]
        )
        assert spec_rows == run_lemma5_sweep(pair, [0.02, 0.05])


class TestModelComparison:
    def test_qualitative_ordering(self):
        result = run_model_comparison(stages=3, pulse_count=4)
        survivors = result.stage_survivors
        # Pure delay keeps every glitch; inertial kills them all at stage 1;
        # involution-family channels attenuate gradually (at most the input count).
        assert survivors["pure"] == [4, 4, 4]
        assert survivors["inertial"][0] == 0
        assert survivors["involution"][0] <= 4
        assert survivors["involution"][-1] <= survivors["pure"][-1]
        assert result.output_transitions["pure"] == 8

    def test_rows(self):
        result = run_model_comparison(stages=2, pulse_count=3)
        rows = result.rows()
        assert {row["model"] for row in rows} == {
            "pure",
            "inertial",
            "ddm",
            "involution",
            "eta_involution",
        }


class TestScaling:
    def test_throughput_measured(self):
        samples = run_scaling(stage_counts=(2, 4), input_transitions=40)
        assert len(samples) == 2
        assert all(s.events > 0 for s in samples)
        assert all(s.events_per_second > 0 for s in samples)
        assert samples[1].events > samples[0].events

    def test_accepts_channel_spec(self):
        from repro.specs import ChannelSpec

        samples = run_scaling(
            stage_counts=(2,),
            input_transitions=20,
            channel=ChannelSpec.exp_involution(1.0, 0.5),
        )
        assert samples[0].events > 0


class TestModelComparisonSpecs:
    def test_spec_factories_match_callable_factories(self):
        from repro.core import PureDelayChannel
        from repro.specs import ChannelSpec

        with_callables = run_model_comparison(
            stages=2,
            pulse_count=3,
            factories={"pure": lambda: PureDelayChannel(1.19)},
        )
        with_specs = run_model_comparison(
            stages=2,
            pulse_count=3,
            factories={"pure": ChannelSpec("pure", delay=1.19)},
        )
        assert with_callables.stage_survivors == with_specs.stage_survivors
        assert with_callables.output_transitions == with_specs.output_transitions
