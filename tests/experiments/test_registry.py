"""The declarative experiment surface: registry, results, equivalence.

Pins the ISSUE-4 acceptance criteria:

* every experiment kind runs via ``repro.api.experiment`` and produces
  numbers bit-identical to the pre-PR direct-call path (the private
  ``_run_*`` implementations the deprecated wrappers fall back to),
* :class:`ExperimentResult` round-trips through JSON,
* identical re-runs hit the artifact store.
"""

import numpy as np
import pytest

from repro import api
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    experiment_kinds,
    get_experiment_kind,
    register_experiment_kind,
    run_experiment,
)
from repro.specs import SpecError


THEOREM9_PARAMS = {
    "pulse_lengths": [0.3, 0.8, 1.3],
    "adversaries": {"zero": {"kind": "zero"}, "random": {"kind": "random", "seed": 5}},
    "end_time": 150.0,
}
COMPARISON_PARAMS = {"stages": 2, "pulse_count": 3}


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        assert {
            "theorem9",
            "lemma5",
            "fig7",
            "fig8",
            "fig9",
            "comparison",
            "scaling",
            "eta_coverage",
        } <= set(experiment_kinds())

    def test_descriptions_exposed(self):
        listing = api.experiments()
        assert set(listing) == set(experiment_kinds())
        assert all(description for description in listing.values())

    def test_unknown_kind_raises(self):
        with pytest.raises(SpecError, match="unknown experiment kind"):
            run_experiment("not_an_experiment")

    def test_unknown_param_raises(self):
        with pytest.raises(SpecError, match="unknown parameter"):
            run_experiment("lemma5", {"eta_plus_valuez": [0.1]})

    def test_duplicate_registration_rejected(self):
        info = get_experiment_kind("lemma5")
        with pytest.raises(SpecError, match="already registered"):
            register_experiment_kind("lemma5", info.runner)
        # replace=True is the escape hatch (restore the original runner).
        register_experiment_kind(
            "lemma5",
            info.runner,
            description=info.description,
            defaults=info.defaults,
            replace=True,
        )

    def test_resolved_promotes_int_spellings_of_float_params(self):
        from repro.store import ArtifactStore

        as_int = ExperimentSpec("comparison", {"end_time": 200}).resolved()
        as_float = ExperimentSpec("comparison", {"end_time": 200.0}).resolved()
        assert as_int == as_float
        assert ArtifactStore.key_for(as_int) == ArtifactStore.key_for(as_float)
        assert as_int.params["end_time"] == 200.0
        # Bool params are not "ints" for promotion purposes.
        assert ExperimentSpec("comparison", {"record_traces": True}).resolved().params[
            "record_traces"
        ] is True

    def test_resolved_merges_defaults(self):
        spec = ExperimentSpec("lemma5", {"eta_plus_values": [0.1]})
        resolved = spec.resolved()
        assert resolved.params["eta_plus_values"] == [0.1]
        assert resolved.params["back_off"] == pytest.approx(1e-3)
        assert resolved.params["pair"]["kind"] == "exp"
        # Spelled-out defaults resolve to the same spec (same cache key).
        explicit = ExperimentSpec("lemma5", dict(resolved.params))
        assert explicit.resolved() == resolved


class TestResults:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("theorem9", THEOREM9_PARAMS)

    def test_rows_and_columns(self, result):
        assert len(result.rows) == 3 * 2
        assert result.columns[0] == "delta_0"
        assert all(list(row) == result.columns for row in result.rows)
        result.validate()

    def test_provenance(self, result):
        prov = result.provenance
        assert prov["spec"] == result.spec.to_dict()
        assert len(prov["spec_key"]) == 64
        assert prov["backend"] == "sequential"
        assert prov["cpu_count"] >= 1
        assert prov["wall_time_s"] > 0
        import repro

        assert prov["version"] == repro.__version__

    def test_json_round_trip(self, result):
        clone = ExperimentResult.from_json(result.to_json())
        assert clone == result
        assert clone.rows == result.rows
        assert clone.columns == result.columns
        assert clone.spec == result.spec
        clone.validate()

    def test_equality_ignores_provenance(self, result):
        clone = ExperimentResult.from_json(result.to_json())
        clone.provenance["wall_time_s"] = 123.0
        assert clone == result

    def test_raw_is_transient(self, result):
        assert result.raw is not None
        assert ExperimentResult.from_json(result.to_json()).raw is None

    def test_table_renders(self, result):
        text = result.table()
        assert "experiment theorem9" in text
        assert "delta_0" in text

    def test_spec_run_method(self):
        spec = ExperimentSpec("lemma5", {"eta_plus_values": [0.05]})
        assert spec.run().rows == run_experiment(spec).rows

    def test_bad_row_schema_rejected(self, result):
        broken = ExperimentResult.from_json(result.to_json())
        broken.rows[0] = dict(reversed(list(broken.rows[0].items())))
        with pytest.raises(SpecError, match="do not match"):
            broken.validate()


class TestTraces:
    def test_traces_recorded_on_request(self):
        with_traces = run_experiment(
            "comparison", dict(COMPARISON_PARAMS, record_traces=True)
        )
        assert set(with_traces.traces) == {
            f"{model}.out"
            for model in ("pure", "inertial", "ddm", "involution", "eta_involution")
        }
        signals = with_traces.signals()
        assert signals["pure.out"].final_value in (0, 1)
        # Traces survive the JSON round trip.
        clone = ExperimentResult.from_json(with_traces.to_json())
        assert clone.traces == with_traces.traces

    def test_traces_off_by_default(self):
        assert run_experiment("comparison", COMPARISON_PARAMS).traces is None


class TestCaching:
    def test_cache_roundtrip_and_hit(self, tmp_path):
        store_dir = tmp_path / "store"
        first = api.experiment("lemma5", {"eta_plus_values": [0.02]}, cache=store_dir)
        assert not first.from_cache
        second = api.experiment("lemma5", {"eta_plus_values": [0.02]}, cache=store_dir)
        assert second.from_cache
        assert second == first
        assert second.rows == first.rows

    def test_force_recomputes(self, tmp_path):
        store_dir = tmp_path / "store"
        api.experiment("lemma5", {"eta_plus_values": [0.02]}, cache=store_dir)
        forced = api.experiment(
            "lemma5", {"eta_plus_values": [0.02]}, cache=store_dir, force=True
        )
        assert not forced.from_cache

    def test_default_params_share_cache_entry(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        sparse = api.experiment("lemma5", {"eta_plus_values": [0.02]}, cache=store)
        explicit = api.experiment(
            "lemma5",
            dict(sparse.spec.resolved().params),
            cache=store,
        )
        assert explicit.from_cache
        assert len(store) == 1


class TestEquivalence:
    """Wrapper entry points vs. the canonical registered-kind path."""

    def test_theorem9(self):
        from repro.experiments.theorem9 import _run_theorem9, run_theorem9
        from repro.core import InvolutionPair, ZeroAdversary, RandomAdversary

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        direct, _ = _run_theorem9(
            pair,
            pulse_lengths=np.asarray(THEOREM9_PARAMS["pulse_lengths"]),
            adversaries={
                "zero": ZeroAdversary,
                "random": lambda: RandomAdversary(seed=5),
            },
            end_time=150.0,
        )
        wrapped = run_theorem9(
            pair,
            pulse_lengths=np.asarray(THEOREM9_PARAMS["pulse_lengths"]),
            adversaries={
                "zero": ZeroAdversary(),
                "random": RandomAdversary(seed=5),
            },
            end_time=150.0,
        )
        via_api = api.experiment("theorem9", THEOREM9_PARAMS)
        assert wrapped.rows() == direct.rows()
        assert via_api.rows == direct.rows()
        assert via_api.raw.analysis_summary == direct.analysis_summary

    def test_lemma5(self):
        from repro.experiments.theorem9 import _run_lemma5, run_lemma5_sweep
        from repro.core import InvolutionPair

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        direct = _run_lemma5(pair, [0.02, 0.05])
        assert run_lemma5_sweep(pair, [0.02, 0.05]) == direct
        assert api.experiment("lemma5", {"eta_plus_values": [0.02, 0.05]}).rows == direct

    def test_comparison(self):
        from repro.experiments.comparison import (
            _run_model_comparison,
            run_model_comparison,
        )

        direct, _ = _run_model_comparison(**COMPARISON_PARAMS)
        wrapped = run_model_comparison(**COMPARISON_PARAMS)
        via_api = api.experiment("comparison", COMPARISON_PARAMS)
        assert wrapped.stage_survivors == direct.stage_survivors
        assert wrapped.output_transitions == direct.output_transitions
        assert via_api.rows == direct.rows()

    def test_scaling_deterministic_columns(self):
        from repro.experiments.scaling import _run_scaling, run_scaling

        config = dict(stage_counts=(2, 3), input_transitions=30)
        direct = _run_scaling(**config)
        wrapped = run_scaling(**config)
        via_api = api.experiment(
            "scaling", {"stage_counts": [2, 3], "input_transitions": 30}
        )
        # seconds/events_per_second are wall clock; events are pinned.
        assert [s.events for s in wrapped] == [s.events for s in direct]
        assert [row["events"] for row in via_api.rows] == [s.events for s in direct]

    def test_eta_coverage(self):
        from repro.core import EtaBound, InvolutionPair
        from repro.fitting.eta_coverage import (
            _simulated_eta_coverage,
            simulated_eta_coverage,
        )

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        eta = EtaBound(0.05, 0.05)
        config = dict(stages=2, n_runs=4, seed=9)
        direct = _simulated_eta_coverage(pair, eta, **config)
        wrapped = simulated_eta_coverage(pair, eta, **config)
        via_api = api.experiment(
            "eta_coverage",
            {"eta": {"eta_plus": 0.05, "eta_minus": 0.05}, **config},
        )
        assert wrapped.samples == direct.samples
        assert via_api.rows == [direct.summary()]
        assert via_api.raw.samples == direct.samples

    def test_fig9(self):
        from repro.experiments.fig9 import _run_fig9, run_fig9

        config = dict(stages=2, stage_index=1, n_widths=10)
        direct = _run_fig9(**config)
        wrapped = run_fig9(**config)
        via_api = api.experiment(
            "fig9", {"stages": 2, "stage_index": 1, "n_widths": 10}
        )
        assert wrapped.rows() == direct.rows()
        assert via_api.rows == direct.rows()
        assert via_api.raw.fit.tau == direct.fit.tau

    def test_fig7(self):
        from repro.experiments.fig7 import _run_fig7, run_fig7

        config = dict(vdd_levels=(1.0,), stages=2, stage_index=1, n_widths=8)
        direct = _run_fig7(**config)
        wrapped = run_fig7(**config)
        via_api = api.experiment(
            "fig7",
            {"vdd_levels": [1.0], "stages": 2, "stage_index": 1, "n_widths": 8},
        )
        assert wrapped.rows() == direct.rows()
        assert via_api.rows == direct.rows()
        np.testing.assert_array_equal(
            via_api.raw.curves[1.0].delta, direct.curves[1.0].delta
        )

    def test_fig8(self):
        from repro.experiments.fig8 import _run_fig8, run_fig8

        config = dict(
            scenarios=("width_plus10",), stages=2, stage_index=1, n_widths=8, seed=1
        )
        direct = _run_fig8(**config)
        wrapped = run_fig8(**config)
        via_api = api.experiment(
            "fig8",
            {
                "scenarios": ["width_plus10"],
                "stages": 2,
                "stage_index": 1,
                "n_widths": 8,
                "seed": 1,
            },
        )
        assert wrapped.rows() == direct.rows()
        assert via_api.rows == direct.rows()


class TestBackends:
    """Experiments inherit the sweep runner's backends, result-neutrally."""

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_theorem9_backend_equivalence(self, backend):
        reference = run_experiment("theorem9", THEOREM9_PARAMS)
        other = run_experiment(
            "theorem9", THEOREM9_PARAMS, backend=backend, max_workers=2
        )
        assert other.rows == reference.rows
        assert other.provenance["backend"] == backend

    def test_eta_coverage_backend_equivalence(self):
        params = {"stages": 2, "n_runs": 4, "seed": 9}
        sequential = run_experiment("eta_coverage", params)
        threaded = run_experiment(
            "eta_coverage", params, backend="thread", max_workers=2
        )
        assert threaded.rows == sequential.rows


class TestWrapperFallback:
    """Unspeccable live arguments still work through the direct path."""

    def test_theorem9_with_unspeccable_adversary(self):
        from repro.core import ZeroAdversary
        from repro.core.adversary import Adversary
        from repro.experiments import run_theorem9
        from repro.core import InvolutionPair

        class CustomAdversary(ZeroAdversary):
            pass

        pair = InvolutionPair.exp_channel(1.0, 0.5)
        result = run_theorem9(
            pair,
            pulse_lengths=[0.3],
            adversaries={"custom": CustomAdversary},
            end_time=100.0,
        )
        assert len(result.observations) == 1

    def test_comparison_with_closure_factory(self):
        from repro.core import PureDelayChannel
        from repro.experiments import run_model_comparison

        class OddChannel(PureDelayChannel):
            pass

        result = run_model_comparison(
            stages=2, pulse_count=3, factories={"odd": lambda: OddChannel(1.0)}
        )
        assert set(result.stage_survivors) == {"odd"}


class TestExtensionHook:
    def test_user_registered_kind_runs_and_caches(self, tmp_path):
        from repro.experiments import ExperimentOutcome

        def runner(params, context):
            return ExperimentOutcome(
                rows=[{"x": params["x"], "doubled": 2 * params["x"]}]
            )

        register_experiment_kind(
            "test_doubler", runner, description="doubles x", defaults={"x": 1},
            replace=True,
        )
        result = api.experiment("test_doubler", {"x": 21}, cache=tmp_path)
        assert result.rows == [{"x": 21, "doubled": 42}]
        assert api.experiment("test_doubler", {"x": 21}, cache=tmp_path).from_cache
