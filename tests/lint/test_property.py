"""Property test: the linter's static vector-capability prediction
(REP401) agrees with the runtime verdict of
:func:`repro.engine.vector.vector_capability` on generated circuits.

Both sides share one analyzer (:mod:`repro.engine.capability`), so this
test pins the contract that made the refactor worthwhile: a document
the linter calls vector-clean must actually run on the vector backend,
and every predicted fallback reason must match the runtime report
verbatim.
"""

import random
import warnings

import pytest

from repro.core.transitions import Signal
from repro.engine.sweep import Scenario, run_many
from repro.engine.vector import vector_capability
from repro.lint import lint
from repro.specs import CircuitSpec

REP401_PREFIX = "sweeps would fall back to the scalar engine: "


def _random_channel(rng):
    choice = rng.randrange(6)
    if choice == 0:
        return {"kind": "zero"}
    if choice == 1:
        return {"kind": "pure", "delay": rng.choice([0.0, 0.7, 1.3])}
    if choice == 2:
        return {"kind": "inertial", "delay": 1.0, "window": 0.4}
    if choice == 3:
        return {"kind": "involution", "pair": {"kind": "exp", "tau": 1.0, "t_p": 0.5}}
    adversary = rng.choice(
        [
            {"kind": "zero"},
            {"kind": "worst"},
            {"kind": "random", "seed": rng.randrange(100)},
            {"kind": "random"},  # unseeded: vectorized via pre-drawn seeds
            {"kind": "sine", "period": 2.0},
        ]
    )
    return {
        "kind": "eta_involution",
        "pair": {"kind": "exp", "tau": 1.0, "t_p": 0.5},
        "eta": {"eta_plus": 0.05, "eta_minus": 0.2},
        "adversary": adversary,
    }


def _random_circuit_doc(rng):
    """A random INV chain, optionally ending in an OR2/BUF storage loop."""
    nodes = [{"kind": "input", "name": "a", "initial_value": 0}]
    edges = []
    prev, value = "a", 0
    for i in range(rng.randint(1, 3)):
        name = f"g{i}"
        value = 1 - value
        nodes.append(
            {"kind": "gate", "name": name, "type": "INV", "initial_value": value}
        )
        edges.append(
            {
                "name": f"e{i}",
                "source": prev,
                "target": name,
                "pin": 0,
                "channel": _random_channel(rng),
            }
        )
        prev = name
    if rng.random() < 0.4:
        nodes.append(
            {"kind": "gate", "name": "l0", "type": "OR2", "initial_value": value}
        )
        nodes.append(
            {"kind": "gate", "name": "l1", "type": "BUF", "initial_value": value}
        )
        edges.append(
            {"name": "el0", "source": prev, "target": "l0", "pin": 0,
             "channel": _random_channel(rng)}
        )
        edges.append(
            {"name": "el1", "source": "l1", "target": "l0", "pin": 1,
             "channel": _random_channel(rng)}
        )
        edges.append(
            {"name": "el2", "source": "l0", "target": "l1", "pin": 0,
             "channel": _random_channel(rng)}
        )
        prev = "l0"
    nodes.append({"kind": "output", "name": "o"})
    edges.append(
        {"name": "eo", "source": prev, "target": "o", "channel": _random_channel(rng)}
    )
    return {"name": "gen", "nodes": nodes, "edges": edges}


def _runtime_scenario(doc):
    """The same scenario REP401 synthesizes: declared initials, t=10."""
    inputs = {
        node["name"]: Signal(node.get("initial_value", 0), [])
        for node in doc["nodes"]
        if node["kind"] == "input"
    }
    return Scenario(name="lint", inputs=inputs, end_time=10.0)


@pytest.mark.parametrize("seed", range(8))
def test_static_prediction_matches_runtime_capability(seed):
    rng = random.Random(seed)
    for _ in range(25):
        doc = _random_circuit_doc(rng)
        report = lint(doc)
        predicted = [
            d.message[len(REP401_PREFIX):]
            for d in report
            if d.code == "REP401"
        ]
        circuit = CircuitSpec.from_dict(doc).build()
        capability = vector_capability(circuit, [_runtime_scenario(doc)])
        assert predicted == list(capability.reasons), doc
        assert bool(predicted) == (not capability.supported), doc


def test_vector_clean_circuits_actually_run_vectorized():
    rng = random.Random(99)
    exercised = 0
    while exercised < 5:
        doc = _random_circuit_doc(rng)
        report = lint(doc)
        if any(d.code == "REP401" for d in report):
            continue
        circuit = CircuitSpec.from_dict(doc).build()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a fallback warning = failure
            result = run_many(circuit, [_runtime_scenario(doc)], backend="vector")
        assert result.backend == "vector", doc
        exercised += 1


def test_predicted_fallback_circuits_fall_back():
    rng = random.Random(7)
    exercised = 0
    while exercised < 5:
        doc = _random_circuit_doc(rng)
        report = lint(doc)
        predicted = [d for d in report if d.code == "REP401"]
        if not predicted:
            continue
        circuit = CircuitSpec.from_dict(doc).build()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = run_many(
                circuit, [_runtime_scenario(doc)], backend="vector"
            )
        assert result.backend != "vector", doc
        assert result.vector_report is not None
        assert not result.vector_report.supported
        exercised += 1
