"""Per-rule fixture corpus: every rule is pinned by a failing and a
passing JSON fixture in ``tests/lint/fixtures/``.

The failing fixture must trigger the rule (other rules may co-fire --
real defects rarely come alone); the passing fixture must not trigger
it *and* must be free of error-severity findings, so each rule's happy
path is a runnable document.
"""

from pathlib import Path

import pytest

from repro.lint import RULES, Severity, get_rule, iter_rules, lint_path

FIXTURES = Path(__file__).parent / "fixtures"


def test_every_rule_has_fixtures():
    for code in RULES:
        assert (FIXTURES / f"{code}_fail.json").is_file(), code
        assert (FIXTURES / f"{code}_pass.json").is_file(), code


def test_no_stray_fixtures():
    for path in FIXTURES.glob("*.json"):
        code, _, suffix = path.stem.partition("_")
        assert code in RULES, path.name
        assert suffix in ("fail", "pass"), path.name


@pytest.mark.parametrize("code", sorted(RULES))
def test_failing_fixture_triggers_rule(code):
    report = lint_path(FIXTURES / f"{code}_fail.json")
    assert code in {d.code for d in report}, report.render()


@pytest.mark.parametrize("code", sorted(RULES))
def test_passing_fixture_is_clean(code):
    report = lint_path(FIXTURES / f"{code}_pass.json")
    assert code not in {d.code for d in report}, report.render()
    assert report.ok, report.render()


def test_registry_invariants():
    rules = iter_rules()
    assert len(rules) == len(RULES)
    assert [r.code for r in rules] == sorted(RULES)
    for rule in rules:
        assert rule.code.startswith("REP") and rule.code[3:].isdigit()
        assert rule.name and rule.name == rule.name.lower()
        assert isinstance(rule.severity, Severity)
        assert rule.summary.endswith(".")
        assert rule.scope in ("circuit", "experiment")
        assert rule.doc, f"{rule.code} has no rationale docstring"
        assert get_rule(rule.code) is rule


def test_diagnostics_are_stamped_with_rule_metadata():
    report = lint_path(FIXTURES / "REP106_fail.json", source="x.json")
    finding = next(d for d in report if d.code == "REP106")
    assert finding.severity is RULES["REP106"].severity
    assert finding.source == "x.json"
    assert finding.path.startswith("/edges/")
