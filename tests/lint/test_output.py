"""Golden renderings, CLI exit-code semantics, and the api surface."""

import json
from pathlib import Path

import pytest

from repro import api
from repro.cli import main
from repro.io.netlist import load_netlist
from repro.lint import LintError, lint, lint_path
from repro.specs import CircuitSpec, ExperimentSpec, SpecError

GOLDEN = Path(__file__).parent / "golden"
FIXTURES = Path(__file__).parent / "fixtures"
EXAMPLES = Path(__file__).parents[2] / "examples" / "netlists"


# --------------------------------------------------------------------------- #
# Golden output
# --------------------------------------------------------------------------- #


def test_golden_text():
    report = lint_path(GOLDEN / "bad_netlist.json", source="bad_netlist.json")
    expected = (GOLDEN / "bad_netlist.txt").read_text()
    assert report.render() + "\n" == expected


def test_golden_json():
    report = lint_path(GOLDEN / "bad_netlist.json", source="bad_netlist.json")
    expected = (GOLDEN / "bad_netlist.expected.json").read_text()
    assert report.to_json() + "\n" == expected
    # and the JSON form is loadable and consistent with the report
    data = json.loads(expected)
    assert data["ok"] is False
    assert data["counts"]["error"] == len(report.errors)
    assert [d["code"] for d in data["diagnostics"]] == [d.code for d in report]


def test_report_summary_pluralisation():
    clean = lint_path(FIXTURES / "REP001_pass.json")
    assert clean.summary() == "0 errors, 0 warnings, 0 info"
    one = lint_path(FIXTURES / "REP106_fail.json")
    assert one.summary().startswith(f"{len(one.errors)} error")


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def test_cli_clean_netlists_exit_zero(capsys):
    rc = main(["lint", str(EXAMPLES / "inverter_chain.json")])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 errors, 0 warnings, 0 info" in out


def test_cli_error_findings_exit_one(capsys):
    rc = main(["lint", str(FIXTURES / "REP002_fail.json")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REP002 error" in out


def test_cli_multiple_paths_worst_exit_wins(capsys):
    rc = main(
        [
            "lint",
            str(FIXTURES / "REP001_pass.json"),
            str(FIXTURES / "REP002_fail.json"),
        ]
    )
    capsys.readouterr()
    assert rc == 1


def test_cli_unreadable_input_exit_two(capsys):
    rc = main(["lint", str(FIXTURES / "does_not_exist.json")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "error:" in err


def test_cli_invalid_json_exit_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    rc = main(["lint", str(bad)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "not valid JSON" in err


def test_cli_json_output(capsys):
    rc = main(["lint", "--json", str(FIXTURES / "REP106_fail.json")])
    out = capsys.readouterr().out
    assert rc == 1
    payload = json.loads(out)
    assert isinstance(payload, list) and len(payload) == 1
    assert payload[0]["ok"] is False
    assert any(d["code"] == "REP106" for d in payload[0]["diagnostics"])


def test_cli_stdin(monkeypatch, capsys):
    import io

    doc = json.loads((FIXTURES / "REP106_fail.json").read_text())
    monkeypatch.setattr("sys.stdin", io.StringIO(json.dumps(doc)))
    rc = main(["lint", "-"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "<stdin>:" in out


def test_cli_stdin_invalid_json(monkeypatch, capsys):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("]["))
    rc = main(["lint", "-"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "<stdin>" in err


# --------------------------------------------------------------------------- #
# api.lint and input coercion
# --------------------------------------------------------------------------- #


def test_api_lint_accepts_path_str():
    report = api.lint(str(EXAMPLES / "inverter_chain.json"))
    assert report.ok
    assert report.source == str(EXAMPLES / "inverter_chain.json")


def test_api_lint_accepts_netlist_and_specs():
    netlist = load_netlist(EXAMPLES / "inverter_chain.json")
    assert api.lint(netlist).ok
    assert api.lint(netlist.circuit).ok  # CircuitSpec
    assert api.lint(netlist.circuit.to_dict()).ok  # bare circuit dict
    assert api.lint(netlist.build()).ok  # live Circuit (via to_spec)
    spec = ExperimentSpec("theorem9", {"eta_plus": 0.05})
    assert api.lint(spec).ok
    assert api.lint({"kind": "theorem9", "eta_plus": 0.05}).ok


def test_api_lint_rejects_unlintable_objects():
    with pytest.raises(SpecError):
        api.lint(42)
    with pytest.raises(SpecError):
        api.lint({"neither": "circuit", "nor": "experiment"})


def test_validate_hook_raises_lint_error():
    doc = json.loads((FIXTURES / "REP002_fail.json").read_text())
    with pytest.raises(LintError) as excinfo:
        api.simulate(doc, {}, 1.0, validate=True)
    assert any(d.code == "REP002" for d in excinfo.value.report.errors)
    assert "lint failed" in str(excinfo.value)


def test_validate_hook_passes_clean_spec():
    netlist = load_netlist(EXAMPLES / "inverter_chain.json")
    execution = api.simulate(
        netlist.circuit, netlist.inputs, netlist.end_time, validate=True
    )
    assert execution.event_count > 0


def test_experiment_validate_hook():
    with pytest.raises(LintError) as excinfo:
        api.experiment("theorem9", {"not_a_param": 1}, validate=True)
    assert any(d.code == "REP502" for d in excinfo.value.report.errors)


def test_warnings_do_not_fail_validation():
    report = lint_path(FIXTURES / "REP301_fail.json")
    assert report.warnings and report.ok


def test_example_netlists_and_experiment_defaults_are_clean():
    from repro.specs import experiment_kinds, get_experiment_kind

    for path in sorted(EXAMPLES.glob("*.json")):
        report = lint_path(path)
        assert report.ok, f"{path}: {report.render()}"
    for kind in experiment_kinds():
        doc = {"kind": kind, **get_experiment_kind(kind).defaults}
        report = lint(doc)
        assert report.ok and not report.warnings, f"{kind}: {report.render()}"
