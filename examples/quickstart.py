#!/usr/bin/env python3
"""Quickstart: involution and eta-involution channels in five minutes.

This example walks through the core objects of the library:

1. build an exp-channel involution delay pair and inspect its key
   quantities (delta_min, delta_inf),
2. push pulses through the deterministic involution channel and watch
   short pulses being attenuated and cancelled (Fig. 2 of the paper),
3. add bounded adversarial noise (the eta-involution channel, Fig. 3/4)
   and see how different adversaries change the output trace,
4. check constraint (C) and compute the storage-loop quantities of the
   faithfulness proof (Lemma 5 / Theorem 9).

Run with ``python examples/quickstart.py``.
"""

from repro import (
    EtaBound,
    EtaInvolutionChannel,
    InvolutionChannel,
    InvolutionPair,
    RandomAdversary,
    Signal,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
    satisfies_constraint_C,
)
from repro.spf import SPFAnalysis


def describe_signal(label: str, signal: Signal) -> None:
    """Print a one-line description of a signal."""
    if signal.is_constant():
        print(f"  {label:<28s} constant {signal.initial_value}")
        return
    times = ", ".join(f"{t.time:.3f}->{t.value}" for t in signal)
    print(f"  {label:<28s} {times}")


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. An involution delay pair (the paper's exp-channel).
    # ------------------------------------------------------------------ #
    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    print("Exp-channel involution pair")
    print(f"  delta_min      = {pair.delta_min:.4f}   (equals the pure delay t_p)")
    print(f"  delta_up_inf   = {pair.delta_up_inf:.4f}")
    print(f"  delta_down_inf = {pair.delta_down_inf:.4f}")
    print(f"  involution residual = {pair.involution_residual():.2e}")
    print()

    # ------------------------------------------------------------------ #
    # 2. The deterministic involution channel on single pulses.
    # ------------------------------------------------------------------ #
    channel = InvolutionChannel(pair)
    print("Deterministic involution channel (Fig. 2 behaviour)")
    for width in (3.0, 1.0, 0.8, 0.6):
        out = channel(Signal.pulse(0.0, width))
        describe_signal(f"input pulse of width {width:.2f}", out)
    print("  -> narrow pulses are attenuated and eventually cancelled\n")

    # ------------------------------------------------------------------ #
    # 3. Adding adversarial noise: the eta-involution channel.
    # ------------------------------------------------------------------ #
    eta = admissible_eta_bound(pair, eta_plus=0.05)
    print(f"Eta-involution channel with eta = [-{eta.eta_minus:.3f}, +{eta.eta_plus:.3f}]")
    print(f"  constraint (C) satisfied: {satisfies_constraint_C(pair, eta)}")
    pulse = Signal.pulse(0.0, 2.0)
    for name, adversary in (
        ("zero adversary", ZeroAdversary()),
        ("worst-case adversary", WorstCaseAdversary()),
        ("random adversary", RandomAdversary(seed=42)),
    ):
        out = EtaInvolutionChannel(pair, eta, adversary)(pulse)
        describe_signal(name, out)
    print("  -> every trace differs by admissible per-transition shifts\n")

    # ------------------------------------------------------------------ #
    # 4. Storage-loop quantities of the faithfulness proof.
    # ------------------------------------------------------------------ #
    analysis = SPFAnalysis(pair, eta)
    print("Storage-loop analysis (Lemma 5 / Theorem 9)")
    print(f"  worst-case period        P      = {analysis.period:.4f}")
    print(f"  worst-case pulse length  Delta  = {analysis.delta_bound:.4f} (< delta_min)")
    print(f"  duty-cycle bound         gamma  = {analysis.duty_cycle_bound:.4f} (< 1)")
    print(f"  cancelled regime for Delta_0 <= {analysis.cancel_threshold:.4f}")
    print(f"  latched   regime for Delta_0 >= {analysis.latch_threshold:.4f}")
    print(f"  guaranteed latching above Delta_0_tilde = {analysis.delta_tilde_0:.4f}")
    for delta_0 in (0.3, 1.0, 1.3):
        print(f"  input pulse {delta_0:.2f} -> regime: {analysis.classify(delta_0)}")
    print()

    # ------------------------------------------------------------------ #
    # 5. The declarative spec API: serialisable experiment definitions.
    # ------------------------------------------------------------------ #
    from repro import ChannelSpec, api
    from repro.circuits import Circuit, inverter_chain

    spec = ChannelSpec.exp_eta_involution(
        tau=1.0, t_p=0.5, eta=eta, adversary={"kind": "random", "seed": 42}
    )
    circuit = inverter_chain(5, spec)
    circuit_spec = circuit.to_spec()
    print("Declarative spec API (repro.specs / repro.api)")
    print(f"  channel spec       {spec.kind}: {sorted(spec.params)}")
    print(f"  circuit spec       {circuit_spec!r}")
    print(f"  JSON netlist size  {len(circuit_spec.to_json())} bytes")
    rebuilt = Circuit.from_spec(circuit_spec)
    execution = api.simulate(circuit, {"in": Signal.pulse(1.0, 3.0)}, 60.0)
    execution2 = api.simulate(rebuilt, {"in": Signal.pulse(1.0, 3.0)}, 60.0)
    identical = execution.output("out") == execution2.output("out")
    print(f"  spec round-trip simulates identically: {identical}")
    print("  (try: python -m repro simulate examples/netlists/inverter_chain.json)")


if __name__ == "__main__":
    main()
