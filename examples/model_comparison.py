#!/usr/bin/env python3
"""Glitch propagation under pure, inertial, DDM and (eta-)involution delays.

Reproduces the qualitative comparison that motivates the paper: a train of
narrow pulses is driven into an inverter chain whose stages are modelled
with each delay-model family, and the number of surviving pulses per stage
is tabulated.  Pure delays keep every glitch, inertial delays delete all of
them in one stage (physically impossible behaviour), DDM and involution
channels attenuate the train gradually.

Run with ``python examples/model_comparison.py``.
"""

from repro.experiments import print_table, run_model_comparison


def main() -> None:
    for width in (0.3, 0.45, 0.6):
        result = run_model_comparison(
            stages=6, pulse_width=width, gap=1.0 - width, pulse_count=10, end_time=300.0
        )
        print_table(
            result.rows(),
            title=(
                f"Surviving pulses per stage -- {result.pulse_count} input pulses "
                f"of width {width:.2f} (period 1.0)"
            ),
        )
        print()
    print(
        "Observations:\n"
        "  * pure delay propagates every glitch unchanged,\n"
        "  * inertial delay removes all sub-window glitches at the first stage\n"
        "    (a perfect bounded-time short-pulse filter -- the behaviour proven\n"
        "    impossible for physical circuits),\n"
        "  * DDM and (eta-)involution channels attenuate the train gradually,\n"
        "    with the eta-involution channel adding bounded per-transition jitter."
    )


if __name__ == "__main__":
    main()
