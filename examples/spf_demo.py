#!/usr/bin/env python3
"""Short-Pulse Filtration with the Fig. 5 circuit.

Builds the SPF circuit of the paper (fed-back OR + high-threshold buffer),
simulates it for input pulses across the three Theorem 9 regimes and under
several adversaries, and verifies the SPF conditions F1-F4 empirically.
It also demonstrates the bounded-time impossibility: the stabilisation time
diverges as the input pulse width approaches the critical width.

Run with ``python examples/spf_demo.py``.
"""

import numpy as np

from repro import (
    InvolutionPair,
    RandomAdversary,
    WorstCaseAdversary,
    ZeroAdversary,
    admissible_eta_bound,
)
from repro.circuits import Simulator
from repro.core import Signal
from repro.experiments import print_table
from repro.spf import (
    SPFAnalysis,
    SPFChecker,
    build_spf_circuit,
    simulated_stabilization_sweep,
)


def main() -> None:
    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    eta = admissible_eta_bound(pair, eta_plus=0.05)
    analysis = SPFAnalysis(pair, eta)
    print("Storage-loop analysis:")
    print_table([analysis.summary()])
    print()

    # ------------------------------------------------------------------ #
    # Simulate the full SPF circuit across the regimes.
    # ------------------------------------------------------------------ #
    circuit = build_spf_circuit(pair, eta, WorstCaseAdversary())
    simulator = Simulator(circuit, max_events=500_000)
    rows = []
    for delta_0 in (0.2, 0.6, 1.0, analysis.delta_tilde_0 + 0.01, 1.4):
        execution = simulator.run({"i": Signal.pulse(0.0, float(delta_0))}, 400.0)
        loop = execution.output_signals["or_out"]
        output = execution.output_signals["o"]
        rows.append(
            {
                "Delta_0": float(delta_0),
                "regime": analysis.classify(float(delta_0)),
                "loop_pulses": len(loop.pulses()),
                "loop_final": loop.final_value,
                "spf_output": "constant 0" if output.is_zero() else f"rises at {output[0].time:.2f}",
            }
        )
    print_table(rows, title="Fig. 5 circuit under the worst-case adversary")
    print()

    # ------------------------------------------------------------------ #
    # Empirical SPF check (conditions F1-F4) over pulses and adversaries.
    # ------------------------------------------------------------------ #
    checker = SPFChecker(
        circuit,
        adversary_factories={
            "zero": ZeroAdversary,
            "worst": WorstCaseAdversary,
            "random": lambda: RandomAdversary(seed=7),
        },
        end_time=400.0,
    )
    report = checker.check(np.linspace(0.05, 2.0, 14))
    print_table([report.summary()], title="Empirical SPF check (F1-F4)")
    print()

    # ------------------------------------------------------------------ #
    # Bounded-time impossibility: stabilisation diverges near the threshold.
    # ------------------------------------------------------------------ #
    sweep = simulated_stabilization_sweep(
        pair, eta, gaps=[1e-1, 1e-2, 1e-3, 1e-4, 1e-5],
        adversary_factory=WorstCaseAdversary, end_time=500.0,
    )
    print_table(
        [
            {
                "Delta_0 - Delta_0_tilde": s.gap,
                "loop_pulses": s.pulses,
                "stabilization_time": s.stabilization_time,
            }
            for s in sweep
        ],
        title="Stabilisation time diverges towards the critical pulse width",
    )
    print("\nNo bounded stabilisation time can cover all input pulses -> bounded-time"
          "\nSPF is impossible, while the circuit above solves unbounded SPF.")


if __name__ == "__main__":
    main()
