#!/usr/bin/env python3
"""Validation flow on the analog inverter-chain substrate (Section V).

Mirrors the paper's measurement methodology end to end:

1. simulate the analog 7-stage inverter chain (the stand-in for the UMC-90
   ASIC of Fig. 6) and digitise its stage outputs,
2. characterise the delay functions delta_up / delta_down of one stage by a
   pulse-width sweep (Fig. 7 methodology), at several supply voltages,
3. build an involution channel from the characterised delay functions and
   use it to predict the digital behaviour of the chain,
4. export an execution as a VCD trace for waveform viewers.

Run with ``python examples/inverter_chain_validation.py``.
"""

import numpy as np

from repro.analog import AnalogInverterChain, UMC90, pulse_stimulus
from repro.circuits import inverter_chain, simulate
from repro.core import InvolutionChannel, Signal
from repro.experiments import print_table, run_fig7
from repro.fitting import CharacterizationDriver
from repro.io import signals_to_vcd


def main() -> None:
    technology = UMC90
    chain = AnalogInverterChain(technology, stages=7)

    # ------------------------------------------------------------------ #
    # 1. One analog run: a 60 ps pulse travelling down the chain.
    # ------------------------------------------------------------------ #
    grid = chain.recommended_time_grid(600.0)
    stimulus = pulse_stimulus(grid, 100.0, 60.0, high=technology.vdd_nominal, slew=3.0)
    result = chain.simulate(grid, stimulus)
    threshold = 0.5 * technology.vdd_nominal
    rows = []
    for index in range(chain.stages):
        signal = result.stage(index).to_signal(threshold)
        rows.append(
            {
                "stage": f"Q{index + 1}",
                "transitions": len(signal),
                "first_crossing": signal[0].time if len(signal) else float("nan"),
            }
        )
    print_table(rows, title="Analog chain: a 60 ps pulse propagating through 7 stages [ps]")
    print()

    # ------------------------------------------------------------------ #
    # 2. Delay characterisation across supply voltages (Fig. 7).
    # ------------------------------------------------------------------ #
    fig7 = run_fig7(technology, vdd_levels=(0.6, 0.8, 1.0), stages=3, stage_index=1, n_widths=16)
    print_table(fig7.rows(), title="Characterised delta_down(T) per supply voltage [ps]")
    print(f"Delays ordered by V_DD (lower V_DD => slower): {fig7.is_monotone_in_vdd()}")
    print()

    # ------------------------------------------------------------------ #
    # 3. Use the characterised delay pair as a channel model and compare the
    #    resulting gate-level prediction with the analog chain.
    # ------------------------------------------------------------------ #
    driver = CharacterizationDriver(AnalogInverterChain(technology, stages=3), stage_index=1)
    widths = np.concatenate([np.linspace(6.0, 28.0, 14), np.linspace(32.0, 140.0, 10)])
    measurement = driver.measure(widths)
    pair = measurement.to_involution_pair()
    print(f"Characterised pair: {pair.describe()}")

    digital_chain = inverter_chain(7, lambda: InvolutionChannel(pair, inverting=False))
    input_signal = result.input_waveform.to_signal(threshold)
    prediction = simulate(digital_chain, {"in": input_signal}, 800.0)
    predicted_out = prediction.output_signals["out"]
    analog_out = result.stage(6).to_signal(threshold)
    rows = []
    for kind, signal in (("analog substrate", analog_out), ("involution prediction", predicted_out)):
        rows.append(
            {
                "model": kind,
                "transitions": len(signal),
                "times": [round(t.time, 2) for t in signal],
            }
        )
    print_table(rows, title="Chain output: analog reference vs characterised involution model [ps]")
    if len(predicted_out) == len(analog_out) and len(analog_out) > 0:
        worst = max(
            abs(a.time - b.time) for a, b in zip(analog_out, predicted_out)
        )
        print(f"Worst-case prediction error across output transitions: {worst:.2f} ps")
    print()

    # ------------------------------------------------------------------ #
    # 4. Export the gate-level execution as VCD.
    # ------------------------------------------------------------------ #
    vcd = signals_to_vcd(
        {"in": input_signal, "out": predicted_out},
        comment="repro inverter-chain validation",
    )
    print(f"VCD export: {len(vcd.splitlines())} lines (write with repro.io.write_vcd)")


if __name__ == "__main__":
    main()
