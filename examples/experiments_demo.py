#!/usr/bin/env python3
"""The declarative experiment API: specs, provenance, and the artifact store.

Runs two of the paper's experiments through ``repro.api.experiment`` with a
local artifact store, demonstrating that

* an experiment is a JSON value (an ``ExperimentSpec``) you can store,
  diff, and re-run,
* every result carries its provenance (spec hash, package version,
  backend, wall time), and
* an identical re-run is a cache hit: the stored artifact is returned
  without recomputation.

Run with ``python examples/experiments_demo.py``.
"""

import tempfile
from pathlib import Path

from repro import api


def main() -> None:
    store = Path(tempfile.mkdtemp(prefix="repro-artifacts-"))
    print(f"artifact store: {store}\n")

    print("registered experiment kinds:")
    for kind, description in api.experiments().items():
        print(f"  {kind:<13s} {description.split(':')[0]}")
    print()

    lemma5 = api.experiment(
        "lemma5", {"eta_plus_values": [0.0, 0.02, 0.05, 0.1]}, cache=store
    )
    print(lemma5.table(columns=["eta_plus", "eta_minus", "tau", "Delta", "gamma"]))
    print(f"spec key: {lemma5.provenance['spec_key'][:16]}...  "
          f"wall: {lemma5.provenance['wall_time_s']:.3f}s  "
          f"from_cache: {lemma5.from_cache}\n")

    comparison = api.experiment(
        "comparison", {"stages": 4, "pulse_count": 6}, cache=store
    )
    print(comparison.table())
    print()

    rerun = api.experiment(
        "comparison", {"stages": 4, "pulse_count": 6}, cache=store
    )
    print(f"identical re-run: from_cache={rerun.from_cache} "
          f"(rows equal: {rerun.rows == comparison.rows})")

    # The spec round-trips through JSON -- this is what `repro experiment
    # run` serialises and what the store keys on.
    spec_json = comparison.spec.to_json(indent=None)
    print(f"spec JSON ({len(spec_json)} bytes): {spec_json[:72]}...")


if __name__ == "__main__":
    main()
