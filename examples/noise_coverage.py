#!/usr/bin/env python3
"""How much real-world variation does the eta band absorb? (Fig. 8/9 flow)

Characterises a reference delay function on the analog substrate, derives
the admissible eta band from constraint (C), and checks which variations
(supply ripple, transistor-width changes, exp-channel fitting error) the
eta-involution model can absorb -- the experiment behind Figs. 8 and 9.

Run with ``python examples/noise_coverage.py``.
"""

from repro.analog import UMC90
from repro.experiments import print_table, run_fig8, run_fig9


def main() -> None:
    # ------------------------------------------------------------------ #
    # Fig. 8: deviations under variations vs the admissible eta band.
    # ------------------------------------------------------------------ #
    fig8 = run_fig8(UMC90, stages=3, stage_index=1, n_widths=20, seed=1)
    band = fig8.scenarios["supply_1pct"].analysis.eta
    print(
        f"Admissible eta band derived from constraint (C): "
        f"[-{band.eta_minus:.3f}, +{band.eta_plus:.3f}] ps"
    )
    print_table(
        fig8.rows(),
        columns=[
            "scenario",
            "coverage_all",
            "coverage_small_T",
            "max_abs_deviation",
            "max_abs_deviation_small_T",
        ],
        title="Fig. 8: eta-band coverage of deviations per variation scenario",
    )
    print()

    # ------------------------------------------------------------------ #
    # Fig. 9: a fitted exp-channel as the reference model.
    # ------------------------------------------------------------------ #
    fig9 = run_fig9(UMC90, stages=3, stage_index=1, n_widths=20)
    print_table(
        fig9.rows(),
        columns=[
            "tau",
            "t_p",
            "v_th",
            "rms_residual",
            "coverage_all",
            "coverage_small_T",
            "max_abs_deviation",
        ],
        title="Fig. 9: exp-channel fit and its deviation coverage",
    )
    print(
        "\nAs in the paper: small operating-condition variations are fully absorbed\n"
        "by the admissible eta band near T = 0 (the region that matters for\n"
        "faithfulness), while larger variations and large T exceed it."
    )


if __name__ == "__main__":
    main()
