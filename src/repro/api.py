"""High-level facade over the spec-based API.

Three verbs cover the common workflows, each accepting live objects *or*
their declarative specs (:mod:`repro.specs`) interchangeably:

* :func:`build` -- turn a :class:`~repro.specs.CircuitSpec` (or spec dict,
  or netlist file path) into a live :class:`~repro.circuits.circuit.Circuit`,
* :func:`simulate` -- one event-driven execution,
* :func:`sweep` -- a batched scenario family through
  :func:`repro.engine.sweep.run_many` (sequential, thread, process, or
  vector backend -- specs are what make the process backend shippable,
  and the vector backend batch-evaluates all scenarios through numpy),

plus :func:`monte_carlo` to assemble the eta Monte Carlo scenario family
of :func:`repro.engine.sweep.eta_monte_carlo` directly from a spec, and
the declarative experiment surface:

* :func:`experiment` -- run a registered experiment kind from an
  :class:`~repro.specs.ExperimentSpec` (or a kind name plus params),
  returning a provenance-carrying
  :class:`~repro.experiments.base.ExperimentResult`; ``cache=`` plugs in
  the content-addressed artifact store (:mod:`repro.store`),
* :func:`experiments` -- the registered kinds and their descriptions.

Typical use::

    from repro import api
    netlist = api.load("examples/netlists/inverter_chain.json")
    execution = api.simulate(netlist.circuit, netlist.inputs, netlist.end_time)
    circuit, scenarios = api.monte_carlo(netlist.circuit, netlist.inputs,
                                         netlist.end_time, n_runs=100, seed=7)
    result = api.sweep(circuit, scenarios, backend="process")

    thm9 = api.experiment("theorem9", {"eta_plus": 0.1}, cache="artifacts/")
    print(thm9.table())
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Union

from .core.transitions import Signal
from .engine.scheduler import CircuitTopology, Execution
from .engine.sweep import Scenario, SweepResult, eta_monte_carlo, run_many
from .specs import as_circuit

__all__ = [
    "build",
    "load",
    "lint",
    "simulate",
    "sweep",
    "monte_carlo",
    "experiment",
    "experiments",
]


def lint(obj, *, source: Optional[str] = None):
    """Statically lint a netlist, spec, or experiment definition.

    Accepts everything :func:`build` and :func:`experiment` accept --
    netlist file paths, netlist/circuit-spec/experiment-spec dicts, live
    ``CircuitSpec`` / ``ExperimentSpec`` / ``Netlist`` / circuit objects
    -- and returns a :class:`repro.lint.LintReport` of structured
    :class:`repro.lint.Diagnostic` records (rule code, severity, message,
    JSON path).  See ``docs/linting.md`` for the rule catalogue; the
    ``repro lint`` CLI subcommand wraps this with text/JSON output and
    exit-code semantics.
    """
    from .lint import lint as _lint

    return _lint(obj, source=source)


def _validate_or_raise(obj) -> None:
    """Lint ``obj`` and raise :class:`repro.lint.LintError` on errors."""
    from .lint import LintError
    from .lint import lint as _lint

    report = _lint(obj)
    if not report.ok:
        raise LintError(report)


def load(path: Union[str, Path]):
    """Load a netlist file (circuit spec plus optional stimulus defaults)."""
    from .io.netlist import load_netlist

    return load_netlist(path)


def build(spec_or_circuit):
    """Materialise a circuit from a spec, spec dict, netlist path, or circuit.

    Strings and :class:`~pathlib.Path` objects are treated as netlist file
    paths; everything else goes through :func:`repro.specs.as_circuit`.
    """
    if isinstance(spec_or_circuit, (str, Path)):
        return load(spec_or_circuit).build()
    return as_circuit(spec_or_circuit)


def _coerce_inputs(inputs: Mapping[str, object]) -> Dict[str, Signal]:
    from .io.netlist import signal_from_dict

    coerced: Dict[str, Signal] = {}
    for name, signal in inputs.items():
        coerced[name] = (
            signal if isinstance(signal, Signal) else signal_from_dict(signal)
        )
    return coerced


def simulate(
    spec_or_circuit,
    inputs: Mapping[str, object],
    end_time: float,
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
    validate: bool = False,
) -> Execution:
    """Run one event-driven execution of a circuit or spec.

    ``inputs`` maps input-port names to :class:`Signal` objects or signal
    dicts (see :func:`repro.io.netlist.signal_from_dict`).
    ``validate=True`` lints the circuit first (see :func:`lint`) and
    raises :class:`repro.lint.LintError` on any error-severity finding.
    """
    from .circuits.simulator import simulate as _simulate

    if validate:
        _validate_or_raise(spec_or_circuit)
    return _simulate(
        build(spec_or_circuit),
        _coerce_inputs(inputs),
        end_time,
        on_causality=on_causality,
        max_events=max_events,
    )


def sweep(
    spec_or_circuit,
    scenarios: Sequence[Scenario],
    *,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    on_causality: str = "error",
    max_events: int = 1_000_000,
    chunk_size: Optional[int] = None,
    checkpoint=None,
    retry=None,
    chunk_timeout: Optional[float] = None,
    on_chunk_failure: Optional[str] = None,
    validate: bool = False,
) -> SweepResult:
    """Run a scenario family through the batched sweep runner.

    Thin wrapper over :func:`repro.engine.sweep.run_many` that first
    coerces ``spec_or_circuit`` (``CircuitTopology`` instances pass
    through untouched, so prebuilt topologies stay amortised).
    ``backend`` is one of ``"sequential"``, ``"thread"``, ``"process"``,
    ``"vector"`` or ``"auto"``; with every stateful channel either seeded
    or overridden per scenario (the :func:`monte_carlo` families are) all
    backends produce bit-identical executions, and ``"vector"`` falls
    back to the sequential path (with a warning and a capability report
    on the result) when the sweep cannot be vectorized.

    ``backend="auto"`` -- or any of ``checkpoint=`` (artifact store or
    directory), ``retry=``, ``chunk_timeout=``, ``on_chunk_failure=`` --
    engages the fault-tolerant sharded runner
    (:func:`repro.engine.shard.run_many_sharded`): chunked spec-keyed
    checkpointing with crash-safe resume, retry with exponential backoff,
    poison-chunk quarantine, and per-chunk vector/scalar dispatch.

    ``validate=True`` lints the circuit first (see :func:`lint`; prebuilt
    :class:`CircuitTopology` instances are exempt -- they were built from
    an already-validated circuit) and raises
    :class:`repro.lint.LintError` on any error-severity finding.
    """
    if not isinstance(spec_or_circuit, CircuitTopology):
        if validate:
            _validate_or_raise(spec_or_circuit)
        spec_or_circuit = build(spec_or_circuit)
    return run_many(
        spec_or_circuit,
        list(scenarios),
        backend=backend,
        max_workers=max_workers,
        on_causality=on_causality,
        max_events=max_events,
        chunk_size=chunk_size,
        checkpoint=checkpoint,
        retry=retry,
        chunk_timeout=chunk_timeout,
        on_chunk_failure=on_chunk_failure,
    )


def monte_carlo(
    spec_or_circuit,
    inputs: Mapping[str, object],
    end_time: float,
    n_runs: int,
    *,
    seed: int = 0,
    name: str = "mc",
):
    """Eta Monte Carlo scenario family for a circuit or spec.

    Returns ``(circuit, scenarios)`` so callers can pass the *same* built
    circuit to :func:`sweep` (building twice would re-randomise nothing --
    scenarios override every eta edge -- but would redo validation).
    """
    circuit = build(spec_or_circuit)
    scenarios = eta_monte_carlo(
        circuit, _coerce_inputs(inputs), end_time, n_runs, seed=seed, name=name
    )
    return circuit, scenarios


def experiment(
    spec_or_kind,
    params: Optional[Mapping[str, object]] = None,
    *,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    cache=None,
    force: bool = False,
    checkpoint=None,
    validate: bool = False,
):
    """Run a registered experiment kind and return its ExperimentResult.

    ``spec_or_kind`` is a kind name (``"theorem9"``, ``"fig7"``, ...; see
    :func:`experiments`), an :class:`~repro.specs.ExperimentSpec`, or a
    spec dict.  ``cache`` (an :class:`~repro.store.ArtifactStore` or a
    directory path) makes identical reruns return the stored artifact with
    ``from_cache=True``.  ``checkpoint`` additionally checkpoints the
    experiment's *internal* sweeps chunk-by-chunk (experiment kinds that
    support it, e.g. ``eta_coverage``), so a killed run resumes mid-sweep
    rather than recomputing from scratch; provenance records the
    chunks-computed/chunks-resumed split.

    ``validate=True`` lints the experiment spec first (see :func:`lint`)
    and raises :class:`repro.lint.LintError` on any error-severity
    finding.
    """
    from .experiments.base import run_experiment

    if validate:
        if isinstance(spec_or_kind, str):
            _validate_or_raise({"kind": spec_or_kind, **dict(params or {})})
        else:
            _validate_or_raise(spec_or_kind)
    return run_experiment(
        spec_or_kind,
        params,
        backend=backend,
        max_workers=max_workers,
        cache=cache,
        force=force,
        checkpoint=checkpoint,
    )


def experiments() -> Dict[str, str]:
    """Registered experiment kinds mapped to their descriptions."""
    from .specs import experiment_kinds, get_experiment_kind

    return {
        kind: get_experiment_kind(kind).description for kind in experiment_kinds()
    }
