"""First-order analog simulation of a CMOS inverter chain.

This is the substitute for the paper's measurement substrate: a 7-stage
inverter chain on a UMC-90 ASIC whose internal nodes are observed through
on-chip sense amplifiers (Fig. 6), plus UMC-65 Spice simulations.  Each
stage is modelled as a first-order (single-pole) system:

* while the stage input is above the switching threshold the output is
  pulled towards 0 with time constant ``tau_n(V_DD)``,
* while it is below, the output is pulled towards ``V_DD(t)`` with time
  constant ``tau_p(V_DD)``,
* an intrinsic (pure) delay shifts the stage input in time.

The exact exponential update ``v <- target + (v - target) * exp(-dt/tau)``
is unconditionally stable, so moderately coarse time grids already give
accurate threshold crossings (crossing times are interpolated linearly by
:mod:`repro.analog.waveform`).

This first-order behaviour is precisely the regime in which the paper's
exp-channel is exact, and it produces the qualitative delay phenomenology
the validation experiments rely on: pulse attenuation for narrow inputs,
delay saturation for wide ones, strong V_DD dependence and drive-strength
(transistor-width) dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from .technology import Technology
from .variations import ConstantSupply, SupplyProfile
from .waveform import Waveform

__all__ = ["ChainResult", "AnalogInverterChain", "pulse_stimulus"]


SupplyLike = Union[float, SupplyProfile]


@dataclass
class ChainResult:
    """Waveforms produced by one analog simulation run.

    Attributes
    ----------
    times:
        The simulation time grid [ps].
    input_waveform:
        The driving waveform applied to the first stage.
    stage_waveforms:
        One waveform per inverter stage output (index 0 = first inverter),
        mirroring the sense-amplifier taps Q1..QN of the measurement ASIC.
    vdd:
        The supply-voltage samples used during the run.
    """

    times: np.ndarray
    input_waveform: Waveform
    stage_waveforms: List[Waveform]
    vdd: np.ndarray

    def stage(self, index: int) -> Waveform:
        """Waveform at the output of stage ``index`` (0-based)."""
        return self.stage_waveforms[index]

    @property
    def output(self) -> Waveform:
        """Waveform at the output of the last stage."""
        return self.stage_waveforms[-1]


class AnalogInverterChain:
    """An N-stage inverter chain with first-order stage dynamics.

    Parameters
    ----------
    technology:
        Technology parameters (see :mod:`repro.analog.technology`).
    stages:
        Number of inverters (the paper's ASIC has 7).
    width_factor:
        Global transistor-width scale (process variation); 1.0 is nominal.
    load_factors:
        Optional per-stage load multipliers (longer wires / larger fanout
        increase the stage's time constants).
    """

    def __init__(
        self,
        technology: Technology,
        stages: int = 7,
        *,
        width_factor: float = 1.0,
        load_factors: Optional[Sequence[float]] = None,
    ) -> None:
        if stages < 1:
            raise ValueError("the chain needs at least one stage")
        if width_factor <= 0:
            raise ValueError("width factor must be positive")
        if load_factors is None:
            load_factors = [1.0] * stages
        if len(load_factors) != stages:
            raise ValueError("need one load factor per stage")
        if any(f <= 0 for f in load_factors):
            raise ValueError("load factors must be positive")
        self.technology = technology
        self.stages = int(stages)
        self.width_factor = float(width_factor)
        self.load_factors = [float(f) for f in load_factors]

    # ------------------------------------------------------------------ #

    def simulate(
        self,
        times: np.ndarray,
        input_values: np.ndarray,
        supply: SupplyLike = None,
    ) -> ChainResult:
        """Simulate the chain for a given input waveform.

        Parameters
        ----------
        times:
            Uniform time grid [ps] (strictly increasing).
        input_values:
            Input voltage samples on ``times``.
        supply:
            Supply profile or constant voltage; defaults to the
            technology's nominal supply.
        """
        times = np.asarray(times, dtype=float)
        input_values = np.asarray(input_values, dtype=float)
        if times.ndim != 1 or input_values.shape != times.shape:
            raise ValueError("times and input_values must be 1-D arrays of equal length")
        if len(times) < 2:
            raise ValueError("need at least two time samples")
        if supply is None:
            supply = ConstantSupply(self.technology.vdd_nominal)
        elif isinstance(supply, (int, float)):
            supply = ConstantSupply(float(supply))
        vdd = np.asarray(supply(times), dtype=float)
        if vdd.shape != times.shape:
            raise ValueError("supply profile must return one sample per time point")

        dt = float(np.diff(times).mean())
        tech = self.technology
        shift = max(0, int(round(tech.intrinsic_delay / dt)))

        stage_outputs: List[np.ndarray] = []
        driving = input_values
        for stage_index in range(self.stages):
            load = self.load_factors[stage_index]
            tau_down = tech.tau_pull_down_array(vdd, self.width_factor) * load
            tau_up = tech.tau_pull_up_array(vdd, self.width_factor) * load
            switching = tech.switching_fraction * vdd

            if shift > 0:
                delayed = np.concatenate([np.full(shift, driving[0]), driving[:-shift]])
            else:
                delayed = driving

            output = np.empty_like(times)
            # Settled initial condition: output is the logical complement of
            # the (delayed) input at t = times[0].
            output[0] = 0.0 if delayed[0] >= switching[0] else vdd[0]
            decay_down = np.exp(-dt / tau_down)
            decay_up = np.exp(-dt / tau_up)
            for k in range(1, len(times)):
                if delayed[k] >= switching[k]:
                    target, decay = 0.0, decay_down[k]
                else:
                    target, decay = vdd[k], decay_up[k]
                output[k] = target + (output[k - 1] - target) * decay
            stage_outputs.append(output)
            driving = output

        return ChainResult(
            times=times,
            input_waveform=Waveform(times, input_values),
            stage_waveforms=[Waveform(times, v) for v in stage_outputs],
            vdd=vdd,
        )

    # ------------------------------------------------------------------ #

    def nominal_stage_delay(self) -> float:
        """Rough per-stage delay estimate (used to size time grids) [ps]."""
        tech = self.technology
        tau = 0.5 * (
            tech.tau_pull_down(tech.vdd_nominal, self.width_factor)
            + tech.tau_pull_up(tech.vdd_nominal, self.width_factor)
        )
        return tech.intrinsic_delay + tau * np.log(2.0)

    def recommended_time_grid(
        self,
        duration: float,
        *,
        points_per_tau: float = 40.0,
        supply_voltage: Optional[float] = None,
    ) -> np.ndarray:
        """A uniform grid resolving the slowest stage time constant."""
        tech = self.technology
        vdd = tech.vdd_nominal if supply_voltage is None else supply_voltage
        tau = max(
            tech.tau_pull_down(vdd, self.width_factor),
            tech.tau_pull_up(vdd, self.width_factor),
        )
        dt = max(tau / points_per_tau, 1e-3)
        n = int(np.ceil(duration / dt)) + 1
        return np.linspace(0.0, duration, n)


def pulse_stimulus(
    times: np.ndarray,
    start: float,
    width: float,
    *,
    high: float,
    low: float = 0.0,
    slew: float = 1.0,
) -> np.ndarray:
    """An input pulse with finite rise/fall slew on the given time grid."""
    times = np.asarray(times, dtype=float)
    values = np.full_like(times, low)
    if slew <= 0:
        values[(times >= start) & (times < start + width)] = high
        return values
    rise = np.clip((times - start) / slew, 0.0, 1.0)
    fall = np.clip((times - (start + width)) / slew, 0.0, 1.0)
    return low + (high - low) * (rise - fall)
