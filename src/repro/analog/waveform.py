"""Sampled analog waveforms and their digitisation.

The validation experiments of Section V compare the *digital abstraction*
of analog waveforms (threshold crossings) against the predictions of the
involution/eta-involution model.  This module provides the
:class:`Waveform` container used by the analog inverter-chain simulator,
threshold-crossing extraction with sub-sample (linear) interpolation, and
conversion to :class:`~repro.core.transitions.Signal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.transitions import Signal, Transition

__all__ = ["Waveform", "threshold_crossings", "digitize"]


@dataclass
class Waveform:
    """A uniformly or non-uniformly sampled voltage waveform.

    Attributes
    ----------
    times:
        Strictly increasing sample times (1-D array).
    values:
        Sampled voltages, same length as ``times``.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.ndim != 1 or self.values.ndim != 1:
            raise ValueError("waveform arrays must be one-dimensional")
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have the same length")
        if len(self.times) >= 2 and np.any(np.diff(self.times) <= 0):
            raise ValueError("sample times must be strictly increasing")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_signal(
        cls,
        signal: Signal,
        times: Sequence[float],
        *,
        low: float = 0.0,
        high: float = 1.0,
        slew: float = 0.0,
    ) -> "Waveform":
        """Render a digital signal as an (optionally finite-slew) waveform.

        With ``slew > 0`` every transition ramps linearly over ``slew``
        time units, centred on the transition time; this is used to drive
        the analog inverter chain with realistic (non-ideal) stimuli.
        """
        t = np.asarray(times, dtype=float)
        v = np.full_like(t, low if signal.initial_value == 0 else high)
        for tr in signal:
            target = high if tr.value == 1 else low
            if slew <= 0:
                v[t >= tr.time] = target
            else:
                start, end = tr.time - slew / 2.0, tr.time + slew / 2.0
                before = np.interp(start, t, v) if len(t) else low
                ramp_mask = (t >= start) & (t <= end)
                v[t > end] = target
                if np.any(ramp_mask):
                    frac = (t[ramp_mask] - start) / slew
                    v[ramp_mask] = before + (target - before) * frac
        return cls(t, v)

    def value_at(self, time: float) -> float:
        """Linearly interpolated voltage at ``time``."""
        return float(np.interp(time, self.times, self.values))

    def crossings(self, threshold: float, *, rising: Optional[bool] = None) -> List[float]:
        """Times where the waveform crosses ``threshold`` (linear interpolation).

        ``rising=True`` returns only upward crossings, ``False`` only
        downward crossings, ``None`` (default) both, in time order.
        """
        return threshold_crossings(self.times, self.values, threshold, rising=rising)

    def to_signal(self, threshold: float, *, min_separation: float = 0.0) -> Signal:
        """Digitise the waveform at ``threshold``.

        Consecutive crossings closer than ``min_separation`` (both of them)
        are dropped, which models the finite bandwidth of the sense
        amplifiers / oscilloscope of the measurement setup.
        """
        return digitize(self, threshold, min_separation=min_separation)

    def __len__(self) -> int:
        return len(self.times)


def threshold_crossings(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float,
    *,
    rising: Optional[bool] = None,
) -> List[float]:
    """Interpolated threshold-crossing times of a sampled waveform."""
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if len(t) < 2:
        return []
    above = v >= threshold
    change = np.nonzero(above[1:] != above[:-1])[0]
    crossings: List[float] = []
    for i in change:
        v0, v1 = v[i], v[i + 1]
        if v1 == v0:
            crossing_time = t[i]
        else:
            frac = (threshold - v0) / (v1 - v0)
            crossing_time = t[i] + frac * (t[i + 1] - t[i])
        is_rising = v1 > v0
        if rising is None or rising == is_rising:
            crossings.append(float(crossing_time))
    return crossings


def digitize(waveform: Waveform, threshold: float, *, min_separation: float = 0.0) -> Signal:
    """Digitise a waveform into a binary signal by threshold crossing."""
    initial_value = 1 if waveform.values[0] >= threshold else 0
    crossing_times = waveform.crossings(threshold)
    if min_separation > 0:
        filtered: List[float] = []
        for time in crossing_times:
            if filtered and time - filtered[-1] < min_separation:
                filtered.pop()
            else:
                filtered.append(time)
        crossing_times = filtered
    value = 1 - initial_value
    transitions = []
    for time in crossing_times:
        transitions.append(Transition(time, value))
        value = 1 - value
    return Signal(initial_value, transitions, allow_negative_times=True)
