"""Operating-condition and process variations for the analog substrate.

Section V of the paper probes three sources of modeling error:

(a) supply-voltage variations -- a sine wave of 1 % of V_DD with a period
    comparable to the full-range switching time of the inverter and a
    random phase per applied pulse (Fig. 8a),
(b) process variations -- transistor widths scaled by +-10 % (Fig. 8b/8c),
(c) fitting error of a simple exp-channel (Fig. 9).

This module models (a) and (b): :class:`SupplyProfile` implementations turn
a nominal V_DD into a time-varying supply seen by the analog inverter
chain, and :func:`width_variation` produces the scaled technologies.

:class:`VariationScenario` bundles one such operating condition
(technology + supply) into a sweepable unit; :func:`standard_variations`
produces the three conditions of Fig. 8, which the experiment drivers fan
out over :func:`repro.engine.sweep.sweep_map`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .technology import Technology

__all__ = [
    "SupplyProfile",
    "ConstantSupply",
    "SineSupplyNoise",
    "RandomPhaseSineSupply",
    "width_variation",
    "VariationScenario",
    "standard_variations",
]


class SupplyProfile:
    """Time-varying supply voltage ``V_DD(t)``."""

    def __call__(self, t: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def nominal(self) -> float:
        """The nominal (mean) supply voltage."""
        raise NotImplementedError  # pragma: no cover - interface


@dataclass
class ConstantSupply(SupplyProfile):
    """A constant supply voltage."""

    vdd: float

    def __call__(self, t: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(t, dtype=float), self.vdd)

    def nominal(self) -> float:
        return self.vdd


@dataclass
class SineSupplyNoise(SupplyProfile):
    """``V_DD(t) = vdd * (1 + amplitude_fraction * sin(2 pi t / period + phase))``.

    The paper uses ``amplitude_fraction = 0.01`` (1 % of V_DD) and a period
    similar to the full-range switching time of the inverter.
    """

    vdd: float
    amplitude_fraction: float
    period: float
    phase: float = 0.0

    def __call__(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return self.vdd * (
            1.0
            + self.amplitude_fraction
            * np.sin(2.0 * math.pi * t / self.period + self.phase)
        )

    def nominal(self) -> float:
        return self.vdd


class RandomPhaseSineSupply:
    """Factory producing :class:`SineSupplyNoise` profiles with random phase.

    The paper sets the phase of the supply ripple "for each pulse randomly
    between 0 and 360 degrees"; the characterisation driver asks this
    factory for a fresh profile per applied pulse.
    """

    def __init__(
        self,
        vdd: float,
        amplitude_fraction: float,
        period: float,
        seed: Optional[int] = None,
    ) -> None:
        self.vdd = float(vdd)
        self.amplitude_fraction = float(amplitude_fraction)
        self.period = float(period)
        self._rng = np.random.default_rng(seed)

    def sample(self) -> SineSupplyNoise:
        """Draw a profile with a uniformly random phase."""
        phase = float(self._rng.uniform(0.0, 2.0 * math.pi))
        return SineSupplyNoise(self.vdd, self.amplitude_fraction, self.period, phase)

    def nominal(self) -> float:
        """The nominal (mean) supply voltage."""
        return self.vdd


def width_variation(technology: Technology, percent: float) -> Technology:
    """Technology with transistor widths changed by ``percent`` (e.g. +10, -10)."""
    return technology.with_width(1.0 + percent / 100.0)


@dataclass
class VariationScenario:
    """One operating-condition point of a variation sweep.

    Attributes
    ----------
    name:
        Scenario label (``supply_1pct``, ``width_plus10``, ...).
    technology:
        The (possibly width-scaled) technology to build the chain from.
    supply:
        Supply profile for the characterisation driver -- a
        :class:`SupplyProfile`, a factory with a ``sample()`` method (drawn
        anew per pulse, e.g. :class:`RandomPhaseSineSupply`), or ``None``
        for the constant nominal supply.
    """

    name: str
    technology: Technology
    supply: Optional[object] = None


def standard_variations(
    technology: Technology,
    *,
    supply_amplitude: float = 0.01,
    sine_period: Optional[float] = None,
    width_percents: Sequence[float] = (+10.0, -10.0),
    seed: Optional[int] = None,
) -> List[VariationScenario]:
    """The variation scenarios of Fig. 8 as a sweepable family.

    Returns the 1 % random-phase supply ripple plus one width-scaled
    technology per entry of ``width_percents``.  ``sine_period`` defaults
    to twice the full-range switching time of the nominal inverter, the
    paper's "period similar to the switching time".
    """
    if sine_period is None:
        sine_period = 2.0 * (
            technology.intrinsic_delay
            + technology.tau_pull_up(technology.vdd_nominal)
            + technology.tau_pull_down(technology.vdd_nominal)
        )
    scenarios = [
        VariationScenario(
            name="supply_1pct",
            technology=technology,
            supply=RandomPhaseSineSupply(
                technology.vdd_nominal, supply_amplitude, sine_period, seed=seed
            ),
        )
    ]
    for percent in width_percents:
        sign = "plus" if percent >= 0 else "minus"
        scenarios.append(
            VariationScenario(
                name=f"width_{sign}{abs(percent):g}",
                technology=width_variation(technology, percent),
            )
        )
    return scenarios
