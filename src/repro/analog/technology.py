"""Technology parameter sets for the analog inverter model.

The paper's measurements use a custom UMC-90 nm ASIC (700/360 nm pMOS/nMOS
widths, |V_th| = 0.29/0.26 V, nominal V_DD = 1 V) and UMC-65 nm standard
cells (Spice, nominal V_DD = 1.2 V).  We cannot run that silicon or those
proprietary models, so :class:`Technology` captures the handful of
parameters that determine first-order switching behaviour:

* the nominal supply voltage,
* the transistor threshold voltages (pull-up/pull-down),
* a per-stage output time constant at nominal conditions (``tau_nominal``),
* the velocity-saturation exponent ``alpha`` of the alpha-power law, which
  controls how strongly the drive current -- and hence the delay -- depends
  on the supply voltage,
* pull-up/pull-down asymmetry and an intrinsic (wire/parasitic) delay.

The delay of a stage then scales as ``tau(V_DD) = tau_nominal * s(V_DD)``
with ``s(V) = [V / (V - V_th)^alpha] / [V_nom / (V_nom - V_th)^alpha]``,
which reproduces the qualitative V_DD ordering of the measured delay
curves in Fig. 7 (delays exploding as V_DD approaches V_th).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = [
    "Technology",
    "UMC90",
    "UMC65",
    "TECHNOLOGY_PRESETS",
    "technology_to_dict",
    "technology_from_dict",
    "as_technology",
]


@dataclass(frozen=True)
class Technology:
    """First-order technology description of a CMOS inverter stage.

    Attributes
    ----------
    name:
        Identifier used in reports.
    vdd_nominal:
        Nominal supply voltage [V].
    vth_n, vth_p:
        Threshold voltages of the pull-down / pull-up networks [V].
    tau_nominal:
        Output RC time constant of a stage at nominal V_DD and unit
        transistor width [time units: ps throughout this package].
    alpha:
        Alpha-power-law exponent (1 = long-channel, ~1.3 for short channel).
    pull_up_strength:
        Relative drive strength of the pull-up network (pMOS); values below
        1 make rising output edges slower than falling ones.
    intrinsic_delay:
        Pure (input-to-onset) delay of a stage, independent of V_DD [ps].
    switching_fraction:
        Input switching threshold of the stage as a fraction of V_DD.
    """

    name: str
    vdd_nominal: float
    vth_n: float
    vth_p: float
    tau_nominal: float
    alpha: float = 1.3
    pull_up_strength: float = 0.85
    intrinsic_delay: float = 2.0
    switching_fraction: float = 0.5

    def drive_scale(self, vdd, vth: float):
        """Delay scale factor at supply ``vdd`` relative to nominal.

        Uses the alpha-power law ``I_on ~ (V_DD - V_th)^alpha`` with the
        delay proportional to ``C * V_DD / I_on``.  Supplies at or below
        the threshold voltage give effectively infinite delay; a large
        finite factor is returned to keep the simulator numerically sane.
        Accepts scalars or NumPy arrays.
        """
        vdd_arr = np.asarray(vdd, dtype=float)
        margin = np.maximum(vdd_arr - vth, 1e-3)
        nominal_margin = self.vdd_nominal - vth
        nominal = self.vdd_nominal / (nominal_margin ** self.alpha)
        scale = (vdd_arr / (margin ** self.alpha)) / nominal
        if np.isscalar(vdd) or getattr(vdd, "ndim", 0) == 0:
            return float(scale)
        return scale

    def tau_pull_down_array(self, vdd: np.ndarray, width_factor: float = 1.0) -> np.ndarray:
        """Vectorised :meth:`tau_pull_down` for arrays of supply voltages."""
        return self.tau_nominal * np.asarray(self.drive_scale(vdd, self.vth_n)) / width_factor

    def tau_pull_up_array(self, vdd: np.ndarray, width_factor: float = 1.0) -> np.ndarray:
        """Vectorised :meth:`tau_pull_up` for arrays of supply voltages."""
        return (
            self.tau_nominal
            * np.asarray(self.drive_scale(vdd, self.vth_p))
            / (self.pull_up_strength * width_factor)
        )

    def tau_pull_down(self, vdd: float, width_factor: float = 1.0) -> float:
        """Output time constant for a falling output edge [ps]."""
        return self.tau_nominal * self.drive_scale(vdd, self.vth_n) / width_factor

    def tau_pull_up(self, vdd: float, width_factor: float = 1.0) -> float:
        """Output time constant for a rising output edge [ps]."""
        return (
            self.tau_nominal
            * self.drive_scale(vdd, self.vth_p)
            / (self.pull_up_strength * width_factor)
        )

    def switching_threshold(self, vdd: float) -> float:
        """Input voltage at which the stage flips its drive direction [V]."""
        return self.switching_fraction * vdd

    def with_width(self, width_factor: float) -> "Technology":
        """Technology with all transistor widths scaled by ``width_factor``.

        Width scales the ON current (1/width scales the time constants);
        this is how the +-10 % process-variation experiments of Fig. 8b/8c
        are modelled.
        """
        if width_factor <= 0:
            raise ValueError("width factor must be positive")
        return replace(
            self,
            name=f"{self.name}(W x {width_factor:g})",
            tau_nominal=self.tau_nominal / width_factor,
        )


#: UMC-90-like parameters (custom ASIC of the paper: V_DD = 1.0 V nominal).
UMC90 = Technology(
    name="UMC90",
    vdd_nominal=1.0,
    vth_n=0.26,
    vth_p=0.29,
    tau_nominal=12.0,
    alpha=1.3,
    pull_up_strength=0.85,
    intrinsic_delay=3.0,
)

#: UMC-65-like parameters (standard-cell Spice setup: V_DD = 1.2 V nominal).
UMC65 = Technology(
    name="UMC65",
    vdd_nominal=1.2,
    vth_n=0.30,
    vth_p=0.32,
    tau_nominal=8.0,
    alpha=1.25,
    pull_up_strength=0.9,
    intrinsic_delay=2.0,
)

#: Named technologies referencable from declarative experiment specs.
TECHNOLOGY_PRESETS: Dict[str, Technology] = {"UMC90": UMC90, "UMC65": UMC65}


def technology_to_dict(technology: Technology) -> Dict[str, Any]:
    """JSON-compatible form of a technology (all dataclass fields)."""
    return asdict(technology)


def _spec_error(message: str) -> Exception:
    """A :class:`repro.specs.SpecError` (lazily imported: specs is a higher layer).

    Technology coercion errors come from declarative experiment specs, so
    they must be the error type the CLI maps to a clean one-line exit.
    """
    from ..specs import SpecError

    return SpecError(message)


def technology_from_dict(data: Mapping[str, Any]) -> Technology:
    """Rebuild a technology from :func:`technology_to_dict` output.

    Unknown or missing fields raise so a typo'd experiment spec fails
    loudly instead of silently characterising the default technology.
    """
    known = {f.name for f in fields(Technology)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise _spec_error(
            f"unknown technology field(s) {unknown}; known: {sorted(known)}"
        )
    try:
        return Technology(**dict(data))
    except TypeError as exc:
        raise _spec_error(f"incomplete technology dict ({exc})") from None


def as_technology(obj: Union[Technology, str, Mapping[str, Any]]) -> Technology:
    """Coerce a Technology, preset name, or technology dict to a Technology."""
    if isinstance(obj, Technology):
        return obj
    if isinstance(obj, str):
        try:
            return TECHNOLOGY_PRESETS[obj]
        except KeyError:
            raise _spec_error(
                f"unknown technology preset {obj!r}; known: "
                f"{sorted(TECHNOLOGY_PRESETS)}"
            ) from None
    if isinstance(obj, Mapping):
        return technology_from_dict(obj)
    raise _spec_error(f"cannot interpret {type(obj).__name__} as a technology")

