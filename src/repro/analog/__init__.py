"""Analog substrate: first-order inverter-chain simulation and variations.

This subpackage substitutes for the UMC-90 ASIC measurements and UMC-65
Spice simulations of the paper's Section V (see DESIGN.md for the
substitution rationale).
"""

from .chain import AnalogInverterChain, ChainResult, pulse_stimulus
from .technology import UMC65, UMC90, Technology
from .variations import (
    ConstantSupply,
    RandomPhaseSineSupply,
    SineSupplyNoise,
    SupplyProfile,
    VariationScenario,
    standard_variations,
    width_variation,
)
from .waveform import Waveform, digitize, threshold_crossings

__all__ = [
    "Waveform",
    "digitize",
    "threshold_crossings",
    "Technology",
    "UMC90",
    "UMC65",
    "AnalogInverterChain",
    "ChainResult",
    "pulse_stimulus",
    "SupplyProfile",
    "ConstantSupply",
    "SineSupplyNoise",
    "RandomPhaseSineSupply",
    "width_variation",
    "VariationScenario",
    "standard_variations",
]
