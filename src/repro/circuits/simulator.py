"""Event-driven execution of circuits with single-history channels.

An *execution* of a circuit assigns a signal to every node (gate/port
output) and every edge (channel output) such that channel functions, gate
functions and initial values are respected.  Because circuits may contain
feedback loops (e.g. the SPF storage loop of Fig. 5), executions cannot be
computed by evaluating channel functions in topological order; instead this
module provides a discrete-event simulator with the usual structure:

* input-port transitions are the primary events,
* gates switch in zero time when any of their inputs changes,
* every gate-output transition entering a channel schedules a tentative
  output transition after the channel's delay ``delta(T) (+ eta)``,
* a newly scheduled channel output cancels still-pending outputs of the
  same channel at later-or-equal times (transport cancellation, matching
  the offline algorithm in :mod:`repro.core.channel`), and no-change
  deliveries are suppressed.

The simulator supports any :class:`~repro.core.channel.Channel` subclass,
including :class:`~repro.core.eta_channel.EtaInvolutionChannel` with an
arbitrary adversary per channel, which realises the adversarial choice of
the admissible parameter ``H`` in the paper's definition of an execution.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.channel import Channel, ZeroDelayChannel
from ..core.transitions import Signal, Transition
from .circuit import Circuit, Edge, GateInstance, InputPort, OutputPort

__all__ = ["SimulationError", "CausalityError", "Execution", "Simulator", "simulate"]


class SimulationError(RuntimeError):
    """Raised for runtime simulation problems (runaway loops, bad inputs)."""


class CausalityError(SimulationError):
    """Raised when a channel schedules an output before already-delivered ones.

    This cannot happen for the circuits analysed in the paper (the offending
    transition would have cancelled a still-pending predecessor); it can be
    triggered by exotic channels or very large eta bounds.  The simulator's
    ``on_causality`` policy can be set to ``"drop"`` to silently discard such
    transitions instead (mimicking what an HDL simulator would do).
    """


@dataclass
class Execution:
    """The result of simulating a circuit.

    Attributes
    ----------
    circuit:
        The simulated circuit.
    node_signals:
        Signal produced at every node output (gate outputs, input ports).
    edge_signals:
        Signal at every channel output, keyed by edge name.
    output_signals:
        Convenience view: signal arriving at each output port.
    end_time:
        The simulation horizon that was used.
    event_count:
        Number of processed events (a simulator-performance metric).
    dropped_transitions:
        Number of transitions discarded by the ``on_causality="drop"`` policy.
    """

    circuit: Circuit
    node_signals: Dict[str, Signal]
    edge_signals: Dict[str, Signal]
    output_signals: Dict[str, Signal]
    end_time: float
    event_count: int
    dropped_transitions: int = 0

    def output(self, name: Optional[str] = None) -> Signal:
        """Signal at the given output port (or the unique one if unnamed)."""
        if name is None:
            if len(self.output_signals) != 1:
                raise SimulationError(
                    "circuit has several output ports; specify which one"
                )
            return next(iter(self.output_signals.values()))
        return self.output_signals[name]

    def node(self, name: str) -> Signal:
        """Signal at the given node output."""
        return self.node_signals[name]

    def edge(self, name: str) -> Signal:
        """Signal at the given channel output."""
        return self.edge_signals[name]


@dataclass
class _EdgeState:
    """Per-channel bookkeeping during simulation."""

    edge: Edge
    last_input_time: float = -math.inf
    last_delay: float = 0.0
    last_input_value: int = 0
    transition_count: int = 0
    delivered_value: int = 0
    last_delivered_time: float = -math.inf
    pending: List[Tuple[float, int, int]] = field(default_factory=list)  # (time, value, id)
    delivered: List[Transition] = field(default_factory=list)
    cancelled_ids: set = field(default_factory=set)


class Simulator:
    """Discrete-event simulator for circuits of single-history channels.

    Parameters
    ----------
    circuit:
        The circuit to simulate (validated on construction).
    on_causality:
        Policy when a channel wants to emit an output transition earlier
        than an already-delivered one: ``"error"`` raises
        :class:`CausalityError`, ``"drop"`` discards the transition.
    max_events:
        Safety bound on the number of processed events (oscillating storage
        loops can generate events forever).
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        on_causality: str = "error",
        max_events: int = 1_000_000,
    ) -> None:
        if on_causality not in ("error", "drop"):
            raise ValueError("on_causality must be 'error' or 'drop'")
        circuit.validate()
        self.circuit = circuit
        self.on_causality = on_causality
        self.max_events = int(max_events)

    # ------------------------------------------------------------------ #

    def run(self, inputs: Dict[str, Signal], end_time: float) -> Execution:
        """Simulate the circuit for the given input-port signals.

        ``inputs`` maps every input-port name to its signal; transitions
        after ``end_time`` are ignored and channel outputs scheduled after
        ``end_time`` are not delivered (the returned signals are exact up
        to ``end_time``).
        """
        circuit = self.circuit
        input_ports = {p.name for p in circuit.input_ports()}
        missing = input_ports - set(inputs)
        if missing:
            raise SimulationError(f"missing input signals for ports {sorted(missing)}")
        unknown = set(inputs) - input_ports
        if unknown:
            raise SimulationError(f"signals given for unknown ports {sorted(unknown)}")

        # --- initial values ------------------------------------------------
        node_values: Dict[str, int] = {}
        node_transitions: Dict[str, List[Transition]] = {}
        for name, node in circuit.nodes.items():
            if isinstance(node, InputPort):
                node_values[name] = inputs[name].initial_value
            elif isinstance(node, GateInstance):
                node_values[name] = node.initial_value
            else:  # OutputPort: value defined by its driving channel below
                node_values[name] = 0
            node_transitions[name] = []

        edge_states: Dict[str, _EdgeState] = {}
        for ename, edge in circuit.edges.items():
            src_value = node_values[edge.source]
            state = _EdgeState(edge=edge)
            state.last_input_value = src_value
            state.delivered_value = edge.channel.output_initial_value(src_value)
            edge.channel.reset()
            edge_states[ename] = state
        for name, node in circuit.nodes.items():
            if isinstance(node, OutputPort):
                driver = circuit.edges_into(name)[0]
                node_values[name] = edge_states[driver.name].delivered_value

        # Gate input views: pin -> delivered value of the driving edge.
        gate_inputs: Dict[str, List[str]] = {}
        for gate in circuit.gates():
            gate_inputs[gate.name] = [e.name for e in circuit.edges_into(gate.name)]

        # --- event queue ----------------------------------------------------
        counter = itertools.count()
        queue: List[Tuple[float, int, str, object]] = []

        def push(time: float, kind: str, payload: object) -> None:
            heapq.heappush(queue, (time, next(counter), kind, payload))

        for pname in input_ports:
            for tr in inputs[pname]:
                if tr.time <= end_time:
                    push(tr.time, "port", (pname, tr.value))

        event_count = 0
        dropped = 0

        # --- helpers ---------------------------------------------------------

        def schedule_channel_input(ename: str, time: float, value: int) -> None:
            """Feed one input transition into a channel and schedule its output."""
            nonlocal dropped
            state = edge_states[ename]
            if value == state.last_input_value:
                return
            channel = state.edge.channel
            if math.isinf(state.last_input_time):
                T = math.inf
            else:
                T = time - state.last_input_time - state.last_delay
            out_value = (1 - value) if channel.inverting else value
            rising_output = out_value == 1
            delay = channel.delay_for(T, rising_output, state.transition_count, time)
            out_time = time + delay
            state.last_input_time = time
            state.last_delay = delay
            state.last_input_value = value
            state.transition_count += 1

            # Transport cancellation: remove still-pending outputs at >= out_time.
            kept: List[Tuple[float, int, int]] = []
            for (p_time, p_value, p_id) in state.pending:
                if p_time >= out_time:
                    state.cancelled_ids.add(p_id)
                else:
                    kept.append((p_time, p_value, p_id))
            state.pending = kept

            # Inertial pulse rejection: an output pulse narrower than the
            # channel's rejection window is removed entirely (both its
            # transitions), matching the offline remove_short_pulses filter.
            window = channel.rejection_window()
            if (
                window > 0.0
                and state.pending
                and out_time - state.pending[-1][0] < window
            ):
                _, _, previous_id = state.pending.pop()
                state.cancelled_ids.add(previous_id)
                return

            if not math.isfinite(out_time):
                # Domain-guard case (delta = -inf): the transition cancels
                # everything pending (done above) and is itself dropped.
                return
            if out_time <= state.last_delivered_time:
                if out_value == state.delivered_value:
                    # All pending transitions at later-or-equal times were just
                    # cancelled and the remaining scheduled value already equals
                    # this transition's value, so it is a no-change transition;
                    # suppressing it matches the offline transport resolution.
                    return
                if self.on_causality == "error":
                    raise CausalityError(
                        f"channel {ename!r} scheduled an output at {out_time:g} "
                        f"but already delivered one at {state.last_delivered_time:g}"
                    )
                dropped += 1
                return
            event_id = next(counter)
            state.pending.append((out_time, out_value, event_id))
            if out_time <= end_time:
                push(out_time, "deliver", (ename, out_value, event_id))

        def deliver(ename: str, value: int, event_id: int, time: float) -> bool:
            """Deliver a channel output transition to its target node."""
            state = edge_states[ename]
            if event_id in state.cancelled_ids:
                state.cancelled_ids.discard(event_id)
                return False
            state.pending = [(t, v, i) for (t, v, i) in state.pending if i != event_id]
            if value == state.delivered_value:
                return False
            state.delivered_value = value
            state.last_delivered_time = time
            state.delivered.append(Transition(time, value))
            return True

        def record_node_transition(nname: str, time: float, value: int) -> None:
            """Record a node-output transition, collapsing zero-width glitches.

            Two transitions of a node at exactly the same time form a
            zero-width glitch (the value reverts within the same instant);
            both are removed, keeping the recorded signal well formed.
            """
            transitions = node_transitions[nname]
            if transitions and transitions[-1].time == time:
                transitions.pop()
            else:
                transitions.append(Transition(time, value))

        def evaluate_gate(gname: str, time: float) -> bool:
            """Re-evaluate a gate; record and return True if its output changed."""
            gate = circuit.node(gname)
            assert isinstance(gate, GateInstance)
            values = [edge_states[e].delivered_value for e in gate_inputs[gname]]
            new_value = gate.gate_type.evaluate(values)
            if new_value == node_values[gname]:
                return False
            node_values[gname] = new_value
            record_node_transition(gname, time, new_value)
            return True

        # --- settle gates at time 0 ------------------------------------------
        # Gate initial values may be inconsistent with their input initial
        # values; the execution then has the gate switching at time 0.
        settle_changed = [g.name for g in circuit.gates()]
        if settle_changed:
            push(0.0, "settle", tuple(settle_changed))

        # --- main loop ---------------------------------------------------------
        while queue:
            time, _, kind, payload = heapq.heappop(queue)
            if time > end_time:
                break
            # Collect every event scheduled for exactly this time so that
            # gates see all their same-time input changes at once (delta
            # cycle semantics) instead of producing zero-time glitches.
            batch = [(kind, payload)]
            while queue and queue[0][0] == time:
                _, _, more_kind, more_payload = heapq.heappop(queue)
                batch.append((more_kind, more_payload))
            event_count += len(batch)
            if event_count > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "the circuit may be oscillating (raise the limit or shorten end_time)"
                )

            changed_nodes: List[str] = []
            gates_to_evaluate: List[str] = []
            for batch_kind, batch_payload in batch:
                if batch_kind == "port":
                    pname, value = batch_payload
                    if node_values[pname] != value:
                        node_values[pname] = value
                        record_node_transition(pname, time, value)
                        changed_nodes.append(pname)
                elif batch_kind == "deliver":
                    ename, value, event_id = batch_payload
                    if deliver(ename, value, event_id, time):
                        target = edge_states[ename].edge.target
                        target_node = circuit.node(target)
                        if isinstance(target_node, GateInstance):
                            if target not in gates_to_evaluate:
                                gates_to_evaluate.append(target)
                        elif isinstance(target_node, OutputPort):
                            node_values[target] = value
                            record_node_transition(target, time, value)
                elif batch_kind == "settle":
                    for gname in batch_payload:
                        if gname not in gates_to_evaluate:
                            gates_to_evaluate.append(gname)
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {batch_kind!r}")
            for gname in gates_to_evaluate:
                if evaluate_gate(gname, time):
                    changed_nodes.append(gname)

            # Zero-time propagation of changed node outputs into their channels.
            # Zero-delay channels deliver immediately (delta cycles); bounded
            # to avoid infinite combinational loops.
            delta_cycles = 0
            while changed_nodes:
                delta_cycles += 1
                if delta_cycles > 10_000:
                    raise SimulationError(
                        "combinational (zero-delay) loop detected at "
                        f"time {time:g}"
                    )
                affected_gates: List[str] = []
                direct_outputs: List[str] = []
                for nname in changed_nodes:
                    for edge in circuit.edges_from(nname):
                        state = edge_states[edge.name]
                        value = node_values[nname]
                        if isinstance(edge.channel, ZeroDelayChannel):
                            out_value = (
                                1 - value if edge.channel.inverting else value
                            )
                            state.last_input_value = value
                            if out_value == state.delivered_value:
                                continue
                            state.delivered_value = out_value
                            state.last_delivered_time = time
                            if state.delivered and state.delivered[-1].time == time:
                                state.delivered.pop()
                            else:
                                state.delivered.append(Transition(time, out_value))
                            target_node = circuit.node(edge.target)
                            if isinstance(target_node, GateInstance):
                                if edge.target not in affected_gates:
                                    affected_gates.append(edge.target)
                            elif isinstance(target_node, OutputPort):
                                node_values[edge.target] = out_value
                                record_node_transition(edge.target, time, out_value)
                        else:
                            schedule_channel_input(edge.name, time, value)
                next_changed: List[str] = []
                for gname in affected_gates:
                    if evaluate_gate(gname, time):
                        next_changed.append(gname)
                changed_nodes = next_changed

        # --- assemble the execution ------------------------------------------
        node_signals: Dict[str, Signal] = {}
        for name, node in circuit.nodes.items():
            if isinstance(node, InputPort):
                initial = inputs[name].initial_value
            elif isinstance(node, GateInstance):
                initial = node.initial_value
            else:
                driver = circuit.edges_into(name)[0]
                src = circuit.node(driver.source)
                if isinstance(src, GateInstance):
                    src_initial = src.initial_value
                else:
                    src_initial = inputs[driver.source].initial_value
                initial = driver.channel.output_initial_value(src_initial)
            node_signals[name] = Signal(
                initial, node_transitions[name], allow_negative_times=True
            )
        edge_signals = {
            ename: Signal(
                state.edge.channel.output_initial_value(
                    node_signals[state.edge.source].initial_value
                ),
                state.delivered,
                allow_negative_times=True,
            )
            for ename, state in edge_states.items()
        }
        output_signals = {
            port.name: node_signals[port.name] for port in circuit.output_ports()
        }
        return Execution(
            circuit=circuit,
            node_signals=node_signals,
            edge_signals=edge_signals,
            output_signals=output_signals,
            end_time=end_time,
            event_count=event_count,
            dropped_transitions=dropped,
        )


def simulate(
    circuit: Circuit,
    inputs: Dict[str, Signal],
    end_time: float,
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
) -> Execution:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        circuit, on_causality=on_causality, max_events=max_events
    ).run(inputs, end_time)
