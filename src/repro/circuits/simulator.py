"""Event-driven execution of circuits with single-history channels.

An *execution* of a circuit assigns a signal to every node (gate/port
output) and every edge (channel output) such that channel functions, gate
functions and initial values are respected.  Because circuits may contain
feedback loops (e.g. the SPF storage loop of Fig. 5), executions cannot be
computed by evaluating channel functions in topological order; instead they
are computed by the discrete-event engine in :mod:`repro.engine.scheduler`:

* input-port transitions are the primary events,
* gates switch in zero time when any of their inputs changes,
* every gate-output transition entering a channel schedules a tentative
  output transition after the channel's delay ``delta(T) (+ eta)``,
* a newly scheduled channel output cancels still-pending outputs of the
  same channel at later-or-equal times (transport cancellation, the same
  :class:`~repro.engine.kernel.ChannelKernel` as the offline algorithm in
  :mod:`repro.core.channel`), and no-change deliveries are suppressed.

This module is the stable public API: :class:`Simulator` and
:func:`simulate` are thin wrappers that validate/precompute the circuit
once (a :class:`~repro.engine.scheduler.CircuitTopology`) and delegate to
the :class:`~repro.engine.scheduler.Engine`.  The engine supports any
:class:`~repro.core.channel.Channel` subclass, including
:class:`~repro.core.eta_channel.EtaInvolutionChannel` with an arbitrary
adversary per channel, which realises the adversarial choice of the
admissible parameter ``H`` in the paper's definition of an execution.
"""

from __future__ import annotations

from typing import Dict

from ..core.transitions import Signal
from ..engine.errors import CausalityError, SimulationError
from ..engine.scheduler import CircuitTopology, Engine, Execution
from .circuit import Circuit

__all__ = ["SimulationError", "CausalityError", "Execution", "Simulator", "simulate"]


class Simulator:
    """Discrete-event simulator for circuits of single-history channels.

    Parameters
    ----------
    circuit:
        The circuit to simulate (validated on construction).
    on_causality:
        Policy when a channel wants to emit an output transition earlier
        than an already-delivered one: ``"error"`` raises
        :class:`CausalityError`, ``"drop"`` discards the transition.
    max_events:
        Safety bound on the number of processed events (oscillating storage
        loops can generate events forever).
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        on_causality: str = "error",
        max_events: int = 1_000_000,
    ) -> None:
        if on_causality not in ("error", "drop"):
            raise ValueError("on_causality must be 'error' or 'drop'")
        circuit.validate()
        self.circuit = circuit
        self.on_causality = on_causality
        self.max_events = int(max_events)

    def run(self, inputs: Dict[str, Signal], end_time: float) -> Execution:
        """Simulate the circuit for the given input-port signals.

        ``inputs`` maps every input-port name to its signal; transitions
        after ``end_time`` are ignored and channel outputs scheduled after
        ``end_time`` are not delivered (the returned signals are exact up
        to ``end_time``).

        The topology snapshot is taken per run (matching the seed
        simulator, which read the live circuit structure inside ``run``);
        callers that want the snapshot amortised across runs use
        :class:`~repro.engine.scheduler.Engine` or the sweep runner
        directly.
        """
        engine = Engine(
            CircuitTopology(self.circuit),
            on_causality=self.on_causality,
            max_events=self.max_events,
        )
        return engine.run(inputs, end_time)


def simulate(
    circuit: Circuit,
    inputs: Dict[str, Signal],
    end_time: float,
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
) -> Execution:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        circuit, on_causality=on_causality, max_events=max_events
    ).run(inputs, end_time)
