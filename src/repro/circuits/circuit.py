"""Circuit graphs: ports, gates and channels.

Circuits are obtained by interconnecting input/output ports and
combinational gates via channels (the model's only timing elements).
The paper's well-formedness constraints are enforced:

* gates and channels alternate on every path (automatic here, because the
  graph's nodes are ports/gates and its edges are channels),
* every gate input pin and every output port is driven by exactly one
  channel output,
* input ports have no incoming channels,
* channels from input ports are zero-delay unless stated otherwise (the
  paper assumes zero-delay port channels to ease composition; the builder
  uses :class:`~repro.core.channel.ZeroDelayChannel` when no channel is
  given).

The circuit is a plain data structure; execution lives in
:mod:`repro.circuits.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from ..core.channel import Channel, ZeroDelayChannel
from .gates import GateType

__all__ = ["CircuitError", "Node", "InputPort", "OutputPort", "GateInstance", "Edge", "Circuit"]


class CircuitError(ValueError):
    """Raised for malformed circuits (dangling pins, duplicate drivers...)."""


@dataclass(frozen=True)
class Node:
    """Base class of circuit nodes (ports and gate instances)."""

    name: str


@dataclass(frozen=True)
class InputPort(Node):
    """An external input of the circuit."""

    initial_value: int = 0


@dataclass(frozen=True)
class OutputPort(Node):
    """An external output of the circuit."""


@dataclass(frozen=True)
class GateInstance(Node):
    """An instance of a :class:`GateType` with an initial output value."""

    gate_type: GateType = None  # type: ignore[assignment]
    initial_value: int = 0

    def __post_init__(self) -> None:
        if self.gate_type is None:
            raise CircuitError("gate instance requires a gate type")
        if self.initial_value not in (0, 1):
            raise CircuitError("gate initial value must be 0 or 1")


@dataclass
class Edge:
    """A channel connecting a driver node to a target node pin.

    Attributes
    ----------
    name:
        Unique edge name (used to look up the channel's output signal in an
        execution).
    source:
        Name of the driving node (input port or gate).
    target:
        Name of the driven node (gate or output port).
    pin:
        Input pin index at the target gate (0 for output ports).
    channel:
        The channel instance modelling the edge's delay.
    """

    name: str
    source: str
    target: str
    pin: int
    channel: Channel


class Circuit:
    """A circuit: a directed multigraph of ports/gates connected by channels."""

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._edges: Dict[str, Edge] = {}
        self._edge_counter = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str, initial_value: int = 0) -> InputPort:
        """Add an external input port."""
        port = InputPort(name, initial_value)
        self._register(port)
        return port

    def add_output(self, name: str) -> OutputPort:
        """Add an external output port."""
        port = OutputPort(name)
        self._register(port)
        return port

    def add_gate(self, name: str, gate_type: GateType, initial_value: int = 0) -> GateInstance:
        """Add a gate instance with the given initial output value."""
        gate = GateInstance(name, gate_type, initial_value)
        self._register(gate)
        return gate

    def connect(
        self,
        source: str,
        target: str,
        channel: Optional[Channel] = None,
        *,
        pin: int = 0,
        name: Optional[str] = None,
    ) -> Edge:
        """Connect ``source`` to input ``pin`` of ``target`` through ``channel``.

        If no channel is given, a zero-delay channel is used (the paper's
        convention for port connections).
        """
        if source not in self._nodes:
            raise CircuitError(f"unknown source node {source!r}")
        if target not in self._nodes:
            raise CircuitError(f"unknown target node {target!r}")
        source_node = self._nodes[source]
        target_node = self._nodes[target]
        if isinstance(source_node, OutputPort):
            raise CircuitError("output ports cannot drive channels")
        if isinstance(target_node, InputPort):
            raise CircuitError("input ports cannot be driven")
        if isinstance(target_node, OutputPort) and pin != 0:
            raise CircuitError("output ports have a single pin (0)")
        if isinstance(target_node, GateInstance) and not (0 <= pin < target_node.gate_type.arity):
            raise CircuitError(
                f"gate {target!r} has {target_node.gate_type.arity} pins, pin {pin} is invalid"
            )
        for edge in self._edges.values():
            if edge.target == target and edge.pin == pin:
                raise CircuitError(
                    f"pin {pin} of {target!r} is already driven by {edge.source!r}"
                )
        if channel is None:
            channel = ZeroDelayChannel()
        if name is None:
            name = f"{source}->{target}.{pin}#{self._edge_counter}"
        if name in self._edges:
            raise CircuitError(f"duplicate edge name {name!r}")
        edge = Edge(name=name, source=source, target=target, pin=pin, channel=channel)
        self._edges[name] = edge
        self._edge_counter += 1
        return edge

    def _register(self, node: Node) -> None:
        if node.name in self._nodes:
            raise CircuitError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Dict[str, Node]:
        """All nodes by name."""
        return dict(self._nodes)

    @property
    def edges(self) -> Dict[str, Edge]:
        """All edges by name."""
        return dict(self._edges)

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise CircuitError(f"unknown node {name!r}") from None

    def edge(self, name: str) -> Edge:
        """Look up an edge by name."""
        try:
            return self._edges[name]
        except KeyError:
            raise CircuitError(f"unknown edge {name!r}") from None

    def input_ports(self) -> List[InputPort]:
        """All input ports."""
        return [n for n in self._nodes.values() if isinstance(n, InputPort)]

    def output_ports(self) -> List[OutputPort]:
        """All output ports."""
        return [n for n in self._nodes.values() if isinstance(n, OutputPort)]

    def gates(self) -> List[GateInstance]:
        """All gate instances."""
        return [n for n in self._nodes.values() if isinstance(n, GateInstance)]

    def edges_from(self, node_name: str) -> List[Edge]:
        """Edges driven by the given node."""
        return [e for e in self._edges.values() if e.source == node_name]

    def edges_into(self, node_name: str) -> List[Edge]:
        """Edges driving the given node, sorted by pin."""
        return sorted(
            (e for e in self._edges.values() if e.target == node_name),
            key=lambda e: e.pin,
        )

    def fan_in(self, node_name: str) -> int:
        """Number of channels driving the given node."""
        return len(self.edges_into(node_name))

    def has_feedback(self) -> bool:
        """True if the circuit graph contains a cycle (a storage loop)."""
        return not nx.is_directed_acyclic_graph(self.to_networkx())

    # ------------------------------------------------------------------ #
    # Declarative specs
    # ------------------------------------------------------------------ #

    def to_spec(self) -> "CircuitSpec":
        """Extract the declarative, JSON-round-trippable spec of this circuit.

        The spec (:class:`repro.specs.CircuitSpec`) preserves node and edge
        order, so ``Circuit.from_spec(circuit.to_spec())`` rebuilds a
        circuit that executes bit-identically.  Raises
        :class:`repro.specs.SpecError` if any channel or gate type has no
        registered spec kind.
        """
        from ..specs import CircuitSpec

        return CircuitSpec.from_circuit(self)

    @classmethod
    def from_spec(cls, spec) -> "Circuit":
        """Build a circuit from a :class:`repro.specs.CircuitSpec` (or dict)."""
        from ..specs import CircuitSpec

        if not isinstance(spec, CircuitSpec):
            spec = CircuitSpec.from_dict(spec)
        return spec.build()

    # ------------------------------------------------------------------ #
    # Validation / export
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the well-formedness constraints; raise :class:`CircuitError`."""
        for node in self._nodes.values():
            if isinstance(node, GateInstance):
                pins = {e.pin for e in self.edges_into(node.name)}
                expected = set(range(node.gate_type.arity))
                missing = expected - pins
                if missing:
                    raise CircuitError(
                        f"gate {node.name!r} has undriven input pins {sorted(missing)}"
                    )
            elif isinstance(node, OutputPort):
                if self.fan_in(node.name) != 1:
                    raise CircuitError(
                        f"output port {node.name!r} must be driven by exactly one channel"
                    )
            elif isinstance(node, InputPort):
                if self.edges_into(node.name):
                    raise CircuitError(f"input port {node.name!r} must not be driven")
        if not self.input_ports():
            raise CircuitError("circuit has no input ports")
        if not self.output_ports():
            raise CircuitError("circuit has no output ports")

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export the circuit as a networkx multigraph (for analysis/plotting)."""
        graph = nx.MultiDiGraph(name=self.name)
        for name, node in self._nodes.items():
            graph.add_node(name, kind=type(node).__name__, node=node)
        for edge in self._edges.values():
            graph.add_edge(
                edge.source,
                edge.target,
                key=edge.name,
                pin=edge.pin,
                channel=type(edge.channel).__name__,
            )
        return graph

    def summary(self) -> str:
        """One-line structural summary (used in logs and reports)."""
        return (
            f"Circuit {self.name!r}: {len(self.input_ports())} inputs, "
            f"{len(self.gates())} gates, {len(self.output_ports())} outputs, "
            f"{len(self._edges)} channels"
            f"{' (with feedback)' if self.has_feedback() else ''}"
        )

    def __repr__(self) -> str:
        return f"Circuit(name={self.name!r}, nodes={len(self._nodes)}, edges={len(self._edges)})"
