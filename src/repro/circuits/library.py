"""Prebuilt circuits used throughout the tests, examples and benchmarks.

All builders take their channels as either

* a :class:`~repro.specs.ChannelSpec` (or its plain-dict form) -- the
  declarative API; every edge gets a fresh ``spec.build()`` instance, so
  the resulting circuit is serialisable, hashable and shippable to the
  process sweep backend, or
* a factory callable producing a fresh channel per edge -- the original
  API, kept as a thin deprecated wrapper (factories cannot be serialised
  or compared; prefer specs for new code).

Both are normalised through :func:`repro.specs.as_channel_factory`, so the
same topology can be simulated with pure, inertial, DDM, involution or
eta-involution delay models either way.
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.channel import Channel
from .circuit import Circuit
from .gates import BUF, INV, NOR2, OR2

__all__ = [
    "ChannelFactory",
    "ChannelLike",
    "inverter_chain",
    "buffer_chain",
    "fed_back_or",
    "sr_latch_nor",
    "glitch_generator",
]

#: A callable producing a fresh channel instance for every edge it is used
#: on (the deprecated pre-spec configuration style).
ChannelFactory = Callable[[], Channel]

#: What the library builders accept wherever a per-edge channel source is
#: needed: a ChannelSpec, a channel-spec dict, or a factory callable.
ChannelLike = Union[ChannelFactory, "ChannelSpec", dict]  # noqa: F821


def _factory(channel: ChannelLike) -> ChannelFactory:
    from ..specs import as_channel_factory

    return as_channel_factory(channel)


def _single(channel: Union[Channel, "ChannelSpec", dict, None]):  # noqa: F821
    if channel is None:
        return None
    from ..specs import as_channel

    return as_channel(channel)


def inverter_chain(
    stages: int,
    channel_factory: ChannelLike,
    *,
    name: str = "inverter_chain",
    expose_taps: bool = False,
) -> Circuit:
    """A chain of ``stages`` inverters, each followed by its channel.

    This mirrors the 7-stage inverter chain of the paper's validation ASIC
    (Fig. 6).  With ``expose_taps=True`` every stage output is also routed
    to an output port ``q1 .. qN`` (the on-chip sense-amplifier taps);
    otherwise only the final stage drives the single output ``out``.

    ``channel_factory`` is a :class:`~repro.specs.ChannelSpec` (preferred)
    or a factory callable (deprecated).
    """
    if stages < 1:
        raise ValueError("an inverter chain needs at least one stage")
    factory = _factory(channel_factory)
    circuit = Circuit(name)
    circuit.add_input("in", initial_value=0)
    previous = "in"
    for i in range(1, stages + 1):
        gate_name = f"inv{i}"
        # Chain of inverters starting from 0 input: odd stages idle at 1.
        initial = i % 2
        circuit.add_gate(gate_name, INV, initial_value=initial)
        circuit.connect(previous, gate_name, factory(), pin=0)
        if expose_taps:
            tap = f"q{i}"
            circuit.add_output(tap)
            circuit.connect(gate_name, tap)
        previous = gate_name
    circuit.add_output("out")
    circuit.connect(previous, "out")
    return circuit


def buffer_chain(
    stages: int,
    channel_factory: ChannelLike,
    *,
    name: str = "buffer_chain",
) -> Circuit:
    """A chain of ``stages`` buffers (non-inverting), each with its channel."""
    if stages < 1:
        raise ValueError("a buffer chain needs at least one stage")
    factory = _factory(channel_factory)
    circuit = Circuit(name)
    circuit.add_input("in", initial_value=0)
    previous = "in"
    for i in range(1, stages + 1):
        gate_name = f"buf{i}"
        circuit.add_gate(gate_name, BUF, initial_value=0)
        circuit.connect(previous, gate_name, factory(), pin=0)
        previous = gate_name
    circuit.add_output("out")
    circuit.connect(previous, "out")
    return circuit


def fed_back_or(
    loop_channel: Union[Channel, "ChannelSpec", dict],  # noqa: F821
    *,
    input_channel: Union[Channel, "ChannelSpec", dict, None] = None,  # noqa: F821
    name: str = "fed_back_or",
) -> Circuit:
    """The storage loop of the SPF circuit: an OR gate fed back through a channel.

    The OR gate has initial value 0; its output is fed back to its second
    input through ``loop_channel`` (the eta-involution channel ``c`` of
    Fig. 5) and also drives the output port ``or_out`` directly (zero
    delay), so the analysis of Lemmas 3-8 can inspect the OR output.
    Channels may be given as instances or as channel specs.
    """
    circuit = Circuit(name)
    circuit.add_input("i", initial_value=0)
    circuit.add_gate("or", OR2, initial_value=0)
    circuit.add_output("or_out")
    circuit.connect("i", "or", _single(input_channel), pin=0)
    circuit.connect("or", "or", _single(loop_channel), pin=1, name="feedback")
    circuit.connect("or", "or_out")
    return circuit


def sr_latch_nor(
    channel_factory: ChannelLike,
    *,
    name: str = "sr_latch",
) -> Circuit:
    """A cross-coupled NOR SR latch (two feedback loops).

    Used as an additional storage-loop example beyond the SPF circuit; with
    involution channels its metastable behaviour (oscillation for marginal
    input pulses) can be explored.
    """
    factory = _factory(channel_factory)
    circuit = Circuit(name)
    circuit.add_input("s", initial_value=0)
    circuit.add_input("r", initial_value=0)
    circuit.add_gate("nor_q", NOR2, initial_value=1)
    circuit.add_gate("nor_qbar", NOR2, initial_value=0)
    circuit.add_output("q")
    circuit.add_output("qbar")
    circuit.connect("r", "nor_q", factory(), pin=0)
    circuit.connect("nor_qbar", "nor_q", factory(), pin=1)
    circuit.connect("s", "nor_qbar", factory(), pin=0)
    circuit.connect("nor_q", "nor_qbar", factory(), pin=1)
    circuit.connect("nor_q", "q")
    circuit.connect("nor_qbar", "qbar")
    return circuit


def glitch_generator(
    path_channel: Union[Channel, "ChannelSpec", dict],  # noqa: F821
    direct_channel: Union[Channel, "ChannelSpec", dict],  # noqa: F821
    *,
    name: str = "glitch_generator",
) -> Circuit:
    """An XOR of a signal with a delayed copy of itself.

    Every input transition produces an output glitch whose width equals the
    difference of the two path delays -- a classic static-hazard circuit
    used to generate short pulses for the model-comparison benchmarks.
    Channels may be given as instances or as channel specs.
    """
    from .gates import XOR2

    circuit = Circuit(name)
    circuit.add_input("in", initial_value=0)
    circuit.add_gate("xor", XOR2, initial_value=0)
    circuit.add_output("out")
    circuit.connect("in", "xor", _single(direct_channel), pin=0)
    circuit.connect("in", "xor", _single(path_channel), pin=1)
    circuit.connect("xor", "out")
    return circuit
