"""Zero-time Boolean gates.

In the circuit model of the paper, a *gate* is characterised by a
(zero-time) Boolean function and an initial Boolean value that defines its
output until time 0.  All timing behaviour lives in the channels attached
to the gate; the gate itself switches instantaneously.

:class:`GateType` bundles the Boolean function with a name and arity;
:data:`GATE_LIBRARY` provides the usual combinational gates.  Arbitrary
functions (e.g. majority, truth tables) can be defined with
:meth:`GateType.from_function` or :meth:`GateType.from_truth_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

__all__ = [
    "GateType",
    "GATE_LIBRARY",
    "BUF",
    "INV",
    "AND2",
    "OR2",
    "NAND2",
    "NOR2",
    "XOR2",
    "XNOR2",
    "AND3",
    "OR3",
    "MUX2",
    "MAJ3",
]


@dataclass(frozen=True)
class GateType:
    """A combinational gate type.

    Attributes
    ----------
    name:
        Human-readable name (also used when printing circuits).
    arity:
        Number of input pins.
    function:
        Callable mapping a tuple of ``arity`` Boolean values (0/1 ints) to
        the output value.
    """

    name: str
    arity: int
    function: Callable[[Tuple[int, ...]], int] = field(compare=False)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError("gate arity must be at least 1")

    def evaluate(self, inputs: Sequence[int]) -> int:
        """Evaluate the gate on the given input values."""
        if len(inputs) != self.arity:
            raise ValueError(
                f"gate {self.name} expects {self.arity} inputs, got {len(inputs)}"
            )
        values = tuple(int(bool(v)) for v in inputs)
        result = self.function(values)
        if result not in (0, 1):
            raise ValueError(f"gate {self.name} returned non-Boolean value {result!r}")
        return result

    def __call__(self, *inputs: int) -> int:
        return self.evaluate(inputs)

    # ------------------------------------------------------------------ #
    # Alternative constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_function(cls, name: str, arity: int, function: Callable[..., int]) -> "GateType":
        """Build a gate type from a function taking ``arity`` separate args."""
        return cls(name, arity, lambda values: int(bool(function(*values))))

    @classmethod
    def from_truth_table(cls, name: str, arity: int, table: Dict[Tuple[int, ...], int]) -> "GateType":
        """Build a gate type from an explicit truth table.

        Missing rows default to 0.
        """
        frozen = {tuple(int(v) for v in key): int(bool(val)) for key, val in table.items()}
        return cls(name, arity, lambda values: frozen.get(values, 0))

    def truth_table(self) -> Dict[Tuple[int, ...], int]:
        """Enumerate the full truth table of the gate."""
        table = {}
        for index in range(2 ** self.arity):
            row = tuple((index >> bit) & 1 for bit in reversed(range(self.arity)))
            table[row] = self.evaluate(row)
        return table

    def __reduce__(self):
        # Gate functions are typically lambdas (unpicklable), but every
        # zero-time Boolean gate is fully described by its truth table, so
        # gate types pickle by table instead -- which is what makes whole
        # circuits picklable and the process-based sweep backend possible.
        # Library gates restore to the registry instance (keeping the
        # hand-written function, which is faster than a table lookup).
        return (
            _restore_gate_type,
            (self.name, self.arity, tuple(sorted(self.truth_table().items()))),
        )


def _restore_gate_type(name: str, arity: int, rows: Tuple[Tuple[Tuple[int, ...], int], ...]) -> "GateType":
    """Unpickle a :class:`GateType` (library instance or truth-table rebuild).

    The library short-circuit requires the shipped truth table to match --
    a custom gate that merely reuses a library name must restore to its
    own function, not the library's.
    """
    library_gate = GATE_LIBRARY.get(name)
    if (
        library_gate is not None
        and library_gate.arity == arity
        and tuple(sorted(library_gate.truth_table().items())) == tuple(rows)
    ):
        return library_gate
    return GateType.from_truth_table(name, arity, dict(rows))


BUF = GateType("BUF", 1, lambda v: v[0])
INV = GateType("INV", 1, lambda v: 1 - v[0])
AND2 = GateType("AND2", 2, lambda v: v[0] & v[1])
OR2 = GateType("OR2", 2, lambda v: v[0] | v[1])
NAND2 = GateType("NAND2", 2, lambda v: 1 - (v[0] & v[1]))
NOR2 = GateType("NOR2", 2, lambda v: 1 - (v[0] | v[1]))
XOR2 = GateType("XOR2", 2, lambda v: v[0] ^ v[1])
XNOR2 = GateType("XNOR2", 2, lambda v: 1 - (v[0] ^ v[1]))
AND3 = GateType("AND3", 3, lambda v: v[0] & v[1] & v[2])
OR3 = GateType("OR3", 3, lambda v: v[0] | v[1] | v[2])
MUX2 = GateType("MUX2", 3, lambda v: v[1] if v[0] else v[2])
MAJ3 = GateType("MAJ3", 3, lambda v: int(v[0] + v[1] + v[2] >= 2))

#: Registry of the predefined gate types by name.
GATE_LIBRARY: Dict[str, GateType] = {
    g.name: g
    for g in (BUF, INV, AND2, OR2, NAND2, NOR2, XOR2, XNOR2, AND3, OR3, MUX2, MAJ3)
}
