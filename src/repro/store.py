"""Content-addressed artifact store for experiment results and sweep chunks.

Results are keyed by the SHA-256 of their *resolved* experiment spec's
canonical JSON -- the same canonical form that gives specs value semantics
-- so a store lookup asks exactly "has this experiment, with these
parameters, been computed before?".  Execution knobs (backend, worker
count) are deliberately absent from the key: the sweep runner's determinism
guarantee makes them result-neutral, so a result computed on the process
backend is a valid cache hit for a sequential rerun.

Layout mirrors git's object store: ``<root>/<key[:2]>/<key>.json``, one
canonical-JSON :class:`~repro.experiments.base.ExperimentResult` per file.
Writes go through a uniquely named temp file + rename so concurrent sweep
workers never observe a torn artifact, and a writer that dies mid-write
leaves at most one stale ``*.tmp-*`` file that :meth:`ArtifactStore.gc_tmp`
reclaims.  ``run(..., cache=...)`` entry points
(:func:`repro.experiments.run_experiment`, :func:`repro.api.experiment`,
``repro experiment run --cache``) consult the store before computing,
which is what makes large experiment sweeps resumable.

Beyond whole experiments, the store also holds *generic JSON payloads*
addressed the same way (:meth:`ArtifactStore.put_payload` /
:meth:`ArtifactStore.get_payload`); the sharded sweep runner
(:mod:`repro.engine.shard`) uses those for its per-chunk checkpoints, so
a killed sweep resumes from exactly the chunks that finished.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .specs import _canonical_key

__all__ = ["ArtifactStore", "as_store"]


class ArtifactStore:
    """A directory of spec-hash-addressed artifacts (results and payloads)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    # -- keys -------------------------------------------------------------- #

    @staticmethod
    def key_for(spec) -> str:
        """Content hash of a spec (or spec dict): SHA-256 of canonical JSON.

        :class:`~repro.specs.ExperimentSpec` instances should be resolved
        (defaults merged) before keying so spelled-out defaults and omitted
        ones address the same artifact; :func:`repro.experiments.run_experiment`
        does that resolution for every caller.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        # The exact canonical form that gives specs their value semantics.
        text = _canonical_key(payload)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, spec) -> Path:
        """Where the artifact for ``spec`` lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- atomic writes ----------------------------------------------------- #

    @staticmethod
    def _tmp_for(path: Path) -> Path:
        # Unique per write: pid alone collides for two threads of one
        # process (and a recycled pid could adopt a dead writer's file),
        # so a random token joins it.  The name never ends in ".json" --
        # `paths()` must not see half-written artifacts.
        return path.with_name(f"{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}")

    def _write_atomic(self, path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self._tmp_for(path)
        try:
            tmp.write_text(text)
            tmp.replace(path)
        except BaseException:
            # A writer that fails between write and rename must not leak
            # its temp file; gc_tmp() only exists for writers that *die*.
            tmp.unlink(missing_ok=True)
            raise

    def _damage_report(self, path: Path, expected_spec: Dict[str, Any]) -> Optional[str]:
        """Why the artifact at ``path`` fails verification, or ``None`` if OK."""
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return "unparseable JSON (truncated or torn write)"
        if not isinstance(data, dict):
            return "not a JSON object"
        if data.get("spec") != expected_spec:
            return "embedded spec does not match the key (hand-edited artifact?)"
        return None

    def _warn_if_replacing_damaged(self, path: Path, spec_dict: Dict[str, Any]) -> None:
        if not path.exists():
            return
        damage = self._damage_report(path, spec_dict)
        if damage is not None:
            warnings.warn(
                f"replacing damaged artifact at {path}: {damage}",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- access ------------------------------------------------------------ #

    def get(self, spec):
        """The stored :class:`ExperimentResult` for ``spec``, or ``None``.

        A stored file that cannot be parsed (truncated write, newer result
        version) or whose embedded spec does not match the requested one
        (hand-edited artifact, hash collision) is treated as a miss rather
        than returned wrongly -- a damaged artifact must never break the
        resumability it exists to provide; ``put`` overwrites it (with a
        :class:`RuntimeWarning` naming the damaged file).
        """
        from .experiments.base import ExperimentResult

        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            result = ExperimentResult.from_json(path.read_text())
        except (OSError, ValueError):
            # ValueError covers both json.JSONDecodeError and SpecError.
            return None
        requested = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        if result.spec.to_dict() != requested:
            return None
        return result

    def put(self, result) -> Path:
        """Store a result under its spec's key; returns the artifact path.

        Overwriting an artifact that fails verification (corrupt JSON, or
        an embedded spec that does not match its key) emits a
        :class:`RuntimeWarning` naming the path -- silently papering over
        a damaged file would hide store corruption from its owner.
        """
        path = self.path_for(result.spec)
        self._warn_if_replacing_damaged(path, result.spec.to_dict())
        self._write_atomic(path, result.to_json() + "\n")
        return path

    def __contains__(self, spec) -> bool:
        """True iff :meth:`get` would return a result (not mere file existence)."""
        return self.get(spec) is not None

    # -- generic JSON payloads --------------------------------------------- #

    def _payload_path(self, spec_dict: Dict[str, Any], key: Optional[str]) -> Path:
        """Artifact path for a payload spec, honouring a precomputed key.

        ``key`` must be ``key_for(spec)`` for the same spec; callers that
        already hold the hash (the sharded runner keys every chunk up
        front) pass it to skip re-canonicalising a large spec dict on
        every store round-trip.  A wrong key is harmless on read -- the
        embedded-spec check turns it into a miss -- and on write produces
        an artifact that can only ever miss, never alias another spec.
        """
        if key is not None:
            return self.root / key[:2] / f"{key}.json"
        return self.path_for(spec_dict)

    def put_payload(
        self, spec, payload: Dict[str, Any], *, fmt: str, key: Optional[str] = None
    ) -> Path:
        """Store an arbitrary JSON payload under ``spec``'s key.

        The artifact embeds the spec dict and the ``fmt`` tag, so
        :meth:`get_payload` can verify both before trusting the content.
        Used by the sharded sweep runner for per-chunk checkpoints.
        ``key`` optionally supplies the precomputed ``key_for(spec)``.
        """
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        path = self._payload_path(spec_dict, key)
        self._warn_if_replacing_damaged(path, spec_dict)
        envelope = {"format": fmt, "version": 1, "spec": spec_dict, "payload": payload}
        self._write_atomic(
            path, json.dumps(envelope, sort_keys=True, separators=(",", ":")) + "\n"
        )
        return path

    def get_payload(
        self, spec, *, fmt: str, key: Optional[str] = None
    ) -> Optional[Dict[str, Any]]:
        """The stored payload for ``spec`` (and format ``fmt``), or ``None``.

        Mirrors :meth:`get`: a torn, hand-edited, format-mismatched or
        spec-mismatched artifact is a miss, never an error -- the caller
        recomputes and :meth:`put_payload` repairs the damaged entry.
        ``key`` optionally supplies the precomputed ``key_for(spec)``.
        """
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        path = self._payload_path(spec_dict, key)
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("format") != fmt:
            return None
        if data.get("spec") != spec_dict:
            return None
        payload = data.get("payload")
        return payload if isinstance(payload, dict) else None

    # -- maintenance ------------------------------------------------------- #

    def paths(self) -> List[Path]:
        """All artifact files currently in the store, sorted."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.paths())

    def gc_tmp(self, *, max_age_s: float = 3600.0) -> int:
        """Remove stale ``*.tmp-*`` files left by writers that died mid-write.

        Only files older than ``max_age_s`` seconds are reclaimed, so a
        *live* sweep's in-flight chunk writers are never raced -- an atomic
        write holds its temp file for milliseconds, not an hour.  The
        sharded sweep runner calls this on every checkpointed run, which
        keeps a store that survived crashes from accumulating litter.
        Returns the number of files removed.
        """
        if not self.root.exists():
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for tmp in list(self.root.glob("*/*.tmp-*")) + list(self.root.glob("*.tmp-*")):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # a concurrent writer renamed or removed it first
        return removed

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed.

        Shard subdirectories (``<key[:2]>/``) left empty by the deletions
        are pruned as well -- a cleared store should not keep hundreds of
        empty two-character directories around.  Directories still holding
        non-artifact files (stale temp files, say) are kept; run
        :meth:`gc_tmp` first for a full cleanup.
        """
        removed = 0
        for path in self.paths():
            path.unlink()
            removed += 1
        if self.root.exists():
            for sub in self.root.iterdir():
                if sub.is_dir() and next(sub.iterdir(), None) is None:
                    sub.rmdir()
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


def as_store(obj) -> ArtifactStore:
    """Coerce an ArtifactStore or a directory path to an ArtifactStore."""
    if isinstance(obj, ArtifactStore):
        return obj
    if isinstance(obj, (str, Path)):
        return ArtifactStore(obj)
    raise TypeError(f"cannot interpret {type(obj).__name__} as an artifact store")
