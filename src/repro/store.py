"""Content-addressed artifact store for experiment results.

Results are keyed by the SHA-256 of their *resolved* experiment spec's
canonical JSON -- the same canonical form that gives specs value semantics
-- so a store lookup asks exactly "has this experiment, with these
parameters, been computed before?".  Execution knobs (backend, worker
count) are deliberately absent from the key: the sweep runner's determinism
guarantee makes them result-neutral, so a result computed on the process
backend is a valid cache hit for a sequential rerun.

Layout mirrors git's object store: ``<root>/<key[:2]>/<key>.json``, one
canonical-JSON :class:`~repro.experiments.base.ExperimentResult` per file.
Writes go through a temp file + rename so concurrent sweep workers never
observe a torn artifact.  ``run(..., cache=...)`` entry points
(:func:`repro.experiments.run_experiment`, :func:`repro.api.experiment`,
``repro experiment run --cache``) consult the store before computing,
which is what makes large experiment sweeps resumable.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import List, Union

from .specs import _canonical_key

__all__ = ["ArtifactStore", "as_store"]


class ArtifactStore:
    """A directory of experiment results addressed by spec hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    # -- keys -------------------------------------------------------------- #

    @staticmethod
    def key_for(spec) -> str:
        """Content hash of a spec (or spec dict): SHA-256 of canonical JSON.

        :class:`~repro.specs.ExperimentSpec` instances should be resolved
        (defaults merged) before keying so spelled-out defaults and omitted
        ones address the same artifact; :func:`repro.experiments.run_experiment`
        does that resolution for every caller.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        # The exact canonical form that gives specs their value semantics.
        text = _canonical_key(payload)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, spec) -> Path:
        """Where the artifact for ``spec`` lives (whether or not it exists)."""
        key = self.key_for(spec)
        return self.root / key[:2] / f"{key}.json"

    # -- access ------------------------------------------------------------ #

    def get(self, spec):
        """The stored :class:`ExperimentResult` for ``spec``, or ``None``.

        A stored file that cannot be parsed (truncated write, newer result
        version) or whose embedded spec does not match the requested one
        (hand-edited artifact, hash collision) is treated as a miss rather
        than returned wrongly -- a damaged artifact must never break the
        resumability it exists to provide; ``put`` overwrites it.
        """
        from .experiments.base import ExperimentResult

        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            result = ExperimentResult.from_json(path.read_text())
        except (OSError, ValueError):
            # ValueError covers both json.JSONDecodeError and SpecError.
            return None
        requested = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        if result.spec.to_dict() != requested:
            return None
        return result

    def put(self, result) -> Path:
        """Store a result under its spec's key; returns the artifact path."""
        path = self.path_for(result.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_text(result.to_json() + "\n")
        tmp.replace(path)
        return path

    def __contains__(self, spec) -> bool:
        """True iff :meth:`get` would return a result (not mere file existence)."""
        return self.get(spec) is not None

    # -- maintenance ------------------------------------------------------- #

    def paths(self) -> List[Path]:
        """All artifact files currently in the store, sorted."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.paths())

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for path in self.paths():
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


def as_store(obj) -> ArtifactStore:
    """Coerce an ArtifactStore or a directory path to an ArtifactStore."""
    if isinstance(obj, ArtifactStore):
        return obj
    if isinstance(obj, (str, Path)):
        return ArtifactStore(obj)
    raise TypeError(f"cannot interpret {type(obj).__name__} as an artifact store")
