"""Experiment FIG9: fitting an exp-channel to measured delay data.

Fig. 9 of the paper evaluates question (c) of Section V: can the behaviour
of the real inverter be matched with a (suitably parametrised) simple
exp-channel instead of the full measured delay function?  The answer is
"only near T = 0": the fitted exp-channel mispredicts mildly for small
``T`` (the region relevant for faithfulness) but its deviation grows with
``T`` and exceeds the admissible eta band there.

This driver characterises the stage, fits the exp-channel, and evaluates
the deviation of the fitted model against the measured samples together
with the eta band of the *fitted* pair (as in the paper, where the band is
derived from the delay function used for prediction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..analog.chain import AnalogInverterChain
from ..analog.technology import Technology, UMC90
from ..fitting.characterize import CharacterizationDriver, DelayMeasurement
from ..fitting.eta_coverage import DeviationAnalysis, compute_deviations, eta_band
from ..fitting.exp_fit import ExpFitResult, fit_exp_channel
from .fig8 import _default_widths

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    """Outcome of the exp-channel fitting experiment."""

    fit: ExpFitResult
    measurement: DelayMeasurement
    analysis: DeviationAnalysis
    summary: Dict[str, float]

    def rows(self):
        """Single-row table for reporting."""
        row = {
            "tau": self.fit.tau,
            "t_p": self.fit.t_p,
            "v_th": self.fit.v_th,
            "rms_residual": self.fit.rms_residual,
            "max_residual": self.fit.max_residual,
        }
        row.update(self.summary)
        return [row]


def run_fig9(
    technology: Technology = UMC90,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 24,
    eta_plus: Optional[float] = None,
    fit_threshold: bool = True,
) -> Fig9Result:
    """Characterise a stage, fit an exp-channel and analyse its deviations."""
    widths = _default_widths(technology, n_widths)
    chain = AnalogInverterChain(technology, stages=stages)
    driver = CharacterizationDriver(chain, stage_index=stage_index)
    measurement = driver.measure(widths, label="nominal")
    fit = fit_exp_channel(measurement, fit_threshold=fit_threshold)
    fitted_pair = fit.pair()
    if eta_plus is None:
        eta_plus = 0.2 * fitted_pair.delta_min
    band = eta_band(fitted_pair, eta_plus)
    analysis = compute_deviations(measurement, fitted_pair, eta=band, label="exp fit")
    return Fig9Result(
        fit=fit,
        measurement=measurement,
        analysis=analysis,
        summary=analysis.summary(),
    )
