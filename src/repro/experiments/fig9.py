"""Experiment FIG9: fitting an exp-channel to measured delay data.

Fig. 9 of the paper evaluates question (c) of Section V: can the behaviour
of the real inverter be matched with a (suitably parametrised) simple
exp-channel instead of the full measured delay function?  The answer is
"only near T = 0": the fitted exp-channel mispredicts mildly for small
``T`` (the region relevant for faithfulness) but its deviation grows with
``T`` and exceeds the admissible eta band there.

This driver characterises the stage, fits the exp-channel, and evaluates
the deviation of the fitted model against the measured samples together
with the eta band of the *fitted* pair (as in the paper, where the band is
derived from the delay function used for prediction).  It is the
registered ``fig9`` experiment kind; :func:`run_fig9` is the deprecated
wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..analog.chain import AnalogInverterChain
from ..analog.technology import Technology, UMC90, as_technology
from ..fitting.characterize import CharacterizationDriver, DelayMeasurement
from ..fitting.eta_coverage import DeviationAnalysis, compute_deviations, eta_band
from ..fitting.exp_fit import ExpFitResult, fit_exp_channel
from ..specs import register_experiment_kind
from .base import ExperimentOutcome, maybe_spec_params, run_via_spec, technology_param
from .fig8 import _default_widths

__all__ = ["Fig9Result", "run_fig9"]


@dataclass
class Fig9Result:
    """Outcome of the exp-channel fitting experiment."""

    fit: ExpFitResult
    measurement: DelayMeasurement
    analysis: DeviationAnalysis
    summary: Dict[str, float]

    def rows(self):
        """Single-row table for reporting."""
        row = {
            "tau": self.fit.tau,
            "t_p": self.fit.t_p,
            "v_th": self.fit.v_th,
            "rms_residual": self.fit.rms_residual,
            "max_residual": self.fit.max_residual,
        }
        row.update(self.summary)
        return [row]


def _run_fig9(
    technology: Union[Technology, str, dict] = UMC90,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 24,
    eta_plus: Optional[float] = None,
    fit_threshold: bool = True,
) -> Fig9Result:
    """Characterise a stage, fit an exp-channel and analyse its deviations."""
    technology = as_technology(technology)
    widths = _default_widths(technology, n_widths)
    chain = AnalogInverterChain(technology, stages=stages)
    driver = CharacterizationDriver(chain, stage_index=stage_index)
    measurement = driver.measure(widths, label="nominal")
    fit = fit_exp_channel(measurement, fit_threshold=fit_threshold)
    fitted_pair = fit.pair()
    if eta_plus is None:
        eta_plus = 0.2 * fitted_pair.delta_min
    band = eta_band(fitted_pair, eta_plus)
    analysis = compute_deviations(measurement, fitted_pair, eta=band, label="exp fit")
    return Fig9Result(
        fit=fit,
        measurement=measurement,
        analysis=analysis,
        summary=analysis.summary(),
    )


def run_fig9(
    technology: Union[Technology, str, dict] = UMC90,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 24,
    eta_plus: Optional[float] = None,
    fit_threshold: bool = True,
) -> Fig9Result:
    """Characterise a stage, fit an exp-channel and analyse its deviations.

    .. deprecated::
        Prefer ``repro.api.experiment("fig9", {...})``; this wrapper routes
        speccable arguments through the canonical path and only falls back
        to a direct call for custom :class:`Technology` subclasses.
    """
    params = maybe_spec_params(
        lambda: {
            "technology": technology_param(technology),
            "stages": int(stages),
            "stage_index": int(stage_index),
            "n_widths": int(n_widths),
            "eta_plus": None if eta_plus is None else float(eta_plus),
            "fit_threshold": bool(fit_threshold),
        }
    )
    if params is not None:
        return run_via_spec("fig9", params)
    return _run_fig9(
        technology,
        stages=stages,
        stage_index=stage_index,
        n_widths=n_widths,
        eta_plus=eta_plus,
        fit_threshold=fit_threshold,
    )


def _fig9_experiment(params: dict, context) -> ExperimentOutcome:
    result = _run_fig9(
        params["technology"],
        stages=params["stages"],
        stage_index=params["stage_index"],
        n_widths=params["n_widths"],
        eta_plus=params["eta_plus"],
        fit_threshold=params["fit_threshold"],
    )
    return ExperimentOutcome(
        rows=result.rows(),
        summary={
            "tau": result.fit.tau,
            "t_p": result.fit.t_p,
            "v_th": result.fit.v_th,
            "n_fit_samples": result.fit.n_samples,
        },
        raw=result,
    )


register_experiment_kind(
    "fig9",
    _fig9_experiment,
    description=(
        "Exp-channel fit (Fig. 9): fit tau/t_p/v_th to the measured delay "
        "samples and analyse the fitted model's deviations against its "
        "own eta band"
    ),
    defaults={
        "technology": "UMC90",
        "stages": 3,
        "stage_index": 1,
        "n_widths": 24,
        "eta_plus": None,
        "fit_threshold": True,
    },
)
