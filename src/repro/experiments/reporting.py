"""Plain-text reporting helpers shared by benchmarks and examples.

The benchmark harness prints, for every reproduced table/figure, the same
kind of rows the paper reports; these helpers format lists of dictionaries
as aligned text tables without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_value", "print_table"]


def format_value(value: object, precision: int = 4) -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            # Deliberate scientific notation for very large/small magnitudes:
            # `g` alone keeps e.g. 0.0001235 in fixed notation, which makes
            # columns of mixed magnitudes hard to scan.  `precision` counts
            # significant digits, hence the exponent-format precision - 1.
            return f"{value:.{max(precision - 1, 0)}e}"
        return f"{value:.{precision}g}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(format_value(v, precision) for v in value) + "]"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> None:
    """Print :func:`format_table` output."""
    print(format_table(rows, columns=columns, precision=precision, title=title))
