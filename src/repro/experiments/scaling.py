"""Experiment SIM: event-driven simulator throughput.

The paper argues that involution channels "can easily be used with existing
tools" for dynamic timing analysis; the practical counterpart in this
reproduction is the throughput of the event-driven simulator.  This driver
measures events per second over circuit size and stimulus length, which the
benchmark harness reports alongside the figure reproductions.  It is the
registered ``scaling`` experiment kind; :func:`run_scaling` is the
deprecated wrapper.  The event counts are deterministic; the ``seconds``,
``events_per_second`` and ``backend`` columns describe the *measurement*
that produced the rows (wall clock, execution strategy) and therefore
vary between otherwise-equal reruns.  Because the artifact store keys on
the spec alone, a cached scaling artifact returns the measurement it was
taken with -- rerun with ``force=True`` (``--force``) to re-measure under
a different backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..circuits.library import inverter_chain
from ..core.adversary import RandomAdversary
from ..core.constraint import admissible_eta_bound
from ..core.eta_channel import EtaInvolutionChannel
from ..core.involution import InvolutionPair
from ..core.transitions import Signal
from ..engine.scheduler import CircuitTopology, Engine
from ..specs import register_experiment_kind
from .base import ExperimentOutcome, channel_param, maybe_spec_params, run_via_spec

__all__ = ["ScalingSample", "run_scaling"]


@dataclass
class ScalingSample:
    """Throughput measurement for one circuit size.

    ``backend`` records the execution strategy that *actually* ran --
    e.g. a requested ``process`` backend degrades to ``sequential`` for
    this single-scenario workload (``run_many`` only fans out families),
    and ``vector`` may fall back for unvectorizable channels; rows must
    not label sequential measurements with a parallel backend name.
    """

    stages: int
    input_transitions: int
    events: int
    seconds: float
    backend: str = "sequential"

    @property
    def events_per_second(self) -> float:
        """Processed simulation events per wall-clock second."""
        if self.seconds <= 0:
            return float("inf")
        return self.events / self.seconds


def _run_scaling(
    stage_counts: Sequence[int] = (4, 8, 16, 32),
    *,
    input_transitions: int = 200,
    tau: float = 1.0,
    t_p: float = 0.5,
    eta_plus: float = 0.05,
    seed: int = 3,
    use_eta: bool = True,
    channel=None,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    observed: Optional[dict] = None,
) -> List[ScalingSample]:
    """Measure simulator throughput for chains of increasing depth.

    ``channel`` optionally overrides the per-stage channel: a
    :class:`~repro.specs.ChannelSpec` (or spec dict, or factory callable)
    replaces the default eta/involution exp-channel built from
    ``tau``/``t_p``/``eta_plus``.  ``backend`` selects the
    :func:`~repro.engine.sweep.run_many` execution strategy whose
    throughput is measured -- ``"vector"`` opts the sweep into the
    NumPy-vectorized batch engine (falling back, with a warning, for
    channels it cannot express); event counts are backend-independent.
    """
    pair = InvolutionPair.exp_channel(tau, t_p)
    eta = admissible_eta_bound(pair, eta_plus)

    if channel is not None:
        from ..specs import as_channel_factory

        factory = as_channel_factory(channel)
    elif use_eta:
        def factory():
            return EtaInvolutionChannel(
                InvolutionPair.exp_channel(tau, t_p), eta, RandomAdversary(seed=seed)
            )
    else:
        def factory():
            from ..core.involution_channel import InvolutionChannel

            return InvolutionChannel(InvolutionPair.exp_channel(tau, t_p))

    rng = np.random.default_rng(seed)
    # A random but well-separated transition sequence (no transition closer
    # than the channel's delta_min, so little cancellation distorts the count).
    gaps = rng.uniform(2.0 * t_p, 6.0 * t_p, size=input_transitions)
    times = np.cumsum(gaps) + 1.0
    stimulus = Signal.from_times([float(t) for t in times])
    end_time = float(times[-1]) + 20.0 * (t_p + tau) * max(stage_counts)

    samples: List[ScalingSample] = []
    for stages in stage_counts:
        circuit = inverter_chain(int(stages), factory)
        # Validation/topology precomputation happens outside the timed
        # region, so the sample measures pure execution throughput.
        topology = CircuitTopology(circuit)
        if backend == "sequential":
            engine = Engine(topology, max_events=10_000_000)
            start = time.perf_counter()
            execution = engine.run({"in": stimulus}, end_time)
            elapsed = time.perf_counter() - start
            ran_backend = "sequential"
        else:
            from ..engine.sweep import Scenario, run_many

            scenario = Scenario(
                name=f"scaling[{int(stages)}]",
                inputs={"in": stimulus},
                end_time=end_time,
            )
            start = time.perf_counter()
            sweep = run_many(
                topology,
                [scenario],
                max_events=10_000_000,
                backend=backend,
                max_workers=max_workers,
            )
            elapsed = time.perf_counter() - start
            # run_many records what actually executed: thread/process
            # degrade to sequential for a single scenario, vector may
            # fall back -- the published row must say so.
            ran_backend = sweep.backend or backend
            if ran_backend != backend:
                # The timed window above included the discarded vector
                # attempt (or pool setup of a degraded parallel request);
                # re-measure under the backend that actually ran so the
                # row's throughput is a genuine measurement.
                start = time.perf_counter()
                sweep = run_many(
                    topology,
                    [scenario],
                    max_events=10_000_000,
                    backend=ran_backend,
                    max_workers=max_workers,
                )
                elapsed = time.perf_counter() - start
            execution = sweep.runs[0].execution
        samples.append(
            ScalingSample(
                stages=int(stages),
                input_transitions=input_transitions,
                events=execution.event_count,
                seconds=elapsed,
                backend=ran_backend,
            )
        )
        if observed is not None:
            observed["backend_executed"] = ran_backend
    return samples


def run_scaling(
    stage_counts: Sequence[int] = (4, 8, 16, 32),
    *,
    input_transitions: int = 200,
    tau: float = 1.0,
    t_p: float = 0.5,
    eta_plus: float = 0.05,
    seed: int = 3,
    use_eta: bool = True,
    channel=None,
) -> List[ScalingSample]:
    """Measure simulator throughput for chains of increasing depth.

    .. deprecated::
        Prefer ``repro.api.experiment("scaling", {...})``; this wrapper
        routes speccable arguments through the canonical path and only
        falls back to a direct call for unspeccable channel factories.
    """
    params = maybe_spec_params(
        lambda: {
            "stage_counts": [int(s) for s in stage_counts],
            "input_transitions": int(input_transitions),
            "tau": float(tau),
            "t_p": float(t_p),
            "eta_plus": float(eta_plus),
            "seed": int(seed),
            "use_eta": bool(use_eta),
            "channel": None if channel is None else channel_param(channel),
        }
    )
    if params is not None:
        return run_via_spec("scaling", params)
    return _run_scaling(
        stage_counts,
        input_transitions=input_transitions,
        tau=tau,
        t_p=t_p,
        eta_plus=eta_plus,
        seed=seed,
        use_eta=use_eta,
        channel=channel,
    )


def _scaling_experiment(params: dict, context) -> ExperimentOutcome:
    samples = _run_scaling(
        params["stage_counts"],
        input_transitions=params["input_transitions"],
        tau=params["tau"],
        t_p=params["t_p"],
        eta_plus=params["eta_plus"],
        seed=params["seed"],
        use_eta=params["use_eta"],
        channel=params["channel"],
        backend=context.backend,
        max_workers=context.max_workers,
        observed=context.observed,
    )
    rows = [
        {
            "stages": sample.stages,
            "input_transitions": sample.input_transitions,
            "events": sample.events,
            "seconds": sample.seconds,
            "events_per_second": sample.events_per_second,
            "backend": sample.backend,
        }
        for sample in samples
    ]
    return ExperimentOutcome(
        rows=rows,
        summary={"total_events": sum(s.events for s in samples)},
        raw=samples,
    )


register_experiment_kind(
    "scaling",
    _scaling_experiment,
    description=(
        "Simulator throughput scaling: events per second of the event loop "
        "over inverter-chain depth (event counts deterministic, timings "
        "wall-clock)"
    ),
    defaults={
        "stage_counts": [4, 8, 16, 32],
        "input_transitions": 200,
        "tau": 1.0,
        "t_p": 0.5,
        "eta_plus": 0.05,
        "seed": 3,
        "use_eta": True,
        "channel": None,
    },
)
