"""Experiment SIM: event-driven simulator throughput.

The paper argues that involution channels "can easily be used with existing
tools" for dynamic timing analysis; the practical counterpart in this
reproduction is the throughput of the event-driven simulator.  This driver
measures events per second over circuit size and stimulus length, which the
benchmark harness reports alongside the figure reproductions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..circuits.library import inverter_chain
from ..core.adversary import RandomAdversary
from ..core.constraint import admissible_eta_bound
from ..core.eta_channel import EtaInvolutionChannel
from ..core.involution import InvolutionPair
from ..core.transitions import Signal
from ..engine.scheduler import CircuitTopology, Engine

__all__ = ["ScalingSample", "run_scaling"]


@dataclass
class ScalingSample:
    """Throughput measurement for one circuit size."""

    stages: int
    input_transitions: int
    events: int
    seconds: float

    @property
    def events_per_second(self) -> float:
        """Processed simulation events per wall-clock second."""
        if self.seconds <= 0:
            return float("inf")
        return self.events / self.seconds


def run_scaling(
    stage_counts: Sequence[int] = (4, 8, 16, 32),
    *,
    input_transitions: int = 200,
    tau: float = 1.0,
    t_p: float = 0.5,
    eta_plus: float = 0.05,
    seed: int = 3,
    use_eta: bool = True,
    channel=None,
) -> List[ScalingSample]:
    """Measure simulator throughput for chains of increasing depth.

    ``channel`` optionally overrides the per-stage channel: a
    :class:`~repro.specs.ChannelSpec` (or spec dict, or factory callable)
    replaces the default eta/involution exp-channel built from
    ``tau``/``t_p``/``eta_plus``.
    """
    pair = InvolutionPair.exp_channel(tau, t_p)
    eta = admissible_eta_bound(pair, eta_plus)

    if channel is not None:
        from ..specs import as_channel_factory

        factory = as_channel_factory(channel)
    elif use_eta:
        def factory():
            return EtaInvolutionChannel(
                InvolutionPair.exp_channel(tau, t_p), eta, RandomAdversary(seed=seed)
            )
    else:
        def factory():
            from ..core.involution_channel import InvolutionChannel

            return InvolutionChannel(InvolutionPair.exp_channel(tau, t_p))

    rng = np.random.default_rng(seed)
    # A random but well-separated transition sequence (no transition closer
    # than the channel's delta_min, so little cancellation distorts the count).
    gaps = rng.uniform(2.0 * t_p, 6.0 * t_p, size=input_transitions)
    times = np.cumsum(gaps) + 1.0
    stimulus = Signal.from_times([float(t) for t in times])
    end_time = float(times[-1]) + 20.0 * (t_p + tau) * max(stage_counts)

    samples: List[ScalingSample] = []
    for stages in stage_counts:
        circuit = inverter_chain(int(stages), factory)
        # Validation/topology precomputation happens outside the timed
        # region, so the sample measures pure event-loop throughput.
        engine = Engine(CircuitTopology(circuit), max_events=10_000_000)
        start = time.perf_counter()
        execution = engine.run({"in": stimulus}, end_time)
        elapsed = time.perf_counter() - start
        samples.append(
            ScalingSample(
                stages=int(stages),
                input_transitions=input_transitions,
                events=execution.event_count,
                seconds=elapsed,
            )
        )
    return samples
