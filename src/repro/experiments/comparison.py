"""Experiment CMP: glitch-train propagation under the different delay models.

The introduction of the paper motivates the involution model by the
behaviour of the industry-standard models on fast glitch trains: pure
delays propagate every glitch unchanged, inertial delays remove all
glitches below their window in a single stage (solving bounded-time SPF,
which no physical circuit can), and the DDM attenuates glitches gradually
but is still a bounded single-history channel and hence non-faithful.
Involution/eta-involution channels attenuate glitches gradually *and*
remain faithful.

This driver propagates a train of narrow pulses through an inverter chain
modelled with each of the channel families and records how many pulses
survive at every stage -- reproducing the qualitative comparison that
motivates the paper (and Fig. 2's pulse-attenuation behaviour).  It is the
registered ``comparison`` experiment kind; :func:`run_model_comparison` is
the thin deprecated wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..circuits.library import inverter_chain
from ..core.channel import Channel
from ..core.constraint import admissible_eta_bound
from ..core.involution import InvolutionPair
from ..core.transitions import Signal
from ..engine.sweep import Scenario, channel_overrides, run_many
from ..specs import AdversarySpec, ChannelSpec, register_experiment_kind
from .base import (
    ExperimentOutcome,
    channel_param,
    maybe_spec_params,
    run_via_spec,
)

__all__ = ["ModelComparisonResult", "run_model_comparison", "default_model_factories"]


def default_model_factories(
    tau: float = 1.0,
    t_p: float = 0.5,
    *,
    eta_plus: float = 0.05,
    seed: int = 11,
) -> Dict[str, ChannelSpec]:
    """Channel specs with comparable nominal delays for all model families.

    The nominal (saturated) delay of the involution exp-channel is
    ``t_p + tau*ln(2)``; the pure/inertial/DDM channels are parametrised to
    the same nominal delay so the comparison isolates the glitch handling.
    Earlier revisions returned factory callables; the returned
    :class:`~repro.specs.ChannelSpec` objects are accepted everywhere
    factories were (:func:`repro.specs.as_channel_factory`).
    """
    pair = InvolutionPair.exp_channel(tau, t_p)
    nominal_delay = pair.delta_up_inf
    eta = admissible_eta_bound(pair, eta_plus)
    return {
        "pure": ChannelSpec("pure", delay=nominal_delay),
        "inertial": ChannelSpec("inertial", delay=nominal_delay, window=t_p),
        "ddm": ChannelSpec("ddm", delta_nominal=nominal_delay, tau_deg=tau),
        "involution": ChannelSpec.exp_involution(tau, t_p),
        "eta_involution": ChannelSpec.exp_eta_involution(
            tau, t_p, eta, adversary=AdversarySpec("random", seed=seed)
        ),
    }


@dataclass
class ModelComparisonResult:
    """Surviving pulse counts per model and stage."""

    pulse_width: float
    pulse_count: int
    stage_survivors: Dict[str, List[int]]
    output_transitions: Dict[str, int]

    def rows(self) -> List[Dict[str, object]]:
        """One row per model for reporting."""
        rows = []
        for model, survivors in sorted(self.stage_survivors.items()):
            rows.append(
                {
                    "model": model,
                    "input_pulses": self.pulse_count,
                    "survivors_per_stage": survivors,
                    "output_transitions": self.output_transitions[model],
                }
            )
        return rows


def _run_model_comparison(
    *,
    stages: int = 5,
    pulse_width: float = 0.4,
    gap: float = 0.6,
    pulse_count: int = 8,
    tau: float = 1.0,
    t_p: float = 0.5,
    factories: Optional[Dict[str, object]] = None,
    end_time: float = 200.0,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    record_traces: bool = False,
    observed: Optional[Dict[str, object]] = None,
) -> Tuple[ModelComparisonResult, Optional[Dict[str, dict]]]:
    """The model-comparison implementation (shared by wrapper and kind runner).

    Every model uses the same chain topology; the recorded metric is the
    number of surviving pulses at each stage output (either polarity, since
    stages invert), plus the raw transition count at the final output.
    ``factories`` values may be factory callables (deprecated) or
    :class:`~repro.specs.ChannelSpec` objects / spec dicts.
    """
    from ..specs import as_channel_factory

    if factories is None:
        factories = default_model_factories(tau, t_p)
    factories = {
        model: as_channel_factory(channel) for model, channel in factories.items()
    }
    stimulus = Signal.pulse_train(
        1.0, [pulse_width] * pulse_count, [gap] * (pulse_count - 1)
    )
    # Every model shares the same chain topology; scenarios only swap the
    # per-stage channels, so the circuit is validated/precomputed once.
    first_factory = next(iter(factories.values()))
    circuit = inverter_chain(stages, first_factory, expose_taps=True)
    scenarios = [
        Scenario(
            name=model,
            inputs={"in": stimulus},
            end_time=end_time,
            channels=channel_overrides(circuit, lambda edge: factory()),
        )
        for model, factory in factories.items()
    ]
    sweep = run_many(
        circuit,
        scenarios,
        max_events=2_000_000,
        backend=backend,
        max_workers=max_workers,
    )
    if observed is not None:
        # Provenance records the strategy that actually ran (a vector
        # request may have fallen back for unvectorizable channels).
        observed["backend_executed"] = sweep.backend or backend

    stage_survivors: Dict[str, List[int]] = {}
    output_transitions: Dict[str, int] = {}
    traces: Optional[Dict[str, dict]] = {} if record_traces else None
    for run in sweep:
        model = run.scenario.name
        execution = run.execution
        survivors = []
        for stage in range(1, stages + 1):
            signal = execution.output_signals[f"q{stage}"]
            polarity = 0 if stage % 2 == 1 else 1
            survivors.append(len(signal.pulses(polarity)))
        stage_survivors[model] = survivors
        output_transitions[model] = len(execution.output_signals["out"])
        if traces is not None:
            from ..io.netlist import signal_to_dict

            traces[f"{model}.out"] = signal_to_dict(
                execution.output_signals["out"]
            )
    return (
        ModelComparisonResult(
            pulse_width=pulse_width,
            pulse_count=pulse_count,
            stage_survivors=stage_survivors,
            output_transitions=output_transitions,
        ),
        traces,
    )


def run_model_comparison(
    *,
    stages: int = 5,
    pulse_width: float = 0.4,
    gap: float = 0.6,
    pulse_count: int = 8,
    tau: float = 1.0,
    t_p: float = 0.5,
    factories: Optional[Dict[str, Callable[[], Channel]]] = None,
    end_time: float = 200.0,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
) -> ModelComparisonResult:
    """Propagate a narrow-pulse train through an inverter chain per model.

    .. deprecated::
        Prefer ``repro.api.experiment("comparison", {...})``; this wrapper
        routes speccable arguments through the canonical path and only
        falls back to a direct call for unspeccable channel factories.
    """
    params = maybe_spec_params(
        lambda: {
            "stages": int(stages),
            "pulse_width": float(pulse_width),
            "gap": float(gap),
            "pulse_count": int(pulse_count),
            "tau": float(tau),
            "t_p": float(t_p),
            "factories": (
                None
                if factories is None
                else {
                    model: channel_param(factory)
                    for model, factory in factories.items()
                }
            ),
            "end_time": float(end_time),
            "record_traces": False,
        }
    )
    if params is not None:
        return run_via_spec(
            "comparison", params, backend=backend, max_workers=max_workers
        )
    result, _ = _run_model_comparison(
        stages=stages,
        pulse_width=pulse_width,
        gap=gap,
        pulse_count=pulse_count,
        tau=tau,
        t_p=t_p,
        factories=factories,
        end_time=end_time,
        backend=backend,
        max_workers=max_workers,
    )
    return result


def _comparison_experiment(params: dict, context) -> ExperimentOutcome:
    result, traces = _run_model_comparison(
        stages=params["stages"],
        pulse_width=params["pulse_width"],
        gap=params["gap"],
        pulse_count=params["pulse_count"],
        tau=params["tau"],
        t_p=params["t_p"],
        factories=params["factories"],
        end_time=params["end_time"],
        backend=context.backend,
        max_workers=context.max_workers,
        record_traces=bool(params["record_traces"]),
        observed=context.observed,
    )
    return ExperimentOutcome(
        rows=result.rows(),
        summary={
            "pulse_width": result.pulse_width,
            "pulse_count": result.pulse_count,
            "models": sorted(result.stage_survivors),
        },
        traces=traces,
        raw=result,
    )


register_experiment_kind(
    "comparison",
    _comparison_experiment,
    description=(
        "Delay-model comparison: propagate a narrow glitch train through an "
        "inverter chain under pure/inertial/DDM/involution/eta-involution "
        "channels and count surviving pulses per stage"
    ),
    defaults={
        "stages": 5,
        "pulse_width": 0.4,
        "gap": 0.6,
        "pulse_count": 8,
        "tau": 1.0,
        "t_p": 0.5,
        "factories": None,
        "end_time": 200.0,
        "record_traces": False,
    },
)
