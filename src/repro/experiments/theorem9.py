"""Experiments THM9 and LEM5: storage-loop regimes and fixed-point quantities.

Theorem 9 of the paper partitions the input pulse lengths of the fed-back
OR (Fig. 5) into three regimes; Lemma 5/6 bound the up-times, periods and
duty cycles of any infinite pulse train in the marginal regime.  These
drivers

* sweep the input pulse length across the three regimes and compare the
  analytical classification against event-driven simulations under several
  adversaries (THM9), and
* sweep the noise bound ``eta_plus`` and tabulate ``tau``, ``Delta``,
  ``P``, ``gamma`` and ``Delta_0_tilde`` (LEM5).

Both are registered experiment kinds (``theorem9``, ``lemma5``); the
:func:`run_theorem9` / :func:`run_lemma5_sweep` entry points are thin
deprecated wrappers that route speccable arguments through the canonical
:func:`repro.experiments.run_experiment` path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.library import fed_back_or
from ..core.adversary import Adversary, EtaBound, ZeroAdversary
from ..core.constraint import admissible_eta_bound
from ..core.eta_channel import EtaInvolutionChannel
from ..core.involution import InvolutionPair
from ..core.transitions import Signal
from ..engine.sweep import Scenario, run_many
from ..specs import AdversarySpec, register_experiment_kind
from ..spf.analysis import SPFAnalysis, SPFRegime
from .base import (
    ExperimentOutcome,
    adversary_param,
    eta_param,
    maybe_spec_params,
    pair_param,
    run_via_spec,
)

__all__ = [
    "RegimeObservation",
    "Theorem9Result",
    "run_theorem9",
    "run_lemma5_sweep",
    "default_adversaries",
]

#: Default parameters of the exp-channel pair used when none is given.
_DEFAULT_PAIR = {"kind": "exp", "tau": 1.0, "t_p": 0.5, "v_th": 0.5}


def default_adversaries(seed: int = 7) -> Dict[str, AdversarySpec]:
    """The adversary set used by the Theorem 9 sweep (as declarative specs).

    Earlier revisions returned factory callables; every entry point coerces
    through :func:`repro.specs.as_adversary_factory`, which accepts both,
    so callables still work where callers pass their own.
    """
    return {
        "zero": AdversarySpec("zero"),
        "worst": AdversarySpec("worst"),
        "best": AdversarySpec("best"),
        "random": AdversarySpec("random", seed=seed),
    }


@dataclass
class RegimeObservation:
    """One (pulse length, adversary) simulation of the storage loop."""

    delta_0: float
    adversary: str
    regime: str
    final_value: int
    n_pulses: int
    max_up_time: float
    max_duty_cycle: float
    stabilization_time: float
    consistent: bool


@dataclass
class Theorem9Result:
    """All observations of the regime sweep plus the analysis quantities."""

    analysis_summary: Dict[str, float]
    observations: List[RegimeObservation]

    def rows(self) -> List[Dict[str, object]]:
        """Flat table for reporting."""
        return [vars(obs) for obs in self.observations]

    @property
    def all_consistent(self) -> bool:
        """True if every observation is consistent with Theorem 9 / Lemma 5/6."""
        return all(obs.consistent for obs in self.observations)


def _check_consistency(
    analysis: SPFAnalysis, regime: str, delta_0: float, output: Signal
) -> bool:
    """Is an observed OR-output signal consistent with Theorem 9 and Lemma 5/6?"""
    pulses = output.pulses()
    loop_pulses = pulses[1:]  # pulse 0 is the input pulse itself
    tolerance = 1e-6 * max(1.0, analysis.delta_bound)
    if regime == SPFRegime.LATCHED:
        # Single rising transition at time 0, no falling transition.
        return len(output) == 1 and output.final_value == 1
    if regime == SPFRegime.CANCELLED:
        # Output contains only the input pulse.
        return (
            len(pulses) == 1
            and abs(pulses[0].length - delta_0) <= 1e-6 * max(1.0, delta_0)
            and output.final_value == 0
        )
    # Marginal regime: any loop pulse train must respect the Lemma 5/6 bounds
    # as long as it keeps oscillating; trains that die or latch are fine.
    if output.final_value == 1:
        return True
    for pulse in loop_pulses:
        if pulse.length > analysis.delta_bound + tolerance:
            # A pulse exceeding Delta must lead to latching (Lemma 7); since
            # the output resolved to 0 instead, this would be inconsistent --
            # unless it is the direct response to the input pulse itself.
            return False
    return True


def _run_theorem9(
    pair: Union[InvolutionPair, dict],
    eta: Optional[Union[EtaBound, dict]] = None,
    *,
    eta_plus: float = 0.05,
    pulse_lengths: Optional[Sequence[float]] = None,
    adversaries: Optional[Dict[str, object]] = None,
    end_time: float = 400.0,
    max_events: int = 2_000_000,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    record_traces: bool = False,
    observed: Optional[Dict[str, object]] = None,
) -> Tuple[Theorem9Result, Optional[Dict[str, dict]]]:
    """The Theorem 9 sweep implementation (shared by wrapper and kind runner).

    For each (pulse length, adversary) pair the fed-back OR is simulated and
    the observed output is checked against the analytical predictions.
    ``pair``/``eta`` may be given as live objects or as their declarative
    spec dicts (:mod:`repro.specs`); adversary factories may be
    :class:`~repro.specs.AdversarySpec` objects, spec dicts, or callables.
    """
    from ..specs import as_adversary_factory, as_eta, as_pair

    pair = as_pair(pair)
    if eta is None:
        eta = admissible_eta_bound(pair, eta_plus)
    else:
        eta = as_eta(eta)
    analysis = SPFAnalysis(pair, eta)
    if pulse_lengths is None:
        low = max(analysis.cancel_threshold, 0.05 * analysis.delta_min)
        high = analysis.latch_threshold
        pulse_lengths = np.concatenate(
            [
                np.linspace(0.25 * low, 0.95 * low, 4),
                np.linspace(1.01 * low, 0.99 * high, 10),
                np.linspace(1.01 * high, 1.6 * high, 4),
            ]
        )
    if adversaries is None:
        adversaries = default_adversaries()
    adversaries = {
        name: as_adversary_factory(factory) for name, factory in adversaries.items()
    }

    # One shared storage-loop topology; every (adversary, pulse length)
    # point only overrides the feedback channel, so circuit validation and
    # adjacency precomputation are paid exactly once for the whole sweep.
    circuit = fed_back_or(EtaInvolutionChannel(pair, eta, ZeroAdversary()))
    scenarios = [
        Scenario(
            name=f"{name}@{float(delta_0):g}",
            inputs={"i": Signal.pulse(0.0, float(delta_0))},
            end_time=end_time,
            channels={"feedback": EtaInvolutionChannel(pair, eta, factory())},
            metadata={"adversary": name, "delta_0": float(delta_0)},
        )
        for name, factory in adversaries.items()
        for delta_0 in pulse_lengths
    ]
    sweep = run_many(
        circuit,
        scenarios,
        max_events=max_events,
        backend=backend,
        max_workers=max_workers,
    )
    if observed is not None:
        # Provenance must record the strategy that actually ran (the
        # cyclic loop vectorizes via the fixpoint schedule, but a
        # dynamic hazard can still drop a run to the scalar engine).
        observed["backend_executed"] = sweep.backend or backend

    observations: List[RegimeObservation] = []
    traces: Optional[Dict[str, dict]] = {} if record_traces else None
    for run in sweep:
        delta_0 = run.scenario.metadata["delta_0"]
        name = run.scenario.metadata["adversary"]
        output = run.execution.output_signals["or_out"]
        regime = analysis.classify(delta_0)
        pulses = output.pulses()
        loop_pulses = pulses[1:]
        duty_cycles = output.duty_cycles()[1:]
        observations.append(
            RegimeObservation(
                delta_0=delta_0,
                adversary=name,
                regime=regime,
                final_value=output.final_value,
                n_pulses=len(pulses),
                max_up_time=max((p.length for p in loop_pulses), default=0.0),
                max_duty_cycle=max(duty_cycles, default=0.0),
                stabilization_time=output.stabilization_time(),
                consistent=_check_consistency(analysis, regime, delta_0, output),
            )
        )
        if traces is not None:
            from ..io.netlist import signal_to_dict

            traces[f"{run.scenario.name}.or_out"] = signal_to_dict(output)
    return (
        Theorem9Result(analysis_summary=analysis.summary(), observations=observations),
        traces,
    )


def _theorem9_params(
    pair, eta, eta_plus, pulse_lengths, adversaries, end_time, max_events
) -> Optional[dict]:
    """Speccify the wrapper arguments, or ``None`` if any is unspeccable."""

    def build() -> dict:
        return {
            "pair": pair_param(pair),
            "eta": eta_param(eta),
            "eta_plus": float(eta_plus),
            "pulse_lengths": (
                None
                if pulse_lengths is None
                else [float(x) for x in pulse_lengths]
            ),
            "adversaries": (
                None
                if adversaries is None
                else {
                    name: adversary_param(factory)
                    for name, factory in adversaries.items()
                }
            ),
            "end_time": float(end_time),
            "max_events": int(max_events),
            "record_traces": False,
        }

    return maybe_spec_params(build)


def run_theorem9(
    pair: Union[InvolutionPair, dict],
    eta: Optional[Union[EtaBound, dict]] = None,
    *,
    eta_plus: float = 0.05,
    pulse_lengths: Optional[Sequence[float]] = None,
    adversaries: Optional[Dict[str, Callable[[], Adversary]]] = None,
    end_time: float = 400.0,
    max_events: int = 2_000_000,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
) -> Theorem9Result:
    """Sweep input pulse lengths across the Theorem 9 regimes.

    .. deprecated::
        Prefer ``repro.api.experiment("theorem9", {...})`` (or
        ``ExperimentSpec("theorem9", ...).run()``) -- this wrapper routes
        speccable arguments through that canonical path and only falls
        back to a direct call for unspeccable live objects (e.g. closure
        factories for unregistered adversary classes).
    """
    params = _theorem9_params(
        pair, eta, eta_plus, pulse_lengths, adversaries, end_time, max_events
    )
    if params is not None:
        return run_via_spec(
            "theorem9", params, backend=backend, max_workers=max_workers
        )
    result, _ = _run_theorem9(
        pair,
        eta,
        eta_plus=eta_plus,
        pulse_lengths=pulse_lengths,
        adversaries=adversaries,
        end_time=end_time,
        max_events=max_events,
        backend=backend,
        max_workers=max_workers,
    )
    return result


def _run_lemma5(
    pair: Union[InvolutionPair, dict],
    eta_plus_values: Sequence[float],
    *,
    back_off: float = 1e-3,
) -> List[Dict[str, float]]:
    """Tabulate the Lemma 5/6/8 quantities over a sweep of ``eta_plus``."""
    from ..specs import as_pair

    pair = as_pair(pair)
    rows: List[Dict[str, float]] = []
    for eta_plus in eta_plus_values:
        eta = admissible_eta_bound(pair, float(eta_plus), back_off=back_off)
        analysis = SPFAnalysis(pair, eta)
        row = analysis.summary()
        rows.append({k: float(v) for k, v in row.items()})
    return rows


def run_lemma5_sweep(
    pair: Union[InvolutionPair, dict],
    eta_plus_values: Sequence[float],
    *,
    back_off: float = 1e-3,
) -> List[Dict[str, float]]:
    """Tabulate the Lemma 5/6/8 quantities over a sweep of ``eta_plus``.

    For each ``eta_plus`` the maximal admissible ``eta_minus`` (backed off
    to keep constraint (C) strict) is used; the row records ``tau``,
    ``Delta``, ``gamma``, ``Delta_0_tilde`` and the regime boundaries.

    .. deprecated::
        Prefer ``repro.api.experiment("lemma5", {...})``; see
        :func:`run_theorem9`.
    """
    params = maybe_spec_params(
        lambda: {
            "pair": pair_param(pair),
            "eta_plus_values": [float(x) for x in eta_plus_values],
            "back_off": float(back_off),
        }
    )
    if params is not None:
        return run_via_spec("lemma5", params)
    return _run_lemma5(pair, eta_plus_values, back_off=back_off)


# --------------------------------------------------------------------------- #
# Registered experiment kinds
# --------------------------------------------------------------------------- #


def _theorem9_experiment(params: dict, context) -> ExperimentOutcome:
    result, traces = _run_theorem9(
        params["pair"],
        params["eta"],
        eta_plus=params["eta_plus"],
        pulse_lengths=params["pulse_lengths"],
        adversaries=params["adversaries"],
        end_time=params["end_time"],
        max_events=params["max_events"],
        backend=context.backend,
        max_workers=context.max_workers,
        record_traces=bool(params["record_traces"]),
        observed=context.observed,
    )
    return ExperimentOutcome(
        rows=result.rows(),
        summary=dict(result.analysis_summary),
        traces=traces,
        raw=result,
    )


def _lemma5_experiment(params: dict, context) -> ExperimentOutcome:
    rows = _run_lemma5(
        params["pair"], params["eta_plus_values"], back_off=params["back_off"]
    )
    return ExperimentOutcome(rows=rows, raw=rows)


register_experiment_kind(
    "theorem9",
    _theorem9_experiment,
    description=(
        "Storage-loop regime sweep (Theorem 9): simulate the fed-back OR "
        "across pulse lengths and adversaries, checking each run against "
        "the analytical regime classification"
    ),
    defaults={
        "pair": _DEFAULT_PAIR,
        "eta": None,
        "eta_plus": 0.05,
        "pulse_lengths": None,
        "adversaries": None,
        "end_time": 400.0,
        "max_events": 2_000_000,
        "record_traces": False,
    },
)

register_experiment_kind(
    "lemma5",
    _lemma5_experiment,
    description=(
        "Fixed-point quantities (Lemma 5/6/8): tabulate tau, Delta, gamma "
        "and the regime boundaries over an eta_plus sweep"
    ),
    defaults={
        "pair": _DEFAULT_PAIR,
        "eta_plus_values": [0.0, 0.02, 0.05, 0.1],
        "back_off": 1e-3,
    },
)
