"""Experiment FIG8: eta-band coverage of deviations under variations.

Fig. 8 of the paper plots the deviation ``D`` between the crossings
predicted by a reference (nominal) involution delay function and the actual
crossings of the circuit under three kinds of variation:

* (a) 1 % sine ripple on the supply voltage with random phase per pulse,
* (b) transistor widths increased by 10 %,
* (c) transistor widths decreased by 10 %,

together with the admissible eta band (``eta_plus`` chosen, ``eta_minus``
maximal under constraint (C)).  The qualitative findings to reproduce:

* small variations (a, b) are fully covered by the band, at least for
  small ``T``,
* the 10 % narrower transistors (c) exceed the band as ``T`` grows,
* the absolute deviation grows with ``T`` in all cases, so coverage is
  best exactly in the small-``T`` region relevant for faithfulness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analog.chain import AnalogInverterChain
from ..analog.technology import Technology, UMC90
from ..analog.variations import VariationScenario, standard_variations
from ..core.involution import InvolutionPair
from ..engine.sweep import sweep_map
from ..fitting.characterize import CharacterizationDriver, DelayMeasurement
from ..fitting.eta_coverage import DeviationAnalysis, compute_deviations, eta_band

__all__ = ["Fig8Scenario", "Fig8Result", "run_fig8", "DEFAULT_SCENARIOS"]

#: The three variation scenarios of Fig. 8.
DEFAULT_SCENARIOS = ("supply_1pct", "width_plus10", "width_minus10")


@dataclass
class Fig8Scenario:
    """One deviation analysis (one subplot of Fig. 8)."""

    name: str
    analysis: DeviationAnalysis
    summary: Dict[str, float]


@dataclass
class Fig8Result:
    """All scenarios plus the reference pair and band used."""

    scenarios: Dict[str, Fig8Scenario]
    reference: InvolutionPair
    eta_plus: float

    def rows(self) -> List[Dict[str, object]]:
        """Flat table (one row per scenario) for reporting."""
        rows = []
        for name in sorted(self.scenarios):
            entry = dict(self.scenarios[name].summary)
            entry["scenario"] = name
            rows.append(entry)
        return rows


def _default_widths(technology: Technology, n_widths: int) -> np.ndarray:
    """Pulse-width sweep biased towards narrow pulses.

    Narrow pulses probe the small-``T`` (pulse-attenuation) region of the
    delay function, which dominates both the ``delta_min`` estimate of the
    reference pair and the faithfulness-relevant part of the eta band, so
    well over half of the sweep is spent there.
    """
    unit = technology.intrinsic_delay + max(
        technology.tau_pull_up(technology.vdd_nominal),
        technology.tau_pull_down(technology.vdd_nominal),
    )
    narrow = np.linspace(0.3 * unit, 1.6 * unit, (2 * n_widths) // 3)
    wide = np.linspace(1.8 * unit, 8.0 * unit, n_widths - len(narrow))
    return np.concatenate([narrow, wide])


def run_fig8(
    technology: Technology = UMC90,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 20,
    eta_plus: Optional[float] = None,
    supply_amplitude: float = 0.01,
    seed: int = 2018,
    max_workers: Optional[int] = None,
) -> Fig8Result:
    """Run the Fig. 8 deviation/coverage experiment.

    The reference delay pair is characterised under nominal conditions;
    each scenario re-characterises the same stage under its variation
    (built by :func:`repro.analog.variations.standard_variations`) and
    compares against the reference.  ``eta_plus`` defaults to 20 % of the
    reference ``delta_min`` (a "suitable value" in the paper's words);
    ``eta_minus`` is then maximal under constraint (C).  The independent
    per-scenario characterisations fan out over
    :func:`repro.engine.sweep.sweep_map` threads (sequential unless
    ``max_workers`` is set); the numpy-heavy analog re-characterisation
    releases the GIL, so threads scale here, while the event-driven eta
    sweeps should prefer ``run_many(backend="process")``.
    """
    widths = _default_widths(technology, n_widths)
    nominal_chain = AnalogInverterChain(technology, stages=stages)
    nominal_driver = CharacterizationDriver(nominal_chain, stage_index=stage_index)
    reference_measurement = nominal_driver.measure(widths, label="nominal")
    reference = reference_measurement.to_involution_pair()
    if eta_plus is None:
        eta_plus = 0.2 * reference.delta_min
    band = eta_band(reference, eta_plus)

    available = {
        variation.name: variation
        for variation in standard_variations(
            technology, supply_amplitude=supply_amplitude, seed=seed
        )
    }
    unknown = [name for name in scenarios if name not in available]
    if unknown:
        raise ValueError(f"unknown scenario {unknown[0]!r}")

    def characterise(variation: VariationScenario) -> Fig8Scenario:
        chain = AnalogInverterChain(variation.technology, stages=stages)
        driver = CharacterizationDriver(
            chain, stage_index=stage_index, supply=variation.supply
        )
        measurement = driver.measure(widths, label=variation.name)
        analysis = compute_deviations(
            measurement, reference, eta=band, label=variation.name
        )
        return Fig8Scenario(
            name=variation.name, analysis=analysis, summary=analysis.summary()
        )

    characterised = sweep_map(
        characterise,
        [available[name] for name in scenarios],
        max_workers=max_workers,
    )
    results = {scenario.name: scenario for scenario in characterised}
    return Fig8Result(scenarios=results, reference=reference, eta_plus=float(eta_plus))
