"""Experiment FIG8: eta-band coverage of deviations under variations.

Fig. 8 of the paper plots the deviation ``D`` between the crossings
predicted by a reference (nominal) involution delay function and the actual
crossings of the circuit under three kinds of variation:

* (a) 1 % sine ripple on the supply voltage with random phase per pulse,
* (b) transistor widths increased by 10 %,
* (c) transistor widths decreased by 10 %,

together with the admissible eta band (``eta_plus`` chosen, ``eta_minus``
maximal under constraint (C)).  The qualitative findings to reproduce:

* small variations (a, b) are fully covered by the band, at least for
  small ``T``,
* the 10 % narrower transistors (c) exceed the band as ``T`` grows,
* the absolute deviation grows with ``T`` in all cases, so coverage is
  best exactly in the small-``T`` region relevant for faithfulness.

The registered ``fig8`` experiment kind runs this analysis declaratively;
:func:`run_fig8` is the deprecated wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..analog.chain import AnalogInverterChain
from ..analog.technology import Technology, UMC90, as_technology
from ..analog.variations import VariationScenario, standard_variations
from ..core.involution import InvolutionPair
from ..engine.sweep import sweep_map
from ..fitting.characterize import CharacterizationDriver
from ..fitting.eta_coverage import DeviationAnalysis, compute_deviations, eta_band
from ..specs import register_experiment_kind
from .base import ExperimentOutcome, maybe_spec_params, run_via_spec, technology_param

__all__ = ["Fig8Scenario", "Fig8Result", "run_fig8", "DEFAULT_SCENARIOS"]

#: The three variation scenarios of Fig. 8.
DEFAULT_SCENARIOS = ("supply_1pct", "width_plus10", "width_minus10")


@dataclass
class Fig8Scenario:
    """One deviation analysis (one subplot of Fig. 8)."""

    name: str
    analysis: DeviationAnalysis
    summary: Dict[str, float]


@dataclass
class Fig8Result:
    """All scenarios plus the reference pair and band used."""

    scenarios: Dict[str, Fig8Scenario]
    reference: InvolutionPair
    eta_plus: float

    def rows(self) -> List[Dict[str, object]]:
        """Flat table (one row per scenario) for reporting."""
        rows = []
        for name in sorted(self.scenarios):
            entry = dict(self.scenarios[name].summary)
            entry["scenario"] = name
            rows.append(entry)
        return rows


def _default_widths(technology: Technology, n_widths: int) -> np.ndarray:
    """Pulse-width sweep biased towards narrow pulses.

    Narrow pulses probe the small-``T`` (pulse-attenuation) region of the
    delay function, which dominates both the ``delta_min`` estimate of the
    reference pair and the faithfulness-relevant part of the eta band, so
    well over half of the sweep is spent there.
    """
    unit = technology.intrinsic_delay + max(
        technology.tau_pull_up(technology.vdd_nominal),
        technology.tau_pull_down(technology.vdd_nominal),
    )
    narrow = np.linspace(0.3 * unit, 1.6 * unit, (2 * n_widths) // 3)
    wide = np.linspace(1.8 * unit, 8.0 * unit, n_widths - len(narrow))
    return np.concatenate([narrow, wide])


def _run_fig8(
    technology: Union[Technology, str, dict] = UMC90,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 20,
    eta_plus: Optional[float] = None,
    supply_amplitude: float = 0.01,
    seed: int = 2018,
    max_workers: Optional[int] = None,
) -> Fig8Result:
    """The Fig. 8 deviation/coverage implementation.

    The reference delay pair is characterised under nominal conditions;
    each scenario re-characterises the same stage under its variation
    (built by :func:`repro.analog.variations.standard_variations`) and
    compares against the reference.  ``eta_plus`` defaults to 20 % of the
    reference ``delta_min`` (a "suitable value" in the paper's words);
    ``eta_minus`` is then maximal under constraint (C).  The independent
    per-scenario characterisations fan out over
    :func:`repro.engine.sweep.sweep_map` threads (sequential unless
    ``max_workers`` is set); the numpy-heavy analog re-characterisation
    releases the GIL, so threads scale here, while the event-driven eta
    sweeps should prefer ``run_many(backend="process")``.
    """
    technology = as_technology(technology)
    widths = _default_widths(technology, n_widths)
    nominal_chain = AnalogInverterChain(technology, stages=stages)
    nominal_driver = CharacterizationDriver(nominal_chain, stage_index=stage_index)
    reference_measurement = nominal_driver.measure(widths, label="nominal")
    reference = reference_measurement.to_involution_pair()
    if eta_plus is None:
        eta_plus = 0.2 * reference.delta_min
    band = eta_band(reference, eta_plus)

    available = {
        variation.name: variation
        for variation in standard_variations(
            technology, supply_amplitude=supply_amplitude, seed=seed
        )
    }
    unknown = [name for name in scenarios if name not in available]
    if unknown:
        raise ValueError(f"unknown scenario {unknown[0]!r}")

    def characterise(variation: VariationScenario) -> Fig8Scenario:
        chain = AnalogInverterChain(variation.technology, stages=stages)
        driver = CharacterizationDriver(
            chain, stage_index=stage_index, supply=variation.supply
        )
        measurement = driver.measure(widths, label=variation.name)
        analysis = compute_deviations(
            measurement, reference, eta=band, label=variation.name
        )
        return Fig8Scenario(
            name=variation.name, analysis=analysis, summary=analysis.summary()
        )

    characterised = sweep_map(
        characterise,
        [available[name] for name in scenarios],
        max_workers=max_workers,
    )
    results = {scenario.name: scenario for scenario in characterised}
    return Fig8Result(scenarios=results, reference=reference, eta_plus=float(eta_plus))


def run_fig8(
    technology: Union[Technology, str, dict] = UMC90,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 20,
    eta_plus: Optional[float] = None,
    supply_amplitude: float = 0.01,
    seed: int = 2018,
    max_workers: Optional[int] = None,
) -> Fig8Result:
    """Run the Fig. 8 deviation/coverage experiment.

    .. deprecated::
        Prefer ``repro.api.experiment("fig8", {...})``; this wrapper routes
        speccable arguments through the canonical path and only falls back
        to a direct call for custom :class:`Technology` subclasses.
    """
    params = maybe_spec_params(
        lambda: {
            "technology": technology_param(technology),
            "scenarios": [str(s) for s in scenarios],
            "stages": int(stages),
            "stage_index": int(stage_index),
            "n_widths": int(n_widths),
            "eta_plus": None if eta_plus is None else float(eta_plus),
            "supply_amplitude": float(supply_amplitude),
            "seed": int(seed),
        }
    )
    if params is not None:
        return run_via_spec("fig8", params, max_workers=max_workers)
    return _run_fig8(
        technology,
        scenarios,
        stages=stages,
        stage_index=stage_index,
        n_widths=n_widths,
        eta_plus=eta_plus,
        supply_amplitude=supply_amplitude,
        seed=seed,
        max_workers=max_workers,
    )


def _fig8_experiment(params: dict, context) -> ExperimentOutcome:
    from ..specs import pair_to_dict

    result = _run_fig8(
        params["technology"],
        params["scenarios"],
        stages=params["stages"],
        stage_index=params["stage_index"],
        n_widths=params["n_widths"],
        eta_plus=params["eta_plus"],
        supply_amplitude=params["supply_amplitude"],
        seed=params["seed"],
        max_workers=context.max_workers,
    )
    return ExperimentOutcome(
        rows=result.rows(),
        summary={
            "eta_plus": result.eta_plus,
            "reference_pair": pair_to_dict(result.reference),
        },
        raw=result,
    )


register_experiment_kind(
    "fig8",
    _fig8_experiment,
    description=(
        "Eta-band coverage under variations (Fig. 8): deviations of "
        "supply-ripple and width-variation characterisations from the "
        "nominal reference, checked against the admissible band"
    ),
    defaults={
        "technology": "UMC90",
        "scenarios": list(DEFAULT_SCENARIOS),
        "stages": 3,
        "stage_index": 1,
        "n_widths": 20,
        "eta_plus": None,
        "supply_amplitude": 0.01,
        "seed": 2018,
    },
)
