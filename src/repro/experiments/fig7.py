"""Experiment FIG7: delay-function characterisation across supply voltages.

Fig. 7 of the paper shows the measured ``delta_down(T)`` of the UMC-90
inverter chain for supply voltages between 0.3 V and 1.0 V (plus one
simulated curve at 0.6 V).  The qualitative features to reproduce with the
analog substrate are:

* every curve is increasing and concave, saturating for large ``T``,
* delays grow monotonically as V_DD decreases,
* the growth explodes as V_DD approaches the transistor threshold voltage
  (the 0.3 V curve is an order of magnitude above the 1.0 V curve),
* for small/negative ``T`` the delay drops steeply (pulse attenuation).

The registered ``fig7`` experiment kind runs this characterisation from a
declarative parameter set; :func:`run_fig7` is the deprecated wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..analog.chain import AnalogInverterChain
from ..analog.technology import Technology, UMC90, as_technology
from ..analog.variations import ConstantSupply
from ..engine.sweep import sweep_map
from ..fitting.characterize import CharacterizationDriver, DelayMeasurement
from ..specs import register_experiment_kind
from .base import ExperimentOutcome, maybe_spec_params, run_via_spec, technology_param

__all__ = ["Fig7Curve", "Fig7Result", "run_fig7", "DEFAULT_VDD_LEVELS"]

#: Supply voltages of the paper's Fig. 7 [V].
DEFAULT_VDD_LEVELS = (0.6, 0.7, 0.8, 1.0)


@dataclass
class Fig7Curve:
    """One characterised ``delta(T)`` curve at a fixed supply voltage."""

    vdd: float
    T: np.ndarray
    delta: np.ndarray
    measurement: DelayMeasurement

    @property
    def delta_at_saturation(self) -> float:
        """Delay at the largest measured ``T`` (approximates ``delta_inf``)."""
        return float(self.delta[-1]) if len(self.delta) else float("nan")

    @property
    def delta_at_smallest_T(self) -> float:
        """Delay at the smallest measured ``T`` (pulse-attenuation regime)."""
        return float(self.delta[0]) if len(self.delta) else float("nan")


@dataclass
class Fig7Result:
    """All curves of the experiment plus convenience accessors."""

    curves: Dict[float, Fig7Curve]
    polarity: str

    def saturation_delays(self) -> Dict[float, float]:
        """``delta`` at large ``T`` per supply voltage (should decrease with V_DD)."""
        return {vdd: curve.delta_at_saturation for vdd, curve in self.curves.items()}

    def is_monotone_in_vdd(self) -> bool:
        """True if higher supply voltages give uniformly smaller saturation delays."""
        vdds = sorted(self.curves)
        delays = [self.curves[v].delta_at_saturation for v in vdds]
        return all(later <= earlier for earlier, later in zip(delays, delays[1:]))

    def rows(self) -> List[Dict[str, float]]:
        """Flat table (one row per curve) for reporting."""
        rows = []
        for vdd in sorted(self.curves):
            curve = self.curves[vdd]
            rows.append(
                {
                    "vdd": vdd,
                    "n_samples": float(len(curve.T)),
                    "T_min": float(curve.T[0]) if len(curve.T) else float("nan"),
                    "T_max": float(curve.T[-1]) if len(curve.T) else float("nan"),
                    "delta_min_measured": float(np.min(curve.delta)) if len(curve.delta) else float("nan"),
                    "delta_saturation": curve.delta_at_saturation,
                }
            )
        return rows


def _run_fig7(
    technology: Union[Technology, str, dict] = UMC90,
    vdd_levels: Sequence[float] = DEFAULT_VDD_LEVELS,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 24,
    rising_output: bool = False,
    max_workers: Optional[int] = None,
) -> Fig7Result:
    """Characterise ``delta(T)`` of one inverter stage for several supplies.

    ``rising_output=False`` reproduces the paper's ``delta_down`` curves.
    The pulse-width sweep is scaled with the per-stage delay at each supply
    voltage so every curve covers a comparable ``T`` range.  The per-supply
    characterisations are independent and fan out over
    :func:`repro.engine.sweep.sweep_map` threads (sequential unless
    ``max_workers`` is set) -- the numpy-heavy waveform integration
    releases the GIL, which is what makes threads effective here; the
    closure over the analog chain keeps this driver off the picklable
    process backend.
    """
    technology = as_technology(technology)

    def characterise(vdd: float) -> Fig7Curve:
        chain = AnalogInverterChain(technology, stages=stages)
        # Scale stimulus widths with the slower stage delay at this supply.
        tau_ref = max(
            technology.tau_pull_up(vdd),
            technology.tau_pull_down(vdd),
        )
        unit = technology.intrinsic_delay + tau_ref
        widths = np.concatenate(
            [
                np.linspace(0.2 * unit, 2.0 * unit, n_widths // 2),
                np.linspace(2.2 * unit, 10.0 * unit, n_widths - n_widths // 2),
            ]
        )
        driver = CharacterizationDriver(
            chain,
            stage_index=stage_index,
            supply=ConstantSupply(vdd),
            settle=12.0 * unit,
            tail=30.0 * unit,
        )
        measurement = driver.measure(widths, label=f"VDD={vdd:g}V")
        T, delta = measurement.polarity(rising_output)
        return Fig7Curve(vdd=float(vdd), T=T, delta=delta, measurement=measurement)

    results = sweep_map(
        characterise, [float(v) for v in vdd_levels], max_workers=max_workers
    )
    curves = {curve.vdd: curve for curve in results}
    return Fig7Result(curves=curves, polarity="delta_up" if rising_output else "delta_down")


def run_fig7(
    technology: Union[Technology, str, dict] = UMC90,
    vdd_levels: Sequence[float] = DEFAULT_VDD_LEVELS,
    *,
    stages: int = 3,
    stage_index: int = 1,
    n_widths: int = 24,
    rising_output: bool = False,
    max_workers: Optional[int] = None,
) -> Fig7Result:
    """Characterise ``delta(T)`` of one inverter stage for several supplies.

    .. deprecated::
        Prefer ``repro.api.experiment("fig7", {...})``; this wrapper routes
        speccable arguments through the canonical path and only falls back
        to a direct call for custom :class:`Technology` subclasses.
    """
    params = maybe_spec_params(
        lambda: {
            "technology": technology_param(technology),
            "vdd_levels": [float(v) for v in vdd_levels],
            "stages": int(stages),
            "stage_index": int(stage_index),
            "n_widths": int(n_widths),
            "rising_output": bool(rising_output),
        }
    )
    if params is not None:
        return run_via_spec("fig7", params, max_workers=max_workers)
    return _run_fig7(
        technology,
        vdd_levels,
        stages=stages,
        stage_index=stage_index,
        n_widths=n_widths,
        rising_output=rising_output,
        max_workers=max_workers,
    )


def _fig7_experiment(params: dict, context) -> ExperimentOutcome:
    result = _run_fig7(
        params["technology"],
        params["vdd_levels"],
        stages=params["stages"],
        stage_index=params["stage_index"],
        n_widths=params["n_widths"],
        rising_output=params["rising_output"],
        max_workers=context.max_workers,
    )
    return ExperimentOutcome(
        rows=result.rows(),
        summary={
            "polarity": result.polarity,
            "monotone_in_vdd": result.is_monotone_in_vdd(),
            "saturation_delays": {
                f"{vdd:g}": delay
                for vdd, delay in sorted(result.saturation_delays().items())
            },
        },
        raw=result,
    )


register_experiment_kind(
    "fig7",
    _fig7_experiment,
    description=(
        "Delay characterisation across supply voltages (Fig. 7): measure "
        "delta(T) of one analog inverter stage per V_DD level"
    ),
    defaults={
        "technology": "UMC90",
        "vdd_levels": list(DEFAULT_VDD_LEVELS),
        "stages": 3,
        "stage_index": 1,
        "n_widths": 24,
        "rising_output": False,
    },
)
