"""The unified experiment runtime: results, provenance, and the runner.

PR 3 made circuits declarative; this module does the same for the paper's
experiments.  Every experiment is a registered *kind*
(:func:`repro.specs.register_experiment_kind`) whose runner maps a fully
resolved parameter dict to an :class:`ExperimentOutcome`;
:func:`run_experiment` wraps that call with

* parameter resolution (defaults merged, canonical JSON),
* provenance capture (spec JSON + hash, package version, backend,
  cpu_count, wall time, seed) on the returned :class:`ExperimentResult`,
* schema validation (uniform row keys, JSON-scalar cells), and
* content-addressed caching through :class:`repro.store.ArtifactStore`
  (``cache=...``): identical specs return the stored result without
  recomputation, which is what makes large parameter sweeps resumable.

The legacy ``run_fig7``/``run_theorem9``/... entry points are thin
deprecated wrappers over this path; equivalence tests pin their output
bit-identical to the direct implementation calls they replaced.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..specs import (
    ExperimentSpec,
    SpecError,
    _canonical_key,
    _jsonify,
    get_experiment_kind,
)

__all__ = [
    "RESULT_FORMAT",
    "RESULT_VERSION",
    "ExperimentContext",
    "ExperimentOutcome",
    "ExperimentResult",
    "as_experiment_spec",
    "run_experiment",
]

RESULT_FORMAT = "repro-experiment-result"
RESULT_VERSION = 1


@dataclass(frozen=True)
class ExperimentContext:
    """Execution knobs that must not change the numbers an experiment produces.

    ``backend``/``max_workers`` plumb straight into
    :func:`repro.engine.sweep.run_many` (event-driven experiments) or
    :func:`repro.engine.sweep.sweep_map` (analog characterisation sweeps);
    the sweep runner's determinism guarantee is what makes them
    result-neutral, so the artifact store can key on the spec alone.
    ``backend="vector"`` opts engine-driven kinds (``theorem9``,
    ``scaling``, ``eta_coverage``, ...) into the NumPy batch engine of
    :mod:`repro.engine.vector`, which falls back to the scalar path --
    with a warning -- for circuits it cannot express (e.g. the
    ``theorem9`` storage loop's feedback cycle).

    ``observed`` is the runners' reporting channel back to provenance:
    kinds that execute sweeps record the backend that *actually* ran
    under ``"backend_executed"`` (a vector request may have fallen back),
    so cached artifacts never claim an execution strategy that never
    happened.  Kinds whose sweeps run sharded additionally record
    ``"chunks_computed"``/``"chunks_resumed"`` from the sweep's
    :class:`~repro.engine.shard.ShardReport`.

    ``checkpoint`` (an :class:`~repro.store.ArtifactStore` or directory
    path, or ``None``) asks sweep-driven kinds to checkpoint their
    internal sweeps chunk-by-chunk via
    :func:`repro.engine.shard.run_many_sharded` -- result-neutral like
    the other knobs (resume is bit-identical), hence excluded from the
    artifact key.
    """

    backend: str = "sequential"
    max_workers: Optional[int] = None
    observed: Dict[str, Any] = field(default_factory=dict, compare=False)
    checkpoint: Optional[object] = field(default=None, compare=False)


@dataclass
class ExperimentOutcome:
    """What a kind runner returns: rows plus optional extras.

    ``rows`` is the experiment's flat result table (uniform keys, JSON
    scalars/lists); ``summary`` holds experiment-level scalars (analysis
    quantities, fitted parameters); ``traces`` optionally maps trace names
    to signal dicts (:func:`repro.io.netlist.signal_to_dict`) for VCD
    export; ``raw`` is the legacy result object handed back by the
    deprecated wrappers -- transient, never serialised.
    """

    rows: List[Dict[str, Any]]
    summary: Dict[str, Any] = field(default_factory=dict)
    traces: Optional[Dict[str, Dict[str, Any]]] = None
    raw: Any = None


@dataclass
class ExperimentResult:
    """Schema'd rows + parameters + provenance; round-trips through JSON.

    Two results are equal iff their spec, columns, rows, summary and traces
    are (canonical-JSON comparison); provenance is excluded -- wall time
    and host facts differ between equal reruns by construction.  ``raw``
    and ``from_cache`` are transient: they do not survive serialisation.
    """

    spec: ExperimentSpec
    columns: List[str]
    rows: List[Dict[str, Any]]
    summary: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    traces: Optional[Dict[str, Dict[str, Any]]] = None
    raw: Any = None
    from_cache: bool = False

    # -- schema ------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the row schema: uniform keys, JSON scalar/list cells."""
        expected = list(self.columns)
        for index, row in enumerate(self.rows):
            if list(row) != expected:
                raise SpecError(
                    f"row {index} keys {list(row)} do not match the result "
                    f"columns {expected}"
                )
            for column, value in row.items():
                if isinstance(value, (list, tuple)):
                    bad = [v for v in value if isinstance(v, (dict, list, tuple))]
                    if bad:
                        raise SpecError(
                            f"row {index} column {column!r}: nested containers "
                            "are not valid result cells"
                        )
                elif isinstance(value, dict):
                    raise SpecError(
                        f"row {index} column {column!r}: mappings are not "
                        "valid result cells"
                    )
        # Round-trip safety: everything must be JSON-representable.
        _jsonify(self.rows)
        _jsonify(self.summary)
        if self.traces is not None:
            _jsonify(self.traces)

    # -- serialisation ----------------------------------------------------- #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dict form (the artifact-store payload)."""
        data: Dict[str, Any] = {
            "format": RESULT_FORMAT,
            "version": RESULT_VERSION,
            "spec": self.spec.to_dict(),
            "columns": list(self.columns),
            "rows": _jsonify(self.rows),
            "summary": _jsonify(self.summary),
            "provenance": _jsonify(self.provenance),
        }
        if self.traces is not None:
            data["traces"] = _jsonify(self.traces)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from its :meth:`to_dict` form."""
        fmt = data.get("format", RESULT_FORMAT)
        if fmt != RESULT_FORMAT:
            raise SpecError(f"not an experiment result (format={fmt!r})")
        version = int(data.get("version", RESULT_VERSION))
        if version > RESULT_VERSION:
            raise SpecError(
                f"result version {version} is newer than supported "
                f"({RESULT_VERSION})"
            )
        try:
            spec = ExperimentSpec.from_dict(data["spec"])
            columns = list(data["columns"])
            # JSON serialisation sorts keys; restore the declared column
            # order so loaded results validate and tabulate like fresh ones.
            rows = [{column: row[column] for column in columns} for row in data["rows"]]
        except KeyError as exc:
            raise SpecError(f"experiment result dict is missing field {exc}") from None
        return cls(
            spec=spec,
            columns=columns,
            rows=rows,
            summary=dict(data.get("summary") or {}),
            provenance=dict(data.get("provenance") or {}),
            traces=None if data.get("traces") is None else dict(data["traces"]),
        )

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        """JSON text of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        import json

        return cls.from_dict(json.loads(text))

    # -- value semantics --------------------------------------------------- #

    def _eq_key(self) -> str:
        payload = self.to_dict()
        payload.pop("provenance", None)
        return _canonical_key(payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExperimentResult):
            return NotImplemented
        return self._eq_key() == other._eq_key()

    # -- convenience ------------------------------------------------------- #

    def table(self, **kwargs) -> str:
        """The rows as an aligned plain-text table (:mod:`.reporting`)."""
        from .reporting import format_table

        if kwargs.get("columns") is None:
            kwargs["columns"] = self.columns
        if kwargs.get("title") is None:
            kwargs["title"] = f"experiment {self.spec.kind}"
        return format_table(self.rows, **kwargs)

    def signals(self) -> Dict[str, Any]:
        """Recorded traces as live :class:`~repro.core.transitions.Signal` objects."""
        from ..io.netlist import signal_from_dict

        if not self.traces:
            return {}
        return {name: signal_from_dict(data) for name, data in self.traces.items()}


def as_experiment_spec(
    spec: Union[str, ExperimentSpec, Mapping[str, Any]],
    params: Optional[Mapping[str, Any]] = None,
) -> ExperimentSpec:
    """Coerce a kind name, spec dict, or ExperimentSpec to an ExperimentSpec."""
    if isinstance(spec, ExperimentSpec):
        if params:
            raise SpecError("params must be folded into an ExperimentSpec, not both")
        return spec
    if isinstance(spec, str):
        return ExperimentSpec(spec, dict(params or {}))
    if isinstance(spec, Mapping):
        if params:
            raise SpecError("params must be folded into the spec dict, not both")
        return ExperimentSpec.from_dict(spec)
    raise SpecError(f"cannot interpret {type(spec).__name__} as an experiment spec")


def _provenance(
    resolved: ExperimentSpec,
    context: ExperimentContext,
    wall_time_s: float,
) -> Dict[str, Any]:
    """The facts every result carries about how it was produced."""
    from .. import __version__
    from ..store import ArtifactStore

    seed = resolved.params.get("seed")
    return {
        "spec": resolved.to_dict(),
        "spec_key": ArtifactStore.key_for(resolved),
        "package": "repro",
        "version": __version__,
        "seed": seed if isinstance(seed, (int, float)) else None,
        "backend": context.backend,
        # Recorded by kinds that execute engine sweeps (theorem9,
        # comparison, scaling, eta_coverage); null for kinds that never
        # run one (analog sweep_map fan-outs, pure-analysis kinds) --
        # defaulting to the *requested* backend would claim an execution
        # strategy that never ran.
        "backend_executed": context.observed.get("backend_executed"),
        # Recorded by kinds whose sweeps ran sharded (checkpoint= or
        # backend="auto"): how many chunks were computed fresh vs
        # satisfied from the checkpoint store; null when no sharded
        # sweep ran.
        "chunks_computed": context.observed.get("chunks_computed"),
        "chunks_resumed": context.observed.get("chunks_resumed"),
        "max_workers": context.max_workers,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "wall_time_s": float(wall_time_s),
    }


def run_experiment(
    spec: Union[str, ExperimentSpec, Mapping[str, Any]],
    params: Optional[Mapping[str, Any]] = None,
    *,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
    cache: Optional[object] = None,
    force: bool = False,
    checkpoint: Optional[object] = None,
) -> ExperimentResult:
    """Run a declarative experiment and return its provenance-carrying result.

    ``spec`` is an :class:`~repro.specs.ExperimentSpec`, a kind name (with
    optional ``params``), or a spec dict.  ``backend``/``max_workers``
    choose the sweep execution strategy (result-neutral by the engine's
    determinism guarantee).  ``cache`` (an
    :class:`~repro.store.ArtifactStore` or a directory path) enables the
    content-addressed artifact store: a stored result for the identical
    resolved spec is returned directly with ``from_cache=True`` (unless
    ``force``), and fresh results are stored on the way out.
    ``checkpoint`` plumbs a chunk-checkpoint store into the experiment's
    internal sweeps (kinds that support it; see
    :class:`ExperimentContext`) -- finer-grained than ``cache``: the
    cache resumes whole experiments, the checkpoint resumes *mid-sweep*.
    """
    resolved = as_experiment_spec(spec, params).resolved()
    store = None
    if cache is not None:
        from ..store import as_store

        store = as_store(cache)
        if not force:
            hit = store.get(resolved)
            if hit is not None:
                hit.from_cache = True
                return hit
    info = get_experiment_kind(resolved.kind)
    context = ExperimentContext(
        backend=backend, max_workers=max_workers, checkpoint=checkpoint
    )
    start = time.perf_counter()
    outcome = info.runner(dict(resolved.params), context)
    wall_time_s = time.perf_counter() - start
    rows = [dict(_jsonify(row)) for row in outcome.rows]
    result = ExperimentResult(
        spec=resolved,
        columns=list(rows[0]) if rows else [],
        rows=rows,
        summary=dict(_jsonify(outcome.summary or {})),
        provenance=_provenance(resolved, context, wall_time_s),
        traces=None if outcome.traces is None else dict(_jsonify(outcome.traces)),
        raw=outcome.raw,
    )
    result.validate()
    if store is not None:
        store.put(result)
    return result


# --------------------------------------------------------------------------- #
# Speccability helpers shared by the deprecated wrapper entry points
# --------------------------------------------------------------------------- #
# Each legacy `run_*` function tries to express its arguments as a JSON
# parameter dict; when that succeeds the call routes through the registered
# kind (one canonical code path, full provenance), and when an argument is
# genuinely unspeccable (a closure-based factory, a custom subclass) the
# wrapper falls back to the identical direct implementation.


def maybe_spec_params(build: Callable[[], Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Run a params builder, mapping speccability failures to ``None``."""
    try:
        return build()
    except (SpecError, TypeError):
        return None


def run_via_spec(
    kind: str,
    params: Dict[str, Any],
    *,
    backend: str = "sequential",
    max_workers: Optional[int] = None,
):
    """Run a kind through the canonical path and hand back the legacy object."""
    result = run_experiment(
        ExperimentSpec(kind, params), backend=backend, max_workers=max_workers
    )
    return result.raw


def pair_param(pair) -> Dict[str, Any]:
    """Speccify an involution pair argument (live pair or spec dict)."""
    from ..specs import as_pair, pair_to_dict

    if isinstance(pair, Mapping):
        return dict(pair)
    return pair_to_dict(as_pair(pair))


def eta_param(eta) -> Optional[Dict[str, Any]]:
    """Speccify an optional eta-bound argument."""
    from ..specs import as_eta, eta_to_dict

    if eta is None:
        return None
    if isinstance(eta, Mapping):
        return dict(eta)
    return eta_to_dict(as_eta(eta))


def adversary_param(factory) -> Dict[str, Any]:
    """Speccify one adversary factory (spec, dict, instance, or callable)."""
    from ..core.adversary import Adversary
    from ..specs import AdversarySpec

    if isinstance(factory, AdversarySpec):
        return factory.to_dict()
    if isinstance(factory, Mapping):
        return dict(factory)
    if isinstance(factory, Adversary):
        return AdversarySpec.from_adversary(factory).to_dict()
    if callable(factory):
        return AdversarySpec.from_adversary(factory()).to_dict()
    raise SpecError(f"cannot speccify adversary factory {factory!r}")


def channel_param(factory) -> Dict[str, Any]:
    """Speccify one channel factory (spec, dict, instance, or callable)."""
    from ..core.channel import Channel
    from ..specs import ChannelSpec

    if isinstance(factory, ChannelSpec):
        return factory.to_dict()
    if isinstance(factory, Channel):
        return ChannelSpec.from_channel(factory).to_dict()
    if isinstance(factory, Mapping):
        return dict(factory)
    if callable(factory):
        return ChannelSpec.from_channel(factory()).to_dict()
    raise SpecError(f"cannot speccify channel factory {factory!r}")


def technology_param(technology) -> Union[str, Dict[str, Any]]:
    """Speccify a technology argument: preset name, dict, or field dict.

    Subclasses of :class:`~repro.analog.technology.Technology` may override
    behaviour that a field dict cannot capture, so only exact instances are
    speccable.
    """
    from ..analog.technology import (
        TECHNOLOGY_PRESETS,
        Technology,
        technology_to_dict,
    )

    if isinstance(technology, str):
        return technology
    if isinstance(technology, Mapping):
        return dict(technology)
    if type(technology) is Technology:
        for name, preset in TECHNOLOGY_PRESETS.items():
            if technology == preset:
                return name
        return technology_to_dict(technology)
    raise SpecError(f"cannot speccify technology {technology!r}")


def signal_param(signal) -> Optional[Dict[str, Any]]:
    """Speccify an optional stimulus signal argument."""
    from ..core.transitions import Signal
    from ..io.netlist import signal_to_dict

    if signal is None:
        return None
    if isinstance(signal, Mapping):
        return dict(signal)
    if isinstance(signal, Signal):
        return signal_to_dict(signal)
    raise SpecError(f"cannot speccify stimulus {signal!r}")
