"""Experiment drivers regenerating the paper's figures and analytical tables.

Each module corresponds to one experiment id of DESIGN.md; the drivers are
shared by ``benchmarks/`` (which time them and print the reproduced rows)
and ``examples/`` (which demonstrate the public API on the same scenarios).
"""

from .comparison import ModelComparisonResult, default_model_factories, run_model_comparison
from .fig7 import DEFAULT_VDD_LEVELS, Fig7Curve, Fig7Result, run_fig7
from .fig8 import DEFAULT_SCENARIOS, Fig8Result, Fig8Scenario, run_fig8
from .fig9 import Fig9Result, run_fig9
from .reporting import format_table, format_value, print_table
from .scaling import ScalingSample, run_scaling
from .theorem9 import (
    RegimeObservation,
    Theorem9Result,
    default_adversaries,
    run_lemma5_sweep,
    run_theorem9,
)

__all__ = [
    "run_fig7",
    "Fig7Result",
    "Fig7Curve",
    "DEFAULT_VDD_LEVELS",
    "run_fig8",
    "Fig8Result",
    "Fig8Scenario",
    "DEFAULT_SCENARIOS",
    "run_fig9",
    "Fig9Result",
    "run_theorem9",
    "run_lemma5_sweep",
    "Theorem9Result",
    "RegimeObservation",
    "default_adversaries",
    "run_model_comparison",
    "ModelComparisonResult",
    "default_model_factories",
    "run_scaling",
    "ScalingSample",
    "format_table",
    "format_value",
    "print_table",
]
