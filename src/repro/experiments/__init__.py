"""Experiment drivers regenerating the paper's figures and analytical tables.

Every experiment is a registered *kind* in the declarative experiment
registry (:func:`repro.specs.register_experiment_kind`):

================  ===========================================================
``theorem9``      storage-loop regime sweep vs. the analytical classification
``lemma5``        fixed-point quantities over an ``eta_plus`` sweep
``fig7``          delay characterisation across supply voltages
``fig8``          eta-band coverage of deviations under variations
``fig9``          exp-channel fit + deviation analysis
``comparison``    glitch-train propagation under the delay-model families
``scaling``       event-driven simulator throughput
``eta_coverage``  Monte Carlo eta-coverage self-check (registered by
                  :mod:`repro.fitting.eta_coverage`)
================  ===========================================================

:func:`run_experiment` (also reachable as ``repro.api.experiment`` and
``repro experiment run``) executes a kind from an
:class:`~repro.specs.ExperimentSpec` and returns an
:class:`ExperimentResult` -- schema'd rows plus parameters and provenance
-- optionally cached in the content-addressed artifact store
(:mod:`repro.store`).  The legacy ``run_*`` entry points remain as thin
deprecated wrappers pinned bit-identical to this path.
"""

from ..specs import (
    ExperimentKind,
    ExperimentSpec,
    experiment_kinds,
    get_experiment_kind,
    register_experiment_kind,
)
from .base import (
    ExperimentContext,
    ExperimentOutcome,
    ExperimentResult,
    run_experiment,
)
from .comparison import ModelComparisonResult, default_model_factories, run_model_comparison
from .fig7 import DEFAULT_VDD_LEVELS, Fig7Curve, Fig7Result, run_fig7
from .fig8 import DEFAULT_SCENARIOS, Fig8Result, Fig8Scenario, run_fig8
from .fig9 import Fig9Result, run_fig9
from .reporting import format_table, format_value, print_table
from .scaling import ScalingSample, run_scaling
from .theorem9 import (
    RegimeObservation,
    Theorem9Result,
    default_adversaries,
    run_lemma5_sweep,
    run_theorem9,
)

# The eta_coverage kind registers itself when repro.fitting.eta_coverage is
# imported; import it here so `import repro.experiments` (which the spec
# registry's lazy loader does) always yields the complete registry.
from ..fitting import eta_coverage as _eta_coverage  # noqa: F401

__all__ = [
    "ExperimentSpec",
    "ExperimentKind",
    "ExperimentContext",
    "ExperimentOutcome",
    "ExperimentResult",
    "run_experiment",
    "experiment_kinds",
    "get_experiment_kind",
    "register_experiment_kind",
    "run_fig7",
    "Fig7Result",
    "Fig7Curve",
    "DEFAULT_VDD_LEVELS",
    "run_fig8",
    "Fig8Result",
    "Fig8Scenario",
    "DEFAULT_SCENARIOS",
    "run_fig9",
    "Fig9Result",
    "run_theorem9",
    "run_lemma5_sweep",
    "Theorem9Result",
    "RegimeObservation",
    "default_adversaries",
    "run_model_comparison",
    "ModelComparisonResult",
    "default_model_factories",
    "run_scaling",
    "ScalingSample",
    "format_table",
    "format_value",
    "print_table",
]
