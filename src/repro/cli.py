"""Command-line interface: run circuits and experiments from the shell.

Installed as the ``repro`` console script and reachable as
``python -m repro``.  Six subcommands:

``info NETLIST``
    Validate the netlist and print a structural summary.
``lint PATH [PATH ...]``
    Statically lint netlists, circuit specs, or experiment specs
    (:mod:`repro.lint`) without running anything: structural defects,
    unknown/out-of-domain parameters, zero-delay cycles, determinism
    hazards, and predicted vector-backend fallbacks.  ``-`` reads one
    JSON document from stdin; ``--json`` emits machine-readable reports.
    Exit code 0 = no error-severity findings, 1 = error findings,
    2 = unreadable input.
``simulate NETLIST``
    One event-driven execution; stimulus comes from the netlist's
    ``inputs``/``end_time`` defaults, overridable with ``--pulse`` /
    ``--end-time``.  Prints per-output transition lists (``--json`` for
    machine-readable output, ``--vcd FILE`` for a waveform dump).
``sweep NETLIST --runs N``
    An eta Monte Carlo sweep (:func:`repro.engine.sweep.eta_monte_carlo`)
    over the netlist's circuit, fanned out over the chosen ``--backend``.
    ``--checkpoint DIR`` engages the fault-tolerant sharded runner
    (:mod:`repro.engine.shard`): finished chunks persist as content-keyed
    artifacts and a killed sweep resumes bit-identically (``--resume``
    asserts that it did); ``--retries``/``--chunk-timeout`` bound how
    stubbornly failing chunks are retried before quarantine.
``export LIBRARY -o FILE``
    Write a library circuit (``inverter_chain``, ``buffer_chain``,
    ``spf``) as a netlist file, with eta-involution exp-channels and a
    default stimulus -- the quickest way to get a runnable netlist.
``experiment {list,run,report,export}``
    The declarative experiment surface (:mod:`repro.experiments`):
    ``list`` the registered kinds, ``run`` one from parameters (text
    table or ``--json``; ``--cache DIR`` enables the content-addressed
    artifact store, so identical reruns are cache hits), ``report`` a
    stored result JSON, and ``export`` one as JSON/CSV/VCD
    (:mod:`repro.io.export`).

Examples::

    python -m repro lint examples/netlists/*.json
    python -m repro simulate examples/netlists/inverter_chain.json
    python -m repro sweep examples/netlists/inverter_chain.json --runs 50 \
        --backend process --workers 4
    python -m repro sweep examples/netlists/inverter_chain.json --runs 500 \
        --backend auto --checkpoint sweep-ckpt/ --retries 3
    python -m repro export inverter_chain --stages 7 -o chain.json
    python -m repro experiment run theorem9 --param eta_plus=0.1 \
        --cache artifacts/
    python -m repro experiment export artifacts/ab/abc... .json \
        --format csv -o theorem9.csv
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Argument plumbing
# --------------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Faithful binary circuit model with adversarial noise: "
        "run JSON netlists through the event-driven engine.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="validate a netlist and print its summary")
    info.add_argument("netlist", help="netlist JSON file")

    lint = sub.add_parser(
        "lint", help="statically lint netlists, circuit specs, or experiment specs"
    )
    lint.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="JSON document (netlist, circuit spec, or experiment spec); "
        "'-' reads one document from stdin",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="machine-readable report (one object per input)",
    )

    simulate = sub.add_parser("simulate", help="run one event-driven execution")
    simulate.add_argument("netlist", help="netlist JSON file")
    simulate.add_argument(
        "--end-time", type=float, default=None,
        help="simulation horizon (default: the netlist's end_time)",
    )
    simulate.add_argument(
        "--pulse", action="append", default=[], metavar="PORT=START:LENGTH",
        help="override an input port with a single pulse (repeatable)",
    )
    simulate.add_argument(
        "--on-causality", choices=("error", "drop"), default="error",
        help="policy for causality violations (default: error)",
    )
    simulate.add_argument(
        "--max-events", type=int, default=1_000_000,
        help="safety bound on processed events (default: 1000000)",
    )
    simulate.add_argument("--vcd", metavar="FILE", help="write the execution as VCD")
    simulate.add_argument("--json", action="store_true", help="machine-readable output")

    sweep = sub.add_parser(
        "sweep", help="run an eta Monte Carlo sweep over the netlist's circuit"
    )
    sweep.add_argument("netlist", help="netlist JSON file")
    sweep.add_argument("--runs", type=int, default=20, help="Monte Carlo runs (default: 20)")
    sweep.add_argument("--seed", type=int, default=0, help="base seed (default: 0)")
    sweep.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "vector", "auto"),
        default="sequential", help="sweep backend (default: sequential); "
        "'vector' batch-evaluates all runs through numpy and falls back "
        "to sequential (with a warning) when the circuit cannot be "
        "vectorized; 'auto' runs the fault-tolerant sharded runner with "
        "per-chunk vector/scalar dispatch",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="worker count for thread/process backends",
    )
    sweep.add_argument("--end-time", type=float, default=None, help="simulation horizon")
    sweep.add_argument(
        "--max-events", type=int, default=1_000_000,
        help="safety bound on processed events per run (default: 1000000)",
    )
    sweep.add_argument(
        "--checkpoint", metavar="DIR",
        help="chunk-checkpoint store directory: finished chunks are written "
        "as content-keyed artifacts and reloaded on rerun, so a killed "
        "sweep resumes bit-identically (engages the sharded runner)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="with --checkpoint: require that at least one chunk is resumed "
        "from the store (exit non-zero otherwise) -- catches restart "
        "scripts whose parameters no longer match the stored chunks",
    )
    sweep.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="total attempts per chunk before quarantine (default: 3, with "
        "exponential backoff; engages the sharded runner)",
    )
    sweep.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="S",
        help="per-chunk wall-clock budget in seconds (enforced by killing "
        "and respawning workers under --backend process)",
    )
    sweep.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="scenarios per chunk in sharded mode (default: 16; part of the "
        "checkpoint identity -- resume with the size you ran with)",
    )
    sweep.add_argument(
        "--keep-failures", action="store_true",
        help="degrade gracefully: return surviving runs with a failure "
        "report instead of exiting non-zero when chunks are quarantined",
    )
    sweep.add_argument("--json", action="store_true", help="machine-readable output")

    export = sub.add_parser("export", help="write a library circuit as a netlist file")
    export.add_argument(
        "library", choices=("inverter_chain", "buffer_chain", "spf"),
        help="which prebuilt circuit to export",
    )
    export.add_argument("-o", "--output", required=True, help="output netlist path")
    export.add_argument("--stages", type=int, default=7, help="chain stages (default: 7)")
    export.add_argument("--tau", type=float, default=1.0, help="exp-channel RC constant")
    export.add_argument("--t-p", type=float, default=0.5, help="exp-channel pure delay")
    export.add_argument("--v-th", type=float, default=0.5, help="normalised threshold")
    export.add_argument(
        "--eta-plus", type=float, default=0.05,
        help="eta_plus of the admissible band (eta_minus is maximal under (C))",
    )
    export.add_argument(
        "--taps", action="store_true",
        help="expose per-stage output taps (inverter_chain only)",
    )

    experiment = sub.add_parser(
        "experiment", help="list/run/report/export declarative experiments"
    )
    esub = experiment.add_subparsers(dest="experiment_command", required=True)

    elist = esub.add_parser("list", help="list the registered experiment kinds")
    elist.add_argument("--json", action="store_true", help="machine-readable output")

    erun = esub.add_parser("run", help="run one experiment kind")
    erun.add_argument("kind", help="registered experiment kind (see 'experiment list')")
    erun.add_argument(
        "--param", action="append", default=[], metavar="NAME=VALUE",
        help="override one parameter (VALUE parsed as JSON, else string; repeatable)",
    )
    erun.add_argument(
        "--params-json", metavar="JSON",
        help="parameter overrides as one JSON object (merged under --param)",
    )
    erun.add_argument(
        "--backend",
        choices=("sequential", "thread", "process", "vector", "auto"),
        default="sequential",
        help="sweep backend for engine-driven experiments (default: "
        "sequential); 'vector' opts into the numpy batch engine where the "
        "circuit allows it; 'auto' runs sharded with per-chunk dispatch",
    )
    erun.add_argument(
        "--workers", type=int, default=None,
        help="worker count for thread/process backends and analog sweeps",
    )
    erun.add_argument(
        "--cache", metavar="DIR",
        help="artifact store directory: return stored results for identical "
        "specs, store fresh ones",
    )
    erun.add_argument(
        "--checkpoint", metavar="DIR",
        help="chunk-checkpoint store for the experiment's internal sweeps "
        "(kinds that support it): a killed run resumes mid-sweep",
    )
    erun.add_argument(
        "--force", action="store_true",
        help="recompute even on a cache hit (the store is updated)",
    )
    erun.add_argument("-o", "--output", metavar="FILE", help="write the result JSON")
    erun.add_argument("--json", action="store_true", help="machine-readable output")

    ereport = esub.add_parser("report", help="print a stored result as a text table")
    ereport.add_argument("result", help="experiment result JSON file")
    ereport.add_argument(
        "--columns", metavar="A,B,...", help="comma-separated column subset"
    )
    ereport.add_argument(
        "--precision", type=int, default=4, help="significant digits (default: 4)"
    )

    eexport = esub.add_parser("export", help="convert a stored result to json/csv/vcd")
    eexport.add_argument("result", help="experiment result JSON file")
    eexport.add_argument(
        "--format", choices=("json", "csv", "vcd"), default="csv",
        help="output format (default: csv); vcd needs recorded traces",
    )
    eexport.add_argument("-o", "--output", required=True, help="output file path")
    return parser


def _parse_pulse_overrides(specs: Sequence[str]) -> Dict[str, object]:
    from .core.transitions import Signal

    overrides: Dict[str, object] = {}
    for item in specs:
        try:
            port, rest = item.split("=", 1)
            start_text, length_text = rest.split(":", 1)
            overrides[port] = Signal.pulse(float(start_text), float(length_text))
        except ValueError:
            raise SystemExit(
                f"--pulse {item!r}: expected PORT=START:LENGTH (e.g. in=1.0:3.0)"
            ) from None
    return overrides


def _resolve_stimulus(netlist, circuit, pulses, end_time) -> tuple:
    """Merge netlist defaults with CLI overrides into (inputs, end_time)."""
    from .core.transitions import Signal

    inputs = dict(netlist.inputs)
    inputs.update(_parse_pulse_overrides(pulses))
    for port in circuit.input_ports():
        inputs.setdefault(port.name, Signal.constant(port.initial_value))
    if end_time is None:
        end_time = netlist.end_time
    if end_time is None:
        raise SystemExit(
            "no simulation horizon: the netlist has no 'end_time' default; "
            "pass --end-time"
        )
    return inputs, float(end_time)


def _signal_summary(signal) -> str:
    if signal.is_constant():
        return f"constant {signal.initial_value}"
    times = ", ".join(f"{t.time:.6g}->{t.value}" for t in signal)
    return f"{len(signal)} transitions: {times}"


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #


def _cmd_info(args) -> int:
    from .io.netlist import load_netlist

    netlist = load_netlist(args.netlist)
    circuit = netlist.build()
    circuit.validate()
    print(circuit.summary())
    for port in circuit.input_ports():
        default = netlist.inputs.get(port.name)
        described = _signal_summary(default) if default is not None else "(no default)"
        print(f"  input  {port.name:<12s} initial={port.initial_value}  {described}")
    for port in circuit.output_ports():
        print(f"  output {port.name}")
    kinds: Dict[str, int] = {}
    for edge in circuit.edges.values():
        kinds[type(edge.channel).__name__] = kinds.get(type(edge.channel).__name__, 0) + 1
    print("  channels: " + ", ".join(f"{n} x {k}" for k, n in sorted(kinds.items())))
    if netlist.end_time is not None:
        print(f"  default end_time: {netlist.end_time:g}")
    return 0


def _cmd_lint(args) -> int:
    from .lint import lint as run_lint
    from .lint import lint_path
    from .specs import SpecError

    reports = []
    for path in args.paths:
        try:
            if path == "-":
                text = sys.stdin.read()
                try:
                    data = json.loads(text)
                except json.JSONDecodeError as exc:
                    raise SpecError(f"<stdin>: not valid JSON ({exc})") from exc
                if not isinstance(data, dict):
                    raise SpecError("<stdin>: top-level JSON value is not an object")
                reports.append(run_lint(data, source="<stdin>"))
            else:
                reports.append(lint_path(path))
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.json:
        payload = [report.to_dict() for report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.render())
    return 0 if all(report.ok for report in reports) else 1


def _cmd_simulate(args) -> int:
    from . import api
    from .io.netlist import load_netlist, signal_to_dict

    netlist = load_netlist(args.netlist)
    circuit = netlist.build()
    inputs, end_time = _resolve_stimulus(netlist, circuit, args.pulse, args.end_time)
    execution = api.simulate(
        circuit,
        inputs,
        end_time,
        on_causality=args.on_causality,
        max_events=args.max_events,
    )
    if args.vcd:
        from .io.vcd import execution_to_vcd

        with open(args.vcd, "w", encoding="utf-8") as handle:
            handle.write(execution_to_vcd(execution))
    if args.json:
        payload = {
            "netlist": args.netlist,
            "end_time": end_time,
            "event_count": execution.event_count,
            "dropped_transitions": execution.dropped_transitions,
            "outputs": {
                name: signal_to_dict(signal)
                for name, signal in execution.output_signals.items()
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{circuit.summary()}")
        print(f"simulated to t={end_time:g} ({execution.event_count} events)")
        for name, signal in execution.output_signals.items():
            print(f"  {name:<12s} {_signal_summary(signal)}")
        if args.vcd:
            print(f"VCD written to {args.vcd}")
    return 0


def _cmd_sweep(args) -> int:
    from . import api
    from .io.netlist import load_netlist

    netlist = load_netlist(args.netlist)
    circuit = netlist.build()
    inputs, end_time = _resolve_stimulus(netlist, circuit, [], args.end_time)
    circuit, scenarios = api.monte_carlo(
        circuit, inputs, end_time, args.runs, seed=args.seed
    )
    if not any(s.channels for s in scenarios):
        print(
            "warning: the netlist has no eta-involution channels; all Monte "
            "Carlo runs are identical",
            file=sys.stderr,
        )
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    try:
        result = api.sweep(
            circuit,
            scenarios,
            backend=args.backend,
            max_workers=args.workers,
            max_events=args.max_events,
            checkpoint=args.checkpoint,
            retry=args.retries,
            chunk_timeout=args.chunk_timeout,
            chunk_size=args.chunk_size,
            on_chunk_failure="keep" if args.keep_failures else None,
        )
    except Exception as exc:
        from .engine.shard import SweepFailedError

        if not isinstance(exc, SweepFailedError):
            raise
        # Quarantined chunks: report what failed (the surviving chunks are
        # already checkpointed when --checkpoint is on) and exit non-zero.
        print(f"error: {exc.report.summary()}", file=sys.stderr)
        for failure in exc.report:
            print(f"  {failure.summary()}", file=sys.stderr)
        if args.checkpoint:
            print(
                f"completed chunks are checkpointed in {args.checkpoint}; "
                "rerun to retry only the failed ones",
                file=sys.stderr,
            )
        return 1
    shard = result.shard_report
    if args.resume and (shard is None or shard.resumed == 0):
        print(
            "error: --resume was given but no chunk could be resumed from "
            f"{args.checkpoint} (parameters or chunk size changed?)",
            file=sys.stderr,
        )
        return 1
    rows: List[Dict[str, object]] = []
    for run in result:
        outputs = {
            name: {
                "transitions": len(signal),
                "final_value": signal.final_value,
                "stabilization_time": signal.stabilization_time(),
            }
            for name, signal in run.execution.output_signals.items()
        }
        rows.append(
            {
                "scenario": run.scenario.name,
                "seconds": run.seconds,
                "events": run.execution.event_count,
                "outputs": outputs,
            }
        )
    # SweepResult.backend records what actually executed -- a vector
    # request may have fallen back to the scalar path (with a warning);
    # the reported envelope must not claim a backend that never ran.
    executed = result.backend or args.backend
    if args.json:
        payload = {
            "netlist": args.netlist,
            "runs": args.runs,
            "seed": args.seed,
            "backend": executed,
            "backend_requested": args.backend,
            "end_time": end_time,
            "total_seconds": result.total_seconds,
            "results": rows,
        }
        if result.vector_report is not None and not result.vector_report.supported:
            payload["vector_fallback_reasons"] = list(result.vector_report.reasons)
        if shard is not None:
            payload["chunks"] = {
                "size": shard.chunk_size,
                "computed": shard.computed,
                "resumed": shard.resumed,
                "failed": shard.failed,
                "backends": shard.backends(),
            }
        if result.failure_report is not None:
            payload["failures"] = [
                {
                    "chunk": f.index,
                    "scenarios": list(f.scenario_names),
                    "attempts": f.attempts,
                    "kind": f.kind,
                    "error": f.error,
                    "error_type": f.error_type,
                }
                for f in result.failure_report
            ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            f"eta Monte Carlo sweep: {args.runs} runs, seed={args.seed}, "
            f"backend={executed}"
            + (f" (requested {args.backend})" if executed != args.backend else "")
            + f", end_time={end_time:g}"
        )
        for row in rows:
            outs = "  ".join(
                f"{name}: {o['transitions']}tr final={o['final_value']}"
                for name, o in row["outputs"].items()
            )
            print(f"  {row['scenario']:<12s} {row['events']:>6d} events  {outs}")
        if shard is not None:
            print(f"chunks: {shard.summary()}")
        if result.failure_report is not None:
            print(f"failures: {result.failure_report.summary()}", file=sys.stderr)
        print(f"total: {result.total_seconds:.3f}s for {len(rows)} runs")
    return 0


def _cmd_export(args) -> int:
    from .circuits.library import buffer_chain, inverter_chain
    from .core.constraint import admissible_eta_bound
    from .core.involution import InvolutionPair
    from .core.transitions import Signal
    from .io.netlist import save_netlist
    from .specs import ChannelSpec

    pair = InvolutionPair.exp_channel(args.tau, args.t_p, args.v_th)
    eta = admissible_eta_bound(pair, eta_plus=args.eta_plus)
    channel = ChannelSpec.exp_eta_involution(args.tau, args.t_p, eta, args.v_th)
    unit = pair.delta_up_inf + pair.delta_down_inf
    if args.library == "inverter_chain":
        circuit = inverter_chain(args.stages, channel, expose_taps=args.taps)
        inputs = {"in": Signal.pulse_train(1.0, [2.0 * unit] * 4, [3.0 * unit] * 3)}
        end_time = 1.0 + 20.0 * unit + 10.0 * (args.stages + 1) * pair.delta_up_inf
    elif args.library == "buffer_chain":
        circuit = buffer_chain(args.stages, channel)
        inputs = {"in": Signal.pulse_train(1.0, [2.0 * unit] * 4, [3.0 * unit] * 3)}
        end_time = 1.0 + 20.0 * unit + 10.0 * (args.stages + 1) * pair.delta_up_inf
    else:  # spf
        from .spf.spf_circuit import build_spf_circuit

        circuit = build_spf_circuit(pair, eta)
        inputs = {"i": Signal.pulse(0.0, 2.0 * pair.delta_min)}
        end_time = 400.0
    path = save_netlist(
        circuit,
        args.output,
        inputs=inputs,
        end_time=end_time,
        metadata={
            "generator": f"repro export {args.library}",
            "tau": args.tau,
            "t_p": args.t_p,
            "v_th": args.v_th,
            "eta_plus": eta.eta_plus,
            "eta_minus": eta.eta_minus,
        },
    )
    print(f"wrote {path} ({circuit.summary()})")
    return 0


def _parse_param_overrides(items: Sequence[str], params_json: Optional[str]) -> Dict[str, object]:
    """Merge ``--params-json`` and ``--param NAME=VALUE`` into one dict."""
    params: Dict[str, object] = {}
    if params_json:
        try:
            loaded = json.loads(params_json)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--params-json: not valid JSON ({exc})") from None
        if not isinstance(loaded, dict):
            raise SystemExit("--params-json: expected a JSON object")
        params.update(loaded)
    for item in items:
        name, sep, text = item.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"--param {item!r}: expected NAME=VALUE (e.g. eta_plus=0.1)"
            )
        try:
            params[name] = json.loads(text)
        except json.JSONDecodeError:
            params[name] = text  # bare strings stay strings
    return params


def _print_provenance(result, *, show_cache: bool = True) -> None:
    # from_cache is transient run-state, not provenance: it is only
    # meaningful right after `experiment run`, never for a loaded artifact.
    prov = result.provenance
    cache = f"  cache={'hit' if result.from_cache else 'miss'}" if show_cache else ""
    print(
        f"provenance: repro {prov.get('version')}  backend={prov.get('backend')}  "
        f"cpu_count={prov.get('cpu_count')}  wall={prov.get('wall_time_s', 0.0):.3f}s"
        f"{cache}"
    )
    if prov.get("chunks_computed") is not None:
        print(
            f"chunks: {prov['chunks_computed']} computed, "
            f"{prov.get('chunks_resumed', 0)} resumed"
        )
    print(f"spec key: {prov.get('spec_key')}")


def _cmd_experiment_list(args) -> int:
    from . import api

    kinds = api.experiments()
    if args.json:
        print(json.dumps(kinds, indent=2, sort_keys=True))
        return 0
    width = max(len(kind) for kind in kinds)
    for kind, description in kinds.items():
        print(f"{kind.ljust(width)}  {description}")
    return 0


def _cmd_experiment_run(args) -> int:
    from . import api

    params = _parse_param_overrides(args.param, args.params_json)
    result = api.experiment(
        args.kind,
        params,
        backend=args.backend,
        max_workers=args.workers,
        cache=args.cache,
        force=args.force,
        checkpoint=args.checkpoint,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.to_json() + "\n")
    if args.json:
        payload = {
            "from_cache": result.from_cache,
            "result": result.to_dict(),
        }
        if args.cache:
            from .store import as_store

            payload["artifact"] = str(as_store(args.cache).path_for(result.spec))
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.table())
        _print_provenance(result)
        if args.cache:
            from .store import as_store

            print(f"artifact: {as_store(args.cache).path_for(result.spec)}")
        if args.output:
            print(f"result JSON written to {args.output}")
    return 0


def _load_result(path: str):
    from .experiments.base import ExperimentResult

    with open(path, "r", encoding="utf-8") as handle:
        return ExperimentResult.from_json(handle.read())


def _cmd_experiment_report(args) -> int:
    result = _load_result(args.result)
    columns = args.columns.split(",") if args.columns else None
    print(result.table(columns=columns, precision=args.precision))
    _print_provenance(result, show_cache=False)
    return 0


def _cmd_experiment_export(args) -> int:
    from .io.export import export_result

    result = _load_result(args.result)
    export_result(result, args.format, args.output)
    print(f"wrote {args.output} ({args.format}, kind={result.spec.kind})")
    return 0


def _cmd_experiment(args) -> int:
    handlers = {
        "list": _cmd_experiment_list,
        "run": _cmd_experiment_run,
        "report": _cmd_experiment_report,
        "export": _cmd_experiment_export,
    }
    return handlers[args.experiment_command](args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (the ``repro`` console script)."""
    from .engine.errors import SimulationError
    from .specs import SpecError

    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "lint": _cmd_lint,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "export": _cmd_export,
        "experiment": _cmd_experiment,
    }
    try:
        return handlers[args.command](args)
    except (FileNotFoundError, SpecError, SimulationError) as exc:
        # Routine bad-input cases get a one-line error, not a traceback.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
