"""repro -- reproduction of "A Faithful Binary Circuit Model with Adversarial Noise".

The package is organised as follows:

* :mod:`repro.core` -- signals, involution delay functions, the
  eta-involution channel (the paper's contribution) and baseline channels.
* :mod:`repro.engine` -- the unified simulation engine: the shared channel
  kernel (tentative delays + transport cancellation), the event scheduler,
  and the batched sweep runner (:func:`repro.engine.run_many`).
* :mod:`repro.circuits` -- gates, circuit graphs and the event-driven
  simulator used to execute circuits built from these channels.
* :mod:`repro.spf` -- the Short-Pulse Filtration problem, the fed-back-OR
  SPF circuit of Fig. 5 and the analytical results of Section IV
  (constraint (C), worst-case pulse trains, Theorem 9).
* :mod:`repro.analog` -- a first-order analog simulator of CMOS inverter
  chains, substituting for the UMC-90/UMC-65 measurement setups of
  Section V.
* :mod:`repro.fitting` -- delay-function characterisation, exp-channel
  fitting and eta-coverage (deviation) analysis.
* :mod:`repro.experiments` -- drivers that regenerate the paper's figures
  (used by ``benchmarks/`` and ``examples/``).

* :mod:`repro.specs` -- declarative, JSON-round-trippable specs
  (``DelaySpec``/``ChannelSpec``/``CircuitSpec``/``ExperimentSpec``) with
  kind registries and extension hooks; :mod:`repro.io` adds the JSON
  netlist file format plus CSV/VCD result exporters.
* :mod:`repro.store` -- the content-addressed artifact store caching
  experiment results by spec hash.
* :mod:`repro.api` -- the ``build``/``simulate``/``sweep``/``experiment``
  facade over specs and circuits; ``python -m repro`` (:mod:`repro.cli`)
  drives it from netlist files and experiment kinds.

Typical entry point::

    from repro import InvolutionPair, EtaInvolutionChannel, EtaBound, Signal

    pair = InvolutionPair.exp_channel(tau=1.0, t_p=0.5)
    channel = EtaInvolutionChannel(pair, EtaBound(0.05, 0.05))
    out = channel(Signal.pulse(start=0.0, length=2.0))

or, declaratively::

    from repro import ChannelSpec, api
    from repro.circuits import inverter_chain

    spec = ChannelSpec.exp_eta_involution(tau=1.0, t_p=0.5, eta=(0.05, 0.05))
    execution = api.simulate(inverter_chain(7, spec),
                             {"in": Signal.pulse(1.0, 3.0)}, end_time=60.0)
"""

from .core import (
    Adversary,
    BestCaseAdversary,
    Channel,
    ConstantDelay,
    DeCancelAdversary,
    DegradationDelayChannel,
    DelayFunction,
    EtaBound,
    EtaInvolutionChannel,
    ExpDelay,
    InertialDelayChannel,
    InvolutionChannel,
    InvolutionError,
    InvolutionPair,
    Pulse,
    PureDelayChannel,
    RandomAdversary,
    SequenceAdversary,
    Signal,
    SignalError,
    SineAdversary,
    TableDelay,
    Transition,
    WorstCaseAdversary,
    ZeroAdversary,
    ZeroDelayChannel,
    admissible_eta_bound,
    constraint_C_margin,
    exp_channel_pair,
    max_eta_minus,
    max_symmetric_eta,
    satisfies_constraint_C,
)

__version__ = "1.4.0"

# The spec/api layer is exported lazily (PEP 562): `repro.api` pulls in the
# engine's scheduler/sweep modules, which must not load as a side effect of
# `import repro` inside engine worker processes.
_LAZY_EXPORTS = {
    "api": ("repro.api", None),
    "specs": ("repro.specs", None),
    "cli": ("repro.cli", None),
    "store": ("repro.store", None),
    "Spec": ("repro.specs", "Spec"),
    "SpecError": ("repro.specs", "SpecError"),
    "DelaySpec": ("repro.specs", "DelaySpec"),
    "AdversarySpec": ("repro.specs", "AdversarySpec"),
    "ChannelSpec": ("repro.specs", "ChannelSpec"),
    "CircuitSpec": ("repro.specs", "CircuitSpec"),
    "ExperimentSpec": ("repro.specs", "ExperimentSpec"),
    "ArtifactStore": ("repro.store", "ArtifactStore"),
}


def __getattr__(name):
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    return module if attribute is None else getattr(module, attribute)


__all__ = [
    "api",
    "specs",
    "cli",
    "store",
    "Spec",
    "SpecError",
    "DelaySpec",
    "AdversarySpec",
    "ChannelSpec",
    "CircuitSpec",
    "ExperimentSpec",
    "ArtifactStore",
    "Signal",
    "Transition",
    "Pulse",
    "SignalError",
    "DelayFunction",
    "ExpDelay",
    "TableDelay",
    "ConstantDelay",
    "InvolutionPair",
    "InvolutionError",
    "exp_channel_pair",
    "Channel",
    "ZeroDelayChannel",
    "InvolutionChannel",
    "EtaInvolutionChannel",
    "EtaBound",
    "Adversary",
    "ZeroAdversary",
    "WorstCaseAdversary",
    "BestCaseAdversary",
    "RandomAdversary",
    "SineAdversary",
    "SequenceAdversary",
    "DeCancelAdversary",
    "PureDelayChannel",
    "InertialDelayChannel",
    "DegradationDelayChannel",
    "constraint_C_margin",
    "satisfies_constraint_C",
    "max_eta_minus",
    "max_symmetric_eta",
    "admissible_eta_bound",
    "__version__",
]
