"""Analytical results of Section IV: worst-case pulse trains and Theorem 9.

Given an involution pair ``(delta_up, delta_down)`` and a noise bound
``eta = [-eta_minus, +eta_plus]`` satisfying constraint (C), the paper
derives closed-form quantities describing the behaviour of the fed-back OR
storage loop (Fig. 5) under the worst-case adversary (rising transitions
maximally late, falling maximally early):

* the fixed-point period ``tau`` -- smallest positive root of
  ``delta_down(eta_plus - tau) + delta_up(-eta_minus - tau) = tau``
  (Eq. 6), guaranteed to lie in
  ``(eta_plus + delta_min, min(delta_down_inf - eta_minus,
  delta_up_inf + eta_plus))``,
* the worst-case self-repeating pulse up-time ``Delta = delta_down(eta_plus
  - tau) < delta_min`` (Eq. 5 and Eq. 9),
* the period ``P = tau`` and duty cycle ``gamma = Delta / P < 1`` (Lemma 6),
* the worst-case pulse-train map ``f`` (Eq. 2) and the first-pulse map
  ``g`` (Lemma 8) with its threshold ``Delta_0_tilde``,
* the geometric growth factor ``a = 1 + delta_up'(0)`` governing the
  stabilisation time ``O(log_a(1 / (Delta_0 - Delta_0_tilde)))`` (Lemma 7),
* the regime classification of Theorem 9.

All of it is packaged in :class:`SPFAnalysis`.  With ``eta = (0, 0)`` the
quantities reduce to those of the deterministic involution model
(DATE 2015), which the tests check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from scipy import optimize

from ..core.adversary import EtaBound
from ..core.constraint import constraint_C_margin, satisfies_constraint_C
from ..core.involution import InvolutionPair

__all__ = ["SPFRegime", "WorstCaseTrain", "SPFAnalysis"]


def _geometric_then_linear_grid(lo: float, hi: float, points: int):
    """Yield candidates in (lo, hi]: dense near ``lo`` first, then uniform.

    The smallest fixed point usually lies close above ``lo``; probing a
    geometric refinement near ``lo`` before the uniform sweep keeps the
    returned bracket tight around it.
    """
    span = hi - lo
    for exponent in range(20, 0, -1):
        yield lo + span * 0.5**exponent
    for index in range(1, points + 1):
        yield lo + span * index / points


class SPFRegime:
    """Names of the three regimes of Theorem 9."""

    CANCELLED = "cancelled"  # Delta_0 <= delta_up_inf - delta_min - eta+ - eta-
    MARGINAL = "marginal"  # in between: may die, oscillate or latch
    LATCHED = "latched"  # Delta_0 >= delta_up_inf + eta+

    ALL = (CANCELLED, MARGINAL, LATCHED)


@dataclass
class WorstCaseTrain:
    """Result of iterating the worst-case pulse-train map.

    Attributes
    ----------
    up_times:
        Up-times ``Delta_0, Delta_1, ...`` of the OR-output pulses under the
        worst-case adversary (``Delta_0`` is the input pulse length).
    outcome:
        ``"died"`` (loop resolves to 0), ``"locked"`` (resolves to 1) or
        ``"ongoing"`` (still oscillating after ``max_pulses`` iterations).
    pulses:
        Number of complete pulses produced after the input pulse.
    """

    up_times: List[float]
    outcome: str

    @property
    def pulses(self) -> int:
        return max(0, len(self.up_times) - 1)


class SPFAnalysis:
    """Closed-form analysis of the SPF storage loop for a channel and noise bound.

    Parameters
    ----------
    pair:
        Involution delay pair of the feedback channel.
    eta:
        Noise bound; must satisfy constraint (C) for the fixed-point
        quantities to exist (checked on construction unless
        ``require_constraint=False``).
    """

    def __init__(
        self,
        pair: InvolutionPair,
        eta: EtaBound = EtaBound.zero(),
        *,
        require_constraint: bool = True,
    ) -> None:
        self.pair = pair
        self.eta = eta
        if require_constraint and not satisfies_constraint_C(pair, eta):
            raise ValueError(
                "noise bound violates constraint (C): margin "
                f"{constraint_C_margin(pair, eta):g}"
            )
        self._tau: Optional[float] = None
        self._delta_tilde_0: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Shorthands
    # ------------------------------------------------------------------ #

    @property
    def delta_min(self) -> float:
        """``delta_min`` of the feedback channel."""
        return self.pair.delta_min

    @property
    def delta_up_inf(self) -> float:
        """``delta_up_inf`` of the feedback channel."""
        return self.pair.delta_up_inf

    @property
    def delta_down_inf(self) -> float:
        """``delta_down_inf`` of the feedback channel."""
        return self.pair.delta_down_inf

    @property
    def eta_plus(self) -> float:
        """Upper noise bound ``eta_plus``."""
        return self.eta.eta_plus

    @property
    def eta_minus(self) -> float:
        """Lower noise bound ``eta_minus``."""
        return self.eta.eta_minus

    # ------------------------------------------------------------------ #
    # Fixed point (Lemma 5)
    # ------------------------------------------------------------------ #

    def h(self, tau: float) -> float:
        """The fixed-point function ``h(tau)`` of Eq. 7."""
        a = self.pair.delta_down(self.eta_plus - tau)
        b = self.pair.delta_up(-self.eta_minus - tau)
        if not (math.isfinite(a) and math.isfinite(b)):
            return -math.inf
        return a + b - tau

    def tau_bracket(self) -> Tuple[float, float]:
        """The bracket ``(tau_0, tau_1)`` of Eq. 8 containing the fixed point."""
        tau_0 = self.eta_plus + self.delta_min
        tau_1 = min(self.delta_down_inf - self.eta_minus, self.delta_up_inf + self.eta_plus)
        return tau_0, tau_1

    @property
    def tau(self) -> float:
        """Smallest positive fixed point of Eq. 6 (the worst-case period ``P``)."""
        if self._tau is None:
            self._tau = self._solve_tau()
        return self._tau

    def _solve_tau(self) -> float:
        tau_0, tau_1 = self.tau_bracket()
        if not tau_0 < tau_1:
            raise ValueError(
                f"empty fixed-point bracket ({tau_0:g}, {tau_1:g}); "
                "constraint (C) violated?"
            )
        h_lo = self.h(tau_0)
        if h_lo <= 0:
            raise ValueError(
                f"h(tau_0) = {h_lo:g} <= 0 at the lower bracket end; "
                "constraint (C) violated?"
            )
        # h(tau) -> -inf towards the upper end of the bracket (possibly well
        # before tau_1 for measured/extrapolated delay pairs whose domain is
        # narrower than an exact involution pair's).  Scan the bracket for a
        # point where h is finite and negative, preferring the smallest such
        # tau so brentq finds the *smallest* positive fixed point.
        hi = None
        for candidate in _geometric_then_linear_grid(tau_0, tau_1, 512):
            value = self.h(candidate)
            if math.isfinite(value) and value < 0:
                hi = candidate
                break
        if hi is None:
            raise ValueError("could not bracket the fixed point tau")
        return float(optimize.brentq(self.h, tau_0, hi, xtol=1e-14, rtol=1e-13))

    @property
    def period(self) -> float:
        """Worst-case self-repeating period ``P = tau`` (Lemma 5)."""
        return self.tau

    @property
    def delta_bound(self) -> float:
        """Worst-case up-time bound ``Delta = delta_down(eta_plus - tau) < delta_min``."""
        return self.pair.delta_down(self.eta_plus - self.tau)

    @property
    def duty_cycle_bound(self) -> float:
        """Duty-cycle bound ``gamma = Delta / P < 1`` (Lemma 6)."""
        return self.delta_bound / self.period

    @property
    def growth_factor(self) -> float:
        """Geometric growth factor ``a = 1 + delta_up'(0) > 1`` (Lemma 7)."""
        return 1.0 + self.pair.derivative_up(0.0)

    # ------------------------------------------------------------------ #
    # Worst-case pulse-train maps (Eq. 2 and Lemma 8)
    # ------------------------------------------------------------------ #

    def worst_case_map(self, delta_prev: float) -> float:
        """The map ``f`` of Eq. 2: up-time of the next OR pulse.

        Returns ``-inf`` when the pulse dies (the corresponding tentative
        transitions cancel or leave the delay-function domain).
        """
        rise_delay = self.pair.delta_up(-delta_prev)
        if not math.isfinite(rise_delay):
            return -math.inf
        T_fall = delta_prev - self.eta_plus - rise_delay
        fall_delay = self.pair.delta_down(T_fall)
        if not math.isfinite(fall_delay):
            return -math.inf
        return fall_delay + delta_prev - self.eta_minus - self.eta_plus - rise_delay

    def worst_case_down_time(self, delta_n: float) -> float:
        """Down-time following a pulse of up-time ``delta_n``: ``P_n - Delta_n``.

        ``P_n = delta_up(-Delta_n) + eta_plus`` is the worst-case period of
        pulse ``n`` (see the proof of Lemma 5).
        """
        rise_delay = self.pair.delta_up(-delta_n)
        if not math.isfinite(rise_delay):
            return -math.inf
        return rise_delay + self.eta_plus - delta_n

    def first_pulse_map(self, delta_0: float) -> float:
        """The map ``g`` of Lemma 8: up-time ``Delta_1`` of the first loop pulse."""
        T_fall = delta_0 - self.eta_plus - self.delta_up_inf
        fall_delay = self.pair.delta_down(T_fall)
        if not math.isfinite(fall_delay):
            return -math.inf
        return fall_delay + delta_0 - self.eta_minus - self.eta_plus - self.delta_up_inf

    @property
    def delta_tilde_0(self) -> float:
        """The input-pulse threshold ``Delta_0_tilde`` of Lemma 8.

        Input pulses longer than ``Delta_0_tilde`` are guaranteed (even
        under the worst-case adversary) to produce ``Delta_1 >= Delta`` and
        hence to latch the storage loop to 1.
        """
        if self._delta_tilde_0 is None:
            self._delta_tilde_0 = self._solve_delta_tilde_0()
        return self._delta_tilde_0

    def _solve_delta_tilde_0(self) -> float:
        target = self.delta_bound

        def gap(delta_0: float) -> float:
            value = self.first_pulse_map(delta_0)
            if not math.isfinite(value):
                return -math.inf if value < 0 else math.inf
            return value - target

        lo = self.eta_plus + self.delta_up_inf - self.delta_min
        hi = self.eta_plus + self.eta_minus + self.delta_up_inf
        # g(lo) <= 0 <= Delta and g(hi) = delta_down(eta_minus) > Delta per
        # Lemma 8; nudge the ends inwards until both are finite.
        span = hi - lo
        lo_eff = lo + 1e-12 * max(1.0, abs(lo))
        while not math.isfinite(gap(lo_eff)):
            lo_eff += 1e-6 * span
            if lo_eff >= hi:
                raise ValueError("could not bracket Delta_0_tilde (lower end)")
        hi_eff = hi - 1e-12 * max(1.0, abs(hi))
        while not math.isfinite(gap(hi_eff)):
            hi_eff -= 1e-6 * span
            if hi_eff <= lo_eff:
                raise ValueError("could not bracket Delta_0_tilde (upper end)")
        g_lo, g_hi = gap(lo_eff), gap(hi_eff)
        if g_lo > 0:
            # The whole marginal band already latches; the threshold
            # degenerates to the lower regime boundary.
            return lo
        if g_hi < 0:
            raise ValueError(
                "first_pulse_map never reaches Delta on the marginal band; "
                "the delay pair violates the assumptions of Lemma 8"
            )
        return float(optimize.brentq(gap, lo_eff, hi_eff, xtol=1e-14, rtol=1e-13))

    # ------------------------------------------------------------------ #
    # Theorem 9
    # ------------------------------------------------------------------ #

    @property
    def cancel_threshold(self) -> float:
        """Upper bound of the cancelled regime: ``delta_up_inf - delta_min - eta+ - eta-``."""
        return self.delta_up_inf - self.delta_min - self.eta_plus - self.eta_minus

    @property
    def latch_threshold(self) -> float:
        """Lower bound of the latched regime: ``delta_up_inf + eta_plus``."""
        return self.delta_up_inf + self.eta_plus

    def classify(self, delta_0: float) -> str:
        """Theorem 9 regime of an input pulse of length ``delta_0``."""
        if delta_0 <= 0:
            raise ValueError("pulse lengths must be positive")
        if delta_0 >= self.latch_threshold:
            return SPFRegime.LATCHED
        if delta_0 <= self.cancel_threshold:
            return SPFRegime.CANCELLED
        return SPFRegime.MARGINAL

    def resolves_to_one(self, delta_0: float) -> bool:
        """True if the loop is *guaranteed* to latch to 1 for this input pulse.

        This is the case for the latched regime and for marginal pulses
        longer than ``Delta_0_tilde`` (Lemma 8 + Lemma 7); shorter marginal
        pulses may die, oscillate or latch depending on the adversary.
        """
        regime = self.classify(delta_0)
        if regime == SPFRegime.LATCHED:
            return True
        if regime == SPFRegime.CANCELLED:
            return False
        return delta_0 > self.delta_tilde_0

    def stabilization_pulses(self, delta_0: float) -> float:
        """Upper bound on the number of loop pulses before latching (Lemma 7/8).

        For ``delta_0 > Delta_0_tilde`` the pulse up-times grow at least
        geometrically with factor ``a = 1 + delta_up'(0)``; the loop locks
        once the up-time exceeds the latched-regime threshold, after at most
        ``log_a((latch_threshold - Delta) / (delta_0 - Delta_0_tilde))``
        pulses (plus one).  Returns ``inf`` for pulses not guaranteed to
        latch and ``0`` for the latched regime.
        """
        regime = self.classify(delta_0)
        if regime == SPFRegime.LATCHED:
            return 0.0
        if regime == SPFRegime.CANCELLED or delta_0 <= self.delta_tilde_0:
            return math.inf
        gap = delta_0 - self.delta_tilde_0
        span = max(self.latch_threshold - self.delta_bound, gap)
        return 1.0 + math.log(span / gap) / math.log(self.growth_factor)

    def stabilization_time_bound(self, delta_0: float) -> float:
        """Coarse upper bound on the time until the OR output stabilises to 1.

        Each pulse of the train takes at most
        ``delta_up_inf + eta_plus + delta_down_inf`` of wall-clock time, so
        the bound is ``stabilization_pulses * (delta_up_inf + eta_plus +
        delta_down_inf)``.
        """
        pulses = self.stabilization_pulses(delta_0)
        if not math.isfinite(pulses):
            return math.inf
        per_pulse = self.delta_up_inf + self.eta_plus + self.delta_down_inf
        return pulses * per_pulse + self.latch_threshold

    # ------------------------------------------------------------------ #
    # Worst-case train iteration
    # ------------------------------------------------------------------ #

    def worst_case_train(self, delta_0: float, max_pulses: int = 10_000) -> WorstCaseTrain:
        """Iterate the worst-case pulse-train maps starting from ``delta_0``.

        The first loop pulse uses the first-pulse map ``g`` (the previous
        output transition is at ``-inf``); subsequent pulses use ``f``.
        Iteration stops when the pulse dies (up-time ``<= 0``), when the
        loop locks (down-time ``<= 0`` or the up-time leaves the domain of
        ``delta_up``), or after ``max_pulses``.
        """
        if delta_0 <= 0:
            raise ValueError("pulse lengths must be positive")
        ups = [delta_0]
        if delta_0 >= self.latch_threshold:
            return WorstCaseTrain(ups, "locked")
        current = self.first_pulse_map(delta_0)
        for _ in range(max_pulses):
            if not math.isfinite(current) or current <= 0:
                return WorstCaseTrain(ups, "died")
            ups.append(current)
            if current >= self.delta_down_inf:
                return WorstCaseTrain(ups, "locked")
            down = self.worst_case_down_time(current)
            if not math.isfinite(down) or down <= 0:
                return WorstCaseTrain(ups, "locked")
            current = self.worst_case_map(current)
        return WorstCaseTrain(ups, "ongoing")

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def summary(self) -> dict:
        """All key quantities in a dictionary (used by benchmarks/EXPERIMENTS.md)."""
        return {
            "delta_min": self.delta_min,
            "delta_up_inf": self.delta_up_inf,
            "delta_down_inf": self.delta_down_inf,
            "eta_plus": self.eta_plus,
            "eta_minus": self.eta_minus,
            "constraint_C_margin": constraint_C_margin(self.pair, self.eta),
            "tau": self.tau,
            "Delta": self.delta_bound,
            "period": self.period,
            "gamma": self.duty_cycle_bound,
            "Delta_0_tilde": self.delta_tilde_0,
            "cancel_threshold": self.cancel_threshold,
            "latch_threshold": self.latch_threshold,
            "growth_factor": self.growth_factor,
        }

    def __repr__(self) -> str:
        return (
            f"SPFAnalysis(delta_min={self.delta_min:.4g}, eta={self.eta!r}, "
            f"tau={self.tau:.4g}, Delta={self.delta_bound:.4g}, "
            f"gamma={self.duty_cycle_bound:.4g})"
        )
