"""Short-Pulse Filtration: problem definition, SPF circuit and analysis."""

from .analysis import SPFAnalysis, SPFRegime, WorstCaseTrain
from .bounded import (
    StabilizationSample,
    analytical_stabilization_sweep,
    critical_pulse_width,
    find_empirical_threshold,
    simulated_stabilization_sweep,
)
from .problem import SPFChecker, SPFObservation, SPFReport
from .spf_circuit import (
    HighThresholdBufferDesign,
    build_spf_circuit,
    design_high_threshold_buffer,
)

__all__ = [
    "SPFAnalysis",
    "SPFRegime",
    "WorstCaseTrain",
    "SPFChecker",
    "SPFObservation",
    "SPFReport",
    "HighThresholdBufferDesign",
    "design_high_threshold_buffer",
    "build_spf_circuit",
    "StabilizationSample",
    "analytical_stabilization_sweep",
    "simulated_stabilization_sweep",
    "critical_pulse_width",
    "find_empirical_threshold",
]
