"""The unbounded SPF circuit of Fig. 5 and its dimensioning.

The circuit consists of

* an OR gate with initial value 0 whose output is fed back to its second
  input through an eta-involution channel ``c`` (the *storage loop*), and
* a *high-threshold buffer* ``HT`` -- an exp-channel with a threshold above
  the worst-case duty cycle ``gamma`` of the storage loop -- driving the
  output port.

Theorem 12 of the paper shows that, provided the feedback channel's noise
bound satisfies constraint (C) and the buffer is dimensioned according to
Lemmas 10/11, this circuit solves (unbounded) Short-Pulse Filtration.

:func:`design_high_threshold_buffer` performs the dimensioning: it picks a
threshold ``V_th`` strictly between ``gamma`` and 1 and an RC constant
large enough that pulse trains with duty cycle at most ``Gamma = gamma *
(1 + margin)`` and pulse length at most ``Theta`` are filtered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..circuits.circuit import Circuit
from ..circuits.gates import OR2
from ..core.adversary import Adversary, EtaBound, ZeroAdversary
from ..core.eta_channel import EtaInvolutionChannel
from ..core.involution import InvolutionPair
from ..core.involution_channel import InvolutionChannel
from .analysis import SPFAnalysis

__all__ = ["HighThresholdBufferDesign", "design_high_threshold_buffer", "build_spf_circuit"]


@dataclass
class HighThresholdBufferDesign:
    """Dimensioning result for the high-threshold buffer.

    Attributes
    ----------
    v_th:
        Normalised switching threshold of the buffer's exp-channel.
    tau:
        RC constant of the buffer's exp-channel.
    t_p:
        Pure-delay component of the buffer's exp-channel.
    theta:
        Longest single pulse the buffer is dimensioned to swallow
        (``Theta`` of Lemma 10/11).
    gamma_capacity:
        Largest duty cycle the buffer is dimensioned to swallow
        (``Gamma`` of Lemma 10/11).
    """

    v_th: float
    tau: float
    t_p: float
    theta: float
    gamma_capacity: float

    def channel(self, *, name: str = "HT") -> InvolutionChannel:
        """Instantiate the buffer as a deterministic exp involution channel."""
        return InvolutionChannel.exp_channel(
            self.tau, self.t_p, self.v_th, name=name
        )


def design_high_threshold_buffer(
    analysis: SPFAnalysis,
    *,
    margin: float = 0.05,
    theta: Optional[float] = None,
    t_p: Optional[float] = None,
) -> HighThresholdBufferDesign:
    """Dimension the high-threshold buffer for a given storage-loop analysis.

    The buffer must map every pulse train with duty cycle at most
    ``Gamma = gamma * (1 + margin) < 1`` and pulse length at most ``Theta``
    to the zero signal (Lemma 11).  For an exp-channel this is achieved by

    * a threshold ``v_th`` halfway between ``Gamma`` and 1 (so
      ``Gamma < v_th < 1``), and
    * an RC constant ``tau`` large enough that (i) a single high phase of
      length ``Theta`` starting from the worst-case ripple level ``Gamma``
      does not reach ``v_th`` and (ii) the periodic steady-state ripple of
      a ``Gamma``-duty square wave of period ``P`` stays below ``v_th``.

    ``Theta`` defaults to a small multiple of the loop's stabilisation
    bound for pulses that reach duty cycle ``Gamma``, which is the role it
    plays in the proof of Theorem 12 ("so large that the feed-back loop has
    already locked to constant 1 at time T + Theta").
    """
    if margin <= 0:
        raise ValueError("margin must be positive")
    gamma = analysis.duty_cycle_bound
    gamma_capacity = min(gamma * (1.0 + margin), 0.5 * (1.0 + gamma))
    if gamma_capacity >= 1.0:
        raise ValueError("duty-cycle capacity must stay below 1")
    v_th = 0.5 * (gamma_capacity + 1.0)

    if theta is None:
        # The loop locks within a bounded number of pulses once a pulse of
        # duty cycle >= Gamma occurs; a generous multiple of the per-pulse
        # time bound covers it.
        per_pulse = analysis.delta_up_inf + analysis.eta_plus + analysis.delta_down_inf
        theta = 16.0 * per_pulse
    if t_p is None:
        t_p = analysis.delta_min

    # (i) single-pulse condition: starting from level Gamma, a high phase of
    # length Theta must not reach v_th:
    #     Gamma + (1 - Gamma) * (1 - exp(-Theta / tau)) < v_th
    # <=> tau > Theta / ln((1 - Gamma) / (1 - v_th)).
    tau_single = theta / math.log((1.0 - gamma_capacity) / (1.0 - v_th))
    # (ii) ripple condition: make tau much larger than the loop period so the
    # steady-state ripple of a Gamma-duty square wave stays near Gamma.
    tau_ripple = 16.0 * analysis.period
    tau = max(tau_single, tau_ripple)
    return HighThresholdBufferDesign(
        v_th=v_th, tau=tau, t_p=t_p, theta=theta, gamma_capacity=gamma_capacity
    )


def build_spf_circuit(
    pair: InvolutionPair,
    eta: EtaBound,
    adversary: Optional[Adversary] = None,
    *,
    buffer_design: Optional[HighThresholdBufferDesign] = None,
    buffer_margin: float = 0.05,
    name: str = "spf",
) -> Circuit:
    """Build the SPF circuit of Fig. 5.

    Parameters
    ----------
    pair:
        Involution delay pair of the feedback channel ``c``.
    eta:
        Noise bound of the feedback channel (must satisfy constraint (C)).
    adversary:
        Adversary resolving the feedback channel's non-determinism
        (defaults to the zero adversary).
    buffer_design:
        Pre-computed buffer dimensioning; computed from the loop analysis
        if omitted.

    ``pair``/``eta``/``adversary`` may be live objects or their declarative
    spec dicts (:mod:`repro.specs`).
    """
    from ..specs import as_adversary, as_eta, as_pair

    pair, eta = as_pair(pair), as_eta(eta)
    if adversary is not None:
        adversary = as_adversary(adversary)
    analysis = SPFAnalysis(pair, eta)
    if buffer_design is None:
        buffer_design = design_high_threshold_buffer(analysis, margin=buffer_margin)
    loop_channel = EtaInvolutionChannel(
        pair, eta, adversary if adversary is not None else ZeroAdversary(), name="c"
    )
    circuit = Circuit(name)
    circuit.add_input("i", initial_value=0)
    circuit.add_gate("or", OR2, initial_value=0)
    circuit.add_output("o")
    circuit.add_output("or_out")
    circuit.connect("i", "or", None, pin=0)
    circuit.connect("or", "or", loop_channel, pin=1, name="feedback")
    circuit.connect("or", "o", buffer_design.channel(), name="ht_buffer")
    circuit.connect("or", "or_out")
    return circuit
