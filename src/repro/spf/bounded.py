"""Bounded-time SPF impossibility: unbounded stabilisation near the threshold.

The paper's impossibility direction ("no circuit with eta-involution
channels solves bounded-time SPF") follows analytically from the
deterministic involution result because the adversary may always choose
``eta_n = 0``.  This module provides the *demonstrator* that makes the
phenomenon concrete and measurable: for the SPF storage loop, the
stabilisation time diverges (logarithmically) as the input pulse length
approaches the critical threshold ``Delta_0_tilde`` from above, so no
finite stabilisation bound can hold for all input pulses.

Two views are provided:

* :func:`analytical_stabilization_sweep` -- the bound of Lemma 7/8,
  ``pulses ~ log_a(1 / (Delta_0 - Delta_0_tilde))``,
* :func:`simulated_stabilization_sweep` -- the same sweep measured on the
  event-driven simulation of the fed-back OR under a chosen adversary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..circuits.library import fed_back_or
from ..core.adversary import EtaBound, ZeroAdversary
from ..core.eta_channel import EtaInvolutionChannel
from ..core.involution import InvolutionPair
from ..core.transitions import Signal
from ..engine.scheduler import CircuitTopology, Engine
from ..engine.sweep import Scenario, run_many
from .analysis import SPFAnalysis

__all__ = [
    "StabilizationSample",
    "analytical_stabilization_sweep",
    "simulated_stabilization_sweep",
    "critical_pulse_width",
]


@dataclass
class StabilizationSample:
    """One point of a stabilisation-time sweep."""

    delta_0: float
    gap: float  # delta_0 - threshold
    pulses: float
    stabilization_time: float
    final_value: Optional[int] = None


def critical_pulse_width(
    pair: InvolutionPair,
    eta: EtaBound = EtaBound.zero(),
) -> float:
    """The critical input pulse width ``Delta_0_tilde`` of Lemma 8."""
    from ..specs import as_eta, as_pair

    return SPFAnalysis(as_pair(pair), as_eta(eta)).delta_tilde_0


def analytical_stabilization_sweep(
    pair: InvolutionPair,
    eta: EtaBound,
    gaps: Sequence[float],
) -> List[StabilizationSample]:
    """Stabilisation bound of Lemma 7/8 for ``Delta_0 = Delta_0_tilde + gap``.

    The number of pulses grows like ``log_a(1/gap)`` with
    ``a = 1 + delta_up'(0)``, demonstrating that no bounded stabilisation
    time exists (bounded-time SPF impossibility).
    """
    from ..specs import as_eta, as_pair

    analysis = SPFAnalysis(as_pair(pair), as_eta(eta))
    threshold = analysis.delta_tilde_0
    samples = []
    for gap in gaps:
        if gap <= 0:
            raise ValueError("gaps must be positive")
        delta_0 = threshold + gap
        samples.append(
            StabilizationSample(
                delta_0=delta_0,
                gap=gap,
                pulses=analysis.stabilization_pulses(delta_0),
                stabilization_time=analysis.stabilization_time_bound(delta_0),
            )
        )
    return samples


def simulated_stabilization_sweep(
    pair: InvolutionPair,
    eta: EtaBound,
    gaps: Sequence[float],
    adversary_factory=ZeroAdversary,
    *,
    end_time: float = 500.0,
    max_events: int = 2_000_000,
    threshold: Optional[float] = None,
) -> List[StabilizationSample]:
    """Measured stabilisation times of the fed-back OR near the threshold.

    ``threshold`` defaults to the analytical ``Delta_0_tilde`` of the
    worst-case adversary; for other adversaries the actual critical width
    differs, so callers may supply the empirically bracketed value (e.g.
    from :func:`find_empirical_threshold`).
    """
    from ..specs import as_adversary_factory, as_eta, as_pair

    pair, eta = as_pair(pair), as_eta(eta)
    adversary_factory = as_adversary_factory(adversary_factory)
    if threshold is None:
        threshold = SPFAnalysis(pair, eta).delta_tilde_0
    # One shared storage-loop topology; each gap only swaps the feedback
    # channel (fresh adversary) and the input pulse.
    circuit = fed_back_or(EtaInvolutionChannel(pair, eta, ZeroAdversary()))
    scenarios = [
        Scenario(
            name=f"gap={float(gap):g}",
            inputs={"i": Signal.pulse(0.0, threshold + float(gap))},
            end_time=end_time,
            channels={
                "feedback": EtaInvolutionChannel(pair, eta, adversary_factory())
            },
            metadata={"gap": float(gap), "delta_0": threshold + float(gap)},
        )
        for gap in gaps
    ]
    sweep = run_many(circuit, scenarios, max_events=max_events)
    samples = []
    for run in sweep:
        out = run.execution.output_signals["or_out"]
        samples.append(
            StabilizationSample(
                delta_0=run.scenario.metadata["delta_0"],
                gap=run.scenario.metadata["gap"],
                pulses=len(out.pulses()),
                stabilization_time=out.stabilization_time(),
                final_value=out.final_value,
            )
        )
    return samples


def find_empirical_threshold(
    pair: InvolutionPair,
    eta: EtaBound,
    adversary_factory=ZeroAdversary,
    *,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    end_time: float = 500.0,
    iterations: int = 40,
    max_events: int = 2_000_000,
) -> float:
    """Bisect the input pulse width at which the storage loop starts to latch.

    For the given adversary, pulses shorter than the returned width resolve
    to 0 and longer ones to 1 (up to the bisection resolution).  Under the
    worst-case adversary this converges to ``Delta_0_tilde``; under the
    zero adversary to the deterministic critical width of the DATE'15
    model, which is strictly smaller.
    """
    from ..specs import as_adversary_factory, as_eta, as_pair

    pair, eta = as_pair(pair), as_eta(eta)
    adversary_factory = as_adversary_factory(adversary_factory)
    analysis = SPFAnalysis(pair, eta)
    if lo is None:
        lo = max(analysis.cancel_threshold, 1e-9)
    if hi is None:
        hi = analysis.latch_threshold

    # The bisection reuses one engine; every probe overrides the feedback
    # channel with a fresh adversary, exactly as rebuilding the circuit did.
    circuit = fed_back_or(EtaInvolutionChannel(pair, eta, ZeroAdversary()))
    engine = Engine(CircuitTopology(circuit), max_events=max_events)

    def final_value(delta_0: float) -> int:
        channel = EtaInvolutionChannel(pair, eta, adversary_factory())
        execution = engine.run(
            {"i": Signal.pulse(0.0, delta_0)},
            end_time,
            channels={"feedback": channel},
        )
        return execution.output_signals["or_out"].final_value

    if final_value(lo) != 0 or final_value(hi) != 1:
        raise ValueError("bisection bracket does not separate the two outcomes")
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if final_value(mid) == 1:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)
