"""The Short-Pulse Filtration (SPF) problem and empirical checkers.

Definition 2 of the paper: a circuit with one input and one output port
solves SPF if, for all admissible channel parameters (adversarial
choices),

F1  it has exactly one input and one output port (well-formedness),
F2  the zero input signal produces the zero output signal (no generation),
F3  some input pulse produces a non-zero output signal (nontriviality),
F4  there is an ``epsilon > 0`` such that no input pulse ever produces an
    output pulse shorter than ``epsilon`` (no short pulses).

Bounded-time SPF additionally requires the output to stabilise within a
bounded time after the input pulse; Theorem 9/12 of the paper (and the
DATE'15 predecessor) show that bounded-time SPF is unsolvable while
unbounded SPF is solvable with (eta-)involution channels.

The checkers in this module are *empirical*: they simulate the circuit for
a family of input pulses and adversaries and evaluate F1-F4 on the observed
executions.  They cannot prove universally quantified statements, but they
detect violations and they quantify the observed epsilon of F4, which the
tests compare against the analytical bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..circuits.circuit import Circuit
from ..circuits.simulator import Simulator
from ..core.adversary import Adversary, ZeroAdversary
from ..core.eta_channel import EtaInvolutionChannel
from ..core.transitions import Signal

__all__ = ["SPFObservation", "SPFReport", "SPFChecker"]


@dataclass
class SPFObservation:
    """Result of simulating the circuit for one input pulse and one adversary."""

    pulse_length: float
    adversary_name: str
    output: Signal
    stabilization_time: float
    shortest_output_pulse: Optional[float]
    final_value: int

    @property
    def is_zero_output(self) -> bool:
        """True if the output is the constant-0 signal."""
        return self.output.is_zero()


@dataclass
class SPFReport:
    """Aggregated result of an SPF check over pulse sweeps and adversaries."""

    well_formed: bool
    no_generation: bool
    nontrivial: bool
    observed_epsilon: float
    max_stabilization_time: float
    observations: List[SPFObservation] = field(default_factory=list)
    epsilon_threshold: float = 0.0

    @property
    def no_short_pulses(self) -> bool:
        """True if no output pulse shorter than ``epsilon_threshold`` was seen."""
        return self.observed_epsilon > self.epsilon_threshold

    @property
    def solves_spf(self) -> bool:
        """True if all four conditions held on the observed executions."""
        return (
            self.well_formed
            and self.no_generation
            and self.nontrivial
            and self.no_short_pulses
        )

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used in benchmark output and EXPERIMENTS.md."""
        return {
            "F1_well_formed": self.well_formed,
            "F2_no_generation": self.no_generation,
            "F3_nontrivial": self.nontrivial,
            "F4_no_short_pulses": self.no_short_pulses,
            "observed_epsilon": self.observed_epsilon,
            "max_stabilization_time": self.max_stabilization_time,
            "observations": len(self.observations),
            "solves_spf": self.solves_spf,
        }


class SPFChecker:
    """Empirical SPF checker for a circuit with one input and one output port.

    Parameters
    ----------
    circuit:
        The circuit under test.  If it has several output ports,
        ``output_port`` selects the SPF output (the remaining ports are
        treated as debug taps and ignored, preserving F1 in spirit).
    input_port / output_port:
        Port names; default to the unique input and the port named ``"o"``
        or the unique output.
    adversary_factories:
        Mapping of adversary names to factories; each factory is applied to
        every eta-involution channel of the circuit before a run.
    end_time:
        Simulation horizon per run.
    epsilon_threshold:
        F4 is reported as satisfied if every observed output pulse is
        strictly longer than this threshold.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        input_port: Optional[str] = None,
        output_port: Optional[str] = None,
        adversary_factories: Optional[Dict[str, Callable[[], Adversary]]] = None,
        end_time: float = 200.0,
        epsilon_threshold: float = 0.0,
        max_events: int = 2_000_000,
    ) -> None:
        self.circuit = circuit
        inputs = circuit.input_ports()
        outputs = circuit.output_ports()
        if input_port is None:
            if len(inputs) != 1:
                raise ValueError("circuit must have exactly one input port")
            input_port = inputs[0].name
        if output_port is None:
            names = [p.name for p in outputs]
            output_port = "o" if "o" in names else names[0]
        self.input_port = input_port
        self.output_port = output_port
        self.adversary_factories = adversary_factories or {"zero": ZeroAdversary}
        self.end_time = float(end_time)
        self.epsilon_threshold = float(epsilon_threshold)
        self.max_events = int(max_events)

    # ------------------------------------------------------------------ #

    def is_well_formed(self) -> bool:
        """F1: exactly one input port and one (primary) output port."""
        try:
            self.circuit.validate()
        except Exception:
            return False
        return len(self.circuit.input_ports()) == 1 and len(self.circuit.output_ports()) >= 1

    def _set_adversary(self, factory: Callable[[], Adversary]) -> None:
        for edge in self.circuit.edges.values():
            channel = edge.channel
            if isinstance(channel, EtaInvolutionChannel):
                channel.adversary = factory()

    def run_single(
        self, input_signal: Signal, adversary_name: str, factory: Callable[[], Adversary]
    ) -> Signal:
        """Simulate the circuit for one input signal under one adversary."""
        self._set_adversary(factory)
        simulator = Simulator(self.circuit, max_events=self.max_events)
        execution = simulator.run({self.input_port: input_signal}, self.end_time)
        return execution.output_signals[self.output_port]

    def check_no_generation(self) -> bool:
        """F2: the zero input signal produces the zero output signal."""
        for name, factory in self.adversary_factories.items():
            output = self.run_single(Signal.zero(), name, factory)
            if not output.is_zero():
                return False
        return True

    def observe(self, pulse_lengths: Sequence[float]) -> List[SPFObservation]:
        """Simulate every (pulse length, adversary) combination."""
        observations: List[SPFObservation] = []
        for name, factory in self.adversary_factories.items():
            for length in pulse_lengths:
                output = self.run_single(Signal.pulse(0.0, float(length)), name, factory)
                observations.append(
                    SPFObservation(
                        pulse_length=float(length),
                        adversary_name=name,
                        output=output,
                        stabilization_time=output.stabilization_time(),
                        shortest_output_pulse=output.shortest_pulse_length(),
                        final_value=output.final_value,
                    )
                )
        return observations

    def check(self, pulse_lengths: Sequence[float]) -> SPFReport:
        """Run the full empirical SPF check."""
        well_formed = self.is_well_formed()
        no_generation = self.check_no_generation()
        observations = self.observe(pulse_lengths)
        nontrivial = any(not obs.is_zero_output for obs in observations)
        shortest = [
            obs.shortest_output_pulse
            for obs in observations
            if obs.shortest_output_pulse is not None
        ]
        observed_epsilon = min(shortest) if shortest else math.inf
        stab_times = [
            obs.stabilization_time
            for obs in observations
            if math.isfinite(obs.stabilization_time)
        ]
        max_stab = max(stab_times) if stab_times else 0.0
        return SPFReport(
            well_formed=well_formed,
            no_generation=no_generation,
            nontrivial=nontrivial,
            observed_epsilon=observed_epsilon,
            max_stabilization_time=max_stab,
            observations=observations,
            epsilon_threshold=self.epsilon_threshold,
        )
