"""Fitting exp-channel parameters to measured delay samples (Fig. 9).

Question (c) of Section V asks whether the behaviour of a real inverter can
be matched by a *parametrised exp-channel* -- attractive because the three
exp-channel parameters (RC constant ``tau``, pure delay ``t_p``, threshold
``v_th``) are far easier to calibrate than a full measured delay function.
This module performs that calibration by non-linear least squares on the
measured ``(T, delta)`` samples of both polarities simultaneously (the
involution property ties the two polarities to the same three parameters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from ..core.delay_functions import ExpDelay
from ..core.involution import InvolutionPair
from .characterize import DelayMeasurement

__all__ = ["ExpFitResult", "fit_exp_channel", "exp_delay_model"]


def exp_delay_model(T: np.ndarray, tau: float, t_p: float, v_eff: float) -> np.ndarray:
    """Vectorised exp-channel delay ``delta(T)`` for effective threshold ``v_eff``.

    Out-of-domain arguments (where the true delay diverges to ``-inf``)
    return a large negative number so the least-squares residual heavily
    penalises parameter sets whose domain excludes measured samples.
    """
    T = np.asarray(T, dtype=float)
    argument = 1.0 - np.exp(-(T + t_p - tau * math.log(v_eff)) / tau)
    out = np.full_like(T, -1e6)
    valid = argument > 0
    out[valid] = tau * np.log(argument[valid]) + t_p - tau * math.log(1.0 - v_eff)
    return out


@dataclass
class ExpFitResult:
    """Result of an exp-channel fit.

    Attributes
    ----------
    tau, t_p, v_th:
        Fitted exp-channel parameters.
    rms_residual:
        Root-mean-square residual over all samples used in the fit.
    max_residual:
        Largest absolute residual.
    n_samples:
        Number of samples used.
    """

    tau: float
    t_p: float
    v_th: float
    rms_residual: float
    max_residual: float
    n_samples: int

    def pair(self) -> InvolutionPair:
        """The fitted exp-channel as an involution pair."""
        return InvolutionPair.exp_channel(self.tau, self.t_p, self.v_th)

    def delta_up(self) -> ExpDelay:
        """The fitted rising-output delay function."""
        return ExpDelay(self.tau, self.t_p, self.v_th, rising=True)

    def delta_down(self) -> ExpDelay:
        """The fitted falling-output delay function."""
        return ExpDelay(self.tau, self.t_p, self.v_th, rising=False)


def fit_exp_channel(
    measurement: DelayMeasurement,
    *,
    fit_threshold: bool = True,
    initial: Optional[Tuple[float, float, float]] = None,
    weight_small_T: float = 1.0,
) -> ExpFitResult:
    """Fit exp-channel parameters to a delay measurement.

    Parameters
    ----------
    measurement:
        Samples of both polarities from
        :class:`~repro.fitting.characterize.CharacterizationDriver`.
    fit_threshold:
        If False, the threshold is pinned to 0.5 and only ``tau``/``t_p``
        are fitted.
    initial:
        Optional ``(tau, t_p, v_th)`` starting point; estimated from the
        data if omitted.
    weight_small_T:
        Weight multiplier applied to samples with ``T`` below the median;
        values above 1 emphasise the small-``T`` region that matters for
        faithfulness (the paper's Fig. 9 discussion).
    """
    T_up, d_up = measurement.rising()
    T_down, d_down = measurement.falling()
    if len(T_up) + len(T_down) < 3:
        raise ValueError("need at least three samples to fit an exp-channel")

    all_d = np.concatenate([d_up, d_down])
    all_T = np.concatenate([T_up, T_down])
    d_max = float(np.max(all_d))
    if initial is None:
        tau0 = max(0.3 * d_max, 1e-3)
        t_p0 = max(0.5 * float(np.min(all_d)), 1e-3)
        initial = (tau0, t_p0, 0.5)

    median_T = float(np.median(all_T)) if len(all_T) else 0.0

    def weights(T: np.ndarray) -> np.ndarray:
        w = np.ones_like(T)
        if weight_small_T != 1.0:
            w[T <= median_T] = weight_small_T
        return w

    def residuals(params: np.ndarray) -> np.ndarray:
        tau, t_p = params[0], params[1]
        v_th = params[2] if fit_threshold else 0.5
        res_up = (exp_delay_model(T_up, tau, t_p, v_th) - d_up) * weights(T_up)
        res_down = (exp_delay_model(T_down, tau, t_p, 1.0 - v_th) - d_down) * weights(T_down)
        return np.concatenate([res_up, res_down])

    if fit_threshold:
        x0 = np.array(initial, dtype=float)
        lower = np.array([1e-6, 1e-6, 0.05])
        upper = np.array([np.inf, np.inf, 0.95])
    else:
        x0 = np.array(initial[:2], dtype=float)
        lower = np.array([1e-6, 1e-6])
        upper = np.array([np.inf, np.inf])

    solution = optimize.least_squares(
        residuals, x0, bounds=(lower, upper), method="trf", max_nfev=2000
    )
    tau = float(solution.x[0])
    t_p = float(solution.x[1])
    v_th = float(solution.x[2]) if fit_threshold else 0.5
    final = residuals(solution.x)
    return ExpFitResult(
        tau=tau,
        t_p=t_p,
        v_th=v_th,
        rms_residual=float(np.sqrt(np.mean(final**2))),
        max_residual=float(np.max(np.abs(final))),
        n_samples=len(final),
    )
