"""Deviation analysis and eta-band coverage (the methodology of Fig. 8/9).

To validate the eta-involution model the paper compares, per transition,

* the *predicted* threshold-crossing time obtained from a reference delay
  function ``delta_ref(T)`` (characterised under nominal conditions, or a
  fitted exp-channel), against
* the *actual* crossing time measured on the real (here:
  analog-simulated) circuit under some variation (supply ripple, process
  variation, ...).

The difference ``D`` plotted over the previous-output-to-input delay ``T``
is the modeling error of the deterministic involution model; whenever
``D`` falls inside the admissible band ``[-eta_minus, +eta_plus]`` the
eta-involution model can reproduce the real trace exactly.  The band
itself is fixed by faithfulness: given ``eta_plus``, the paper sets
``eta_minus = delta_down(-eta_plus) - delta_min - eta_plus`` (constraint
(C) with equality, i.e. the largest admissible value).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.adversary import EtaBound
from ..core.constraint import max_eta_minus
from ..core.involution import InvolutionPair
from .characterize import DelayMeasurement

__all__ = [
    "DeviationSample",
    "DeviationAnalysis",
    "compute_deviations",
    "eta_band",
    "simulated_eta_coverage",
]


@dataclass(frozen=True)
class DeviationSample:
    """Deviation of one measured transition from the reference prediction."""

    T: float
    deviation: float
    rising_output: bool
    measured_delta: float
    predicted_delta: float


@dataclass
class DeviationAnalysis:
    """Deviation samples plus the admissible eta band and coverage statistics."""

    samples: List[DeviationSample]
    eta: EtaBound
    label: str = ""

    # ------------------------------------------------------------------ #

    def polarity(self, rising_output: bool) -> Tuple[np.ndarray, np.ndarray]:
        """``(T, D)`` arrays for one output polarity, sorted by ``T``."""
        selected = [s for s in self.samples if s.rising_output == rising_output]
        selected.sort(key=lambda s: s.T)
        return (
            np.array([s.T for s in selected], dtype=float),
            np.array([s.deviation for s in selected], dtype=float),
        )

    def covered(self, sample: DeviationSample) -> bool:
        """True if the deviation can be absorbed by an admissible eta shift."""
        return -self.eta.eta_minus <= sample.deviation <= self.eta.eta_plus

    def coverage(self, *, T_max: Optional[float] = None) -> float:
        """Fraction of samples (optionally restricted to ``T <= T_max``) covered."""
        relevant = [
            s for s in self.samples if T_max is None or s.T <= T_max
        ]
        if not relevant:
            return float("nan")
        return sum(self.covered(s) for s in relevant) / len(relevant)

    def max_abs_deviation(self, *, T_max: Optional[float] = None) -> float:
        """Largest absolute deviation (optionally restricted to ``T <= T_max``)."""
        relevant = [
            abs(s.deviation) for s in self.samples if T_max is None or s.T <= T_max
        ]
        return max(relevant) if relevant else float("nan")

    def summary(self, *, small_T: Optional[float] = None) -> Dict[str, float]:
        """Key numbers reported by the benchmark harness."""
        T_values = [s.T for s in self.samples]
        if small_T is None and T_values:
            small_T = float(np.percentile(T_values, 25.0))
        return {
            "n_samples": float(len(self.samples)),
            "eta_plus": self.eta.eta_plus,
            "eta_minus": self.eta.eta_minus,
            "coverage_all": self.coverage(),
            "coverage_small_T": self.coverage(T_max=small_T),
            "max_abs_deviation": self.max_abs_deviation(),
            "max_abs_deviation_small_T": self.max_abs_deviation(T_max=small_T),
            "small_T_threshold": float(small_T) if small_T is not None else float("nan"),
        }


def eta_band(
    reference: InvolutionPair,
    eta_plus: float,
    *,
    back_off: float = 0.0,
) -> EtaBound:
    """The paper's eta-band dimensioning: largest ``eta_minus`` for ``eta_plus``.

    Section V sets ``eta_minus = delta_down(-eta_plus) - delta_min -
    eta_plus`` (the supremum allowed by constraint (C)); ``back_off``
    shrinks it relatively to make the constraint strict.
    """
    supremum = max_eta_minus(reference, eta_plus)
    return EtaBound(eta_plus, supremum * (1.0 - back_off))


def compute_deviations(
    measurement: DelayMeasurement,
    reference: InvolutionPair,
    eta: Optional[EtaBound] = None,
    *,
    eta_plus: Optional[float] = None,
    label: str = "",
) -> DeviationAnalysis:
    """Compare a measurement against a reference delay pair.

    For every measured sample ``(T, delta)`` the deviation is
    ``D = delta - delta_ref(T)`` with ``delta_ref`` the reference delay
    function of the sample's polarity.  The admissible band is either given
    explicitly (``eta``, an :class:`EtaBound` or its spec dict) or derived
    from ``eta_plus`` via :func:`eta_band`; ``reference`` may be a live
    pair or its spec dict.
    """
    from ..specs import as_eta, as_pair

    reference = as_pair(reference)
    if eta is not None:
        eta = as_eta(eta)
    if eta is None:
        if eta_plus is None:
            raise ValueError("either eta or eta_plus must be given")
        eta = eta_band(reference, eta_plus)
    deviations: List[DeviationSample] = []
    for sample in measurement.samples:
        delta_ref_fn = reference.delta_up if sample.rising_output else reference.delta_down
        predicted = delta_ref_fn(sample.T)
        if not math.isfinite(predicted):
            # The reference model predicts cancellation for this T; such
            # samples lie outside the model's domain and are skipped (they
            # cannot be compensated by any finite eta shift).
            continue
        deviations.append(
            DeviationSample(
                T=sample.T,
                deviation=sample.delta - predicted,
                rising_output=sample.rising_output,
                measured_delta=sample.delta,
                predicted_delta=predicted,
            )
        )
    return DeviationAnalysis(samples=deviations, eta=eta, label=label)


def _simulated_eta_coverage(
    pair: InvolutionPair,
    eta: EtaBound,
    *,
    stages: int = 3,
    n_runs: int = 50,
    seed: int = 2018,
    stimulus=None,
    end_time: Optional[float] = None,
    max_workers: Optional[int] = None,
    backend: str = "thread",
    label: str = "eta-monte-carlo",
    observed: Optional[Dict[str, object]] = None,
    checkpoint=None,
) -> DeviationAnalysis:
    """Monte Carlo coverage check on the event-driven engine.

    The digital-side counterpart of :func:`compute_deviations`: an inverter
    chain of eta-involution channels is executed for ``n_runs`` sampled
    adversaries (:func:`repro.engine.sweep.eta_monte_carlo`) through one
    shared :func:`repro.engine.sweep.run_many` sweep (``max_workers`` and
    ``backend`` fan it out; ``backend="process"`` gives real multi-core
    scaling since the scenarios are picklable and seeded per run).  Per channel and per
    run, every output transition's crossing time is compared against the
    prediction of the *deterministic* involution delay function applied to
    the run's actual previous-output-to-input delay ``T`` -- exactly the
    per-transition methodology of Fig. 8, with the event-driven engine
    standing in for the analog substrate.  Since every sampled shift is
    admissible, the resulting deviations must all lie inside the band
    (``coverage() == 1.0``); anything less would indicate an engine/kernel
    regression, which makes this both a validation of the model's claim
    (admissible noise is exactly reproducible) and an end-to-end self-check
    of the sweep machinery.

    Transitions are matched with their generating inputs by index per
    channel; channels whose run produced cancellations (input/output counts
    differ, possible for shifts near the cancellation boundary) are skipped
    for that run.
    """
    from typing import Mapping

    from ..circuits.library import inverter_chain
    from ..core.adversary import ZeroAdversary
    from ..core.eta_channel import EtaInvolutionChannel
    from ..core.transitions import Signal
    from ..engine.scheduler import CircuitTopology
    from ..engine.sweep import eta_monte_carlo, run_many
    from ..specs import as_eta, as_pair

    pair, eta = as_pair(pair), as_eta(eta)
    if isinstance(stimulus, Mapping):
        from ..io.netlist import signal_from_dict

        stimulus = signal_from_dict(stimulus)
    circuit = inverter_chain(
        stages, lambda: EtaInvolutionChannel(pair, eta, ZeroAdversary())
    )
    if stimulus is None:
        # A well-separated train: wide pulses with generous gaps, so no run
        # comes near the cancellation boundary.
        unit = pair.delta_up_inf + pair.delta_down_inf
        stimulus = Signal.pulse_train(1.0, [2.0 * unit] * 4, [3.0 * unit] * 3)
    inputs = {"in": stimulus}
    if end_time is None:
        last = stimulus.transitions[-1].time if len(stimulus) else 0.0
        end_time = last + 10.0 * (stages + 1) * pair.delta_up_inf

    topology = CircuitTopology(circuit)
    scenarios = eta_monte_carlo(circuit, inputs, end_time, n_runs, seed=seed)
    sweep = run_many(
        topology,
        scenarios,
        max_workers=max_workers,
        backend=backend,
        checkpoint=checkpoint,
    )
    if observed is not None:
        # Provenance records the strategy that actually ran (a vector
        # request may have fallen back for unvectorizable channels).
        observed["backend_executed"] = sweep.backend or backend
        if sweep.shard_report is not None:
            # Sharded sweeps (checkpoint= or backend="auto") also report
            # how much of the work was resumed from the checkpoint store.
            observed["chunks_computed"] = sweep.shard_report.computed
            observed["chunks_resumed"] = sweep.shard_report.resumed

    samples: List[DeviationSample] = []
    eta_edges = [
        (ename, edge)
        for ename, edge in topology.edges.items()
        if isinstance(edge.channel, EtaInvolutionChannel)
    ]
    for run in sweep:
        for ename, edge in eta_edges:
            run_in = list(run.execution.node_signals[edge.source])
            run_out = list(run.execution.edge_signals[ename])
            if len(run_in) != len(run_out):
                continue  # cancellations: index matching would misalign
            for n in range(1, len(run_in)):  # n = 0 has T = inf
                T = run_in[n].time - run_out[n - 1].time
                rising_output = run_out[n].value == 1
                delta_ref = pair.delta_up if rising_output else pair.delta_down
                predicted = delta_ref(T)
                if not math.isfinite(predicted):
                    continue
                measured = run_out[n].time - run_in[n].time
                samples.append(
                    DeviationSample(
                        T=float(T),
                        deviation=float(measured - predicted),
                        rising_output=bool(rising_output),
                        measured_delta=float(measured),
                        predicted_delta=float(predicted),
                    )
                )
    return DeviationAnalysis(samples=samples, eta=eta, label=label)


def simulated_eta_coverage(
    pair: InvolutionPair,
    eta: EtaBound,
    *,
    stages: int = 3,
    n_runs: int = 50,
    seed: int = 2018,
    stimulus=None,
    end_time: Optional[float] = None,
    max_workers: Optional[int] = None,
    backend: str = "thread",
    label: str = "eta-monte-carlo",
) -> DeviationAnalysis:
    """Monte Carlo coverage check on the event-driven engine.

    See :func:`_simulated_eta_coverage` for the methodology.

    .. deprecated::
        Prefer ``repro.api.experiment("eta_coverage", {...})``; this
        wrapper routes speccable arguments through the canonical
        registered-experiment path (provenance, caching) and only falls
        back to a direct call for unspeccable pairs or stimuli.
    """
    from ..experiments.base import (
        eta_param,
        maybe_spec_params,
        pair_param,
        run_via_spec,
        signal_param,
    )

    params = maybe_spec_params(
        lambda: {
            "pair": pair_param(pair),
            "eta": eta_param(eta),
            "stages": int(stages),
            "n_runs": int(n_runs),
            "seed": int(seed),
            "stimulus": signal_param(stimulus),
            "end_time": None if end_time is None else float(end_time),
            "label": str(label),
        }
    )
    if params is not None:
        return run_via_spec(
            "eta_coverage", params, backend=backend, max_workers=max_workers
        )
    return _simulated_eta_coverage(
        pair,
        eta,
        stages=stages,
        n_runs=n_runs,
        seed=seed,
        stimulus=stimulus,
        end_time=end_time,
        max_workers=max_workers,
        backend=backend,
        label=label,
    )


def _eta_coverage_experiment(params: dict, context):
    """Registered runner for the ``eta_coverage`` experiment kind."""
    from ..experiments.base import ExperimentOutcome

    analysis = _simulated_eta_coverage(
        params["pair"],
        params["eta"],
        stages=params["stages"],
        n_runs=params["n_runs"],
        seed=params["seed"],
        stimulus=params["stimulus"],
        end_time=params["end_time"],
        backend=context.backend,
        max_workers=context.max_workers,
        label=params["label"],
        observed=context.observed,
        checkpoint=getattr(context, "checkpoint", None),
    )
    return ExperimentOutcome(
        rows=[analysis.summary()],
        summary={"label": analysis.label},
        raw=analysis,
    )


def _register() -> None:
    from ..specs import register_experiment_kind

    register_experiment_kind(
        "eta_coverage",
        _eta_coverage_experiment,
        description=(
            "Monte Carlo eta-coverage self-check: sampled admissible "
            "adversaries on an eta-involution inverter chain must deviate "
            "from the deterministic prediction only within the band "
            "(coverage == 1.0)"
        ),
        defaults={
            "pair": {"kind": "exp", "tau": 1.0, "t_p": 0.5, "v_th": 0.5},
            "eta": {"eta_plus": 0.05, "eta_minus": 0.05},
            "stages": 3,
            "n_runs": 50,
            "seed": 2018,
            "stimulus": None,
            "end_time": None,
            "label": "eta-monte-carlo",
        },
    )


_register()
