"""Deviation analysis and eta-band coverage (the methodology of Fig. 8/9).

To validate the eta-involution model the paper compares, per transition,

* the *predicted* threshold-crossing time obtained from a reference delay
  function ``delta_ref(T)`` (characterised under nominal conditions, or a
  fitted exp-channel), against
* the *actual* crossing time measured on the real (here:
  analog-simulated) circuit under some variation (supply ripple, process
  variation, ...).

The difference ``D`` plotted over the previous-output-to-input delay ``T``
is the modeling error of the deterministic involution model; whenever
``D`` falls inside the admissible band ``[-eta_minus, +eta_plus]`` the
eta-involution model can reproduce the real trace exactly.  The band
itself is fixed by faithfulness: given ``eta_plus``, the paper sets
``eta_minus = delta_down(-eta_plus) - delta_min - eta_plus`` (constraint
(C) with equality, i.e. the largest admissible value).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.adversary import EtaBound
from ..core.constraint import max_eta_minus
from ..core.involution import InvolutionPair
from .characterize import DelayMeasurement, DelaySample

__all__ = ["DeviationSample", "DeviationAnalysis", "compute_deviations", "eta_band"]


@dataclass(frozen=True)
class DeviationSample:
    """Deviation of one measured transition from the reference prediction."""

    T: float
    deviation: float
    rising_output: bool
    measured_delta: float
    predicted_delta: float


@dataclass
class DeviationAnalysis:
    """Deviation samples plus the admissible eta band and coverage statistics."""

    samples: List[DeviationSample]
    eta: EtaBound
    label: str = ""

    # ------------------------------------------------------------------ #

    def polarity(self, rising_output: bool) -> Tuple[np.ndarray, np.ndarray]:
        """``(T, D)`` arrays for one output polarity, sorted by ``T``."""
        selected = [s for s in self.samples if s.rising_output == rising_output]
        selected.sort(key=lambda s: s.T)
        return (
            np.array([s.T for s in selected], dtype=float),
            np.array([s.deviation for s in selected], dtype=float),
        )

    def covered(self, sample: DeviationSample) -> bool:
        """True if the deviation can be absorbed by an admissible eta shift."""
        return -self.eta.eta_minus <= sample.deviation <= self.eta.eta_plus

    def coverage(self, *, T_max: Optional[float] = None) -> float:
        """Fraction of samples (optionally restricted to ``T <= T_max``) covered."""
        relevant = [
            s for s in self.samples if T_max is None or s.T <= T_max
        ]
        if not relevant:
            return float("nan")
        return sum(self.covered(s) for s in relevant) / len(relevant)

    def max_abs_deviation(self, *, T_max: Optional[float] = None) -> float:
        """Largest absolute deviation (optionally restricted to ``T <= T_max``)."""
        relevant = [
            abs(s.deviation) for s in self.samples if T_max is None or s.T <= T_max
        ]
        return max(relevant) if relevant else float("nan")

    def summary(self, *, small_T: Optional[float] = None) -> Dict[str, float]:
        """Key numbers reported by the benchmark harness."""
        T_values = [s.T for s in self.samples]
        if small_T is None and T_values:
            small_T = float(np.percentile(T_values, 25.0))
        return {
            "n_samples": float(len(self.samples)),
            "eta_plus": self.eta.eta_plus,
            "eta_minus": self.eta.eta_minus,
            "coverage_all": self.coverage(),
            "coverage_small_T": self.coverage(T_max=small_T),
            "max_abs_deviation": self.max_abs_deviation(),
            "max_abs_deviation_small_T": self.max_abs_deviation(T_max=small_T),
            "small_T_threshold": float(small_T) if small_T is not None else float("nan"),
        }


def eta_band(
    reference: InvolutionPair,
    eta_plus: float,
    *,
    back_off: float = 0.0,
) -> EtaBound:
    """The paper's eta-band dimensioning: largest ``eta_minus`` for ``eta_plus``.

    Section V sets ``eta_minus = delta_down(-eta_plus) - delta_min -
    eta_plus`` (the supremum allowed by constraint (C)); ``back_off``
    shrinks it relatively to make the constraint strict.
    """
    supremum = max_eta_minus(reference, eta_plus)
    return EtaBound(eta_plus, supremum * (1.0 - back_off))


def compute_deviations(
    measurement: DelayMeasurement,
    reference: InvolutionPair,
    eta: Optional[EtaBound] = None,
    *,
    eta_plus: Optional[float] = None,
    label: str = "",
) -> DeviationAnalysis:
    """Compare a measurement against a reference delay pair.

    For every measured sample ``(T, delta)`` the deviation is
    ``D = delta - delta_ref(T)`` with ``delta_ref`` the reference delay
    function of the sample's polarity.  The admissible band is either given
    explicitly (``eta``) or derived from ``eta_plus`` via :func:`eta_band`.
    """
    if eta is None:
        if eta_plus is None:
            raise ValueError("either eta or eta_plus must be given")
        eta = eta_band(reference, eta_plus)
    deviations: List[DeviationSample] = []
    for sample in measurement.samples:
        delta_ref_fn = reference.delta_up if sample.rising_output else reference.delta_down
        predicted = delta_ref_fn(sample.T)
        if not math.isfinite(predicted):
            # The reference model predicts cancellation for this T; such
            # samples lie outside the model's domain and are skipped (they
            # cannot be compensated by any finite eta shift).
            continue
        deviations.append(
            DeviationSample(
                T=sample.T,
                deviation=sample.delta - predicted,
                rising_output=sample.rising_output,
                measured_delta=sample.delta,
                predicted_delta=predicted,
            )
        )
    return DeviationAnalysis(samples=deviations, eta=eta, label=label)
