"""Delay characterisation, exp-channel fitting and eta-coverage analysis."""

from .characterize import (
    CharacterizationDriver,
    DelayMeasurement,
    DelaySample,
    extract_delay_samples,
)
from .eta_coverage import (
    DeviationAnalysis,
    DeviationSample,
    compute_deviations,
    eta_band,
    simulated_eta_coverage,
)
from .exp_fit import ExpFitResult, exp_delay_model, fit_exp_channel

__all__ = [
    "DelaySample",
    "DelayMeasurement",
    "CharacterizationDriver",
    "extract_delay_samples",
    "ExpFitResult",
    "fit_exp_channel",
    "exp_delay_model",
    "DeviationSample",
    "DeviationAnalysis",
    "compute_deviations",
    "eta_band",
    "simulated_eta_coverage",
]
