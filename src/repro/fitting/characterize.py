"""Delay-function characterisation of an analog inverter stage.

The validation methodology of Section V (and of the GLSVLSI'15 companion
paper [12]) extracts the single-history delay function ``delta(T)`` of a
real inverter from recorded waveforms:

* input pulses of varying width are applied to the stage,
* input and output waveforms are digitised at the switching threshold
  ``V_th = V_DD / 2``,
* every matched (input transition, output transition) pair yields one
  sample ``(T, delta)`` where ``delta`` is the input-to-output delay and
  ``T`` the previous-output-to-input delay (Fig. 1),
* sweeping the pulse width sweeps ``T`` from large positive values down to
  the regime where the pulse no longer propagates.

Positive input pulses sweep the delay of the *second* (falling) input edge,
which for an inverter produces a rising output edge, i.e. samples of
``delta_up`` of the stage seen as an inverting channel; negative input
pulses symmetrically sample ``delta_down``.  The resulting samples can be
turned into a :class:`~repro.core.involution.InvolutionPair` via
:class:`TableDelay` interpolation or fitted with an exp-channel
(:mod:`repro.fitting.exp_fit`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analog.chain import AnalogInverterChain, pulse_stimulus
from ..analog.variations import ConstantSupply, SupplyProfile
from ..core.delay_functions import TableDelay
from ..core.involution import InvolutionPair
from ..core.transitions import Signal

__all__ = ["DelaySample", "DelayMeasurement", "CharacterizationDriver"]


@dataclass(frozen=True)
class DelaySample:
    """One measured ``(T, delta)`` pair.

    ``rising_output`` states the polarity of the *output* transition (the
    convention used for ``delta_up`` / ``delta_down`` throughout the
    package); ``pulse_width`` records the stimulus that produced it.
    """

    T: float
    delta: float
    rising_output: bool
    pulse_width: float


@dataclass
class DelayMeasurement:
    """A collection of delay samples for one stage under one condition."""

    samples: List[DelaySample] = field(default_factory=list)
    label: str = ""

    def add(self, sample: DelaySample) -> None:
        """Append one sample."""
        self.samples.append(sample)

    def polarity(self, rising_output: bool) -> Tuple[np.ndarray, np.ndarray]:
        """``(T, delta)`` arrays of one polarity, sorted by ``T``."""
        selected = [s for s in self.samples if s.rising_output == rising_output]
        selected.sort(key=lambda s: s.T)
        T = np.array([s.T for s in selected], dtype=float)
        delta = np.array([s.delta for s in selected], dtype=float)
        return T, delta

    def rising(self) -> Tuple[np.ndarray, np.ndarray]:
        """Samples of ``delta_up`` (rising output transitions)."""
        return self.polarity(True)

    def falling(self) -> Tuple[np.ndarray, np.ndarray]:
        """Samples of ``delta_down`` (falling output transitions)."""
        return self.polarity(False)

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------ #

    def to_involution_pair(
        self,
        *,
        dedupe_tolerance: float = 1e-6,
        validate: bool = False,
    ) -> InvolutionPair:
        """Interpolate the samples into an involution pair (``TableDelay``).

        Measured pairs satisfy the involution property only approximately;
        validation therefore defaults to off (use
        :meth:`InvolutionPair.involution_residual` to quantify it).
        """
        up = self._table(True, dedupe_tolerance)
        down = self._table(False, dedupe_tolerance)
        return InvolutionPair(up, down, validate=validate)

    def _table(self, rising_output: bool, tolerance: float) -> TableDelay:
        T, delta = self.polarity(rising_output)
        if len(T) < 2:
            raise ValueError(
                "need at least two samples per polarity to build a TableDelay"
            )
        keep_T: List[float] = []
        keep_d: List[float] = []
        for t_value, d_value in zip(T, delta):
            if keep_T and t_value - keep_T[-1] <= tolerance:
                continue
            keep_T.append(float(t_value))
            keep_d.append(float(d_value))
        return TableDelay(keep_T, keep_d)


class CharacterizationDriver:
    """Runs the pulse-width sweep on an analog inverter chain stage.

    Parameters
    ----------
    chain:
        The analog chain; the characterised stage is ``stage_index``.
    stage_index:
        Which inverter to characterise (0-based).  Its *input* waveform is
        the chain input for stage 0, otherwise the previous stage's output,
        so later stages see realistic (band-limited) input slopes exactly
        as in the measurement setup.
    supply:
        Supply profile (constant nominal if omitted).  A callable factory
        with a ``sample()`` method (e.g. ``RandomPhaseSineSupply``) is
        drawn from anew for every pulse, reproducing the random-phase
        procedure of the paper.
    threshold_fraction:
        Digitisation threshold as a fraction of the nominal supply.
    settle:
        Idle time before the pulse [ps], letting the chain settle and
        providing a long previous-output-to-input delay for the first edge.
    slew:
        Input slew of the stimulus [ps].
    """

    def __init__(
        self,
        chain: AnalogInverterChain,
        *,
        stage_index: int = 0,
        supply: Optional[object] = None,
        threshold_fraction: float = 0.5,
        settle: float = 120.0,
        tail: float = 400.0,
        slew: float = 2.0,
    ) -> None:
        if not (0 <= stage_index < chain.stages):
            raise ValueError("stage_index out of range")
        self.chain = chain
        self.stage_index = stage_index
        self.supply = supply
        self.threshold_fraction = float(threshold_fraction)
        self.settle = float(settle)
        self.tail = float(tail)
        self.slew = float(slew)

    # ------------------------------------------------------------------ #

    def _supply_for_run(self) -> SupplyProfile:
        if self.supply is None:
            return ConstantSupply(self.chain.technology.vdd_nominal)
        if hasattr(self.supply, "sample"):
            return self.supply.sample()
        return self.supply

    def _nominal_vdd(self) -> float:
        if self.supply is None:
            return self.chain.technology.vdd_nominal
        if hasattr(self.supply, "nominal"):
            return float(self.supply.nominal())
        return self.chain.technology.vdd_nominal

    def run_pulse(self, width: float, polarity: int = 1) -> Tuple[Signal, Signal]:
        """Apply one pulse and return digitised (stage input, stage output).

        ``polarity=1`` applies a positive input pulse (low-high-low),
        ``polarity=0`` a negative one.
        """
        vdd_nom = self._nominal_vdd()
        threshold = self.threshold_fraction * vdd_nom
        duration = self.settle + width + self.tail
        grid = self.chain.recommended_time_grid(duration, supply_voltage=vdd_nom)
        if polarity == 1:
            stimulus = pulse_stimulus(
                grid, self.settle, width, high=vdd_nom, low=0.0, slew=self.slew
            )
        else:
            stimulus = vdd_nom - pulse_stimulus(
                grid, self.settle, width, high=vdd_nom, low=0.0, slew=self.slew
            )
        result = self.chain.simulate(grid, stimulus, self._supply_for_run())
        if self.stage_index == 0:
            stage_input = result.input_waveform
        else:
            stage_input = result.stage(self.stage_index - 1)
        stage_output = result.stage(self.stage_index)
        return (
            stage_input.to_signal(threshold),
            stage_output.to_signal(threshold),
        )

    def measure(
        self,
        widths: Sequence[float],
        *,
        polarities: Sequence[int] = (1, 0),
        label: str = "",
    ) -> DelayMeasurement:
        """Run the full sweep and collect ``(T, delta)`` samples."""
        measurement = DelayMeasurement(label=label)
        for polarity in polarities:
            for width in widths:
                input_signal, output_signal = self.run_pulse(float(width), polarity)
                for sample in extract_delay_samples(
                    input_signal, output_signal, pulse_width=float(width)
                ):
                    measurement.add(sample)
        return measurement


def extract_delay_samples(
    input_signal: Signal,
    output_signal: Signal,
    *,
    pulse_width: float = float("nan"),
) -> List[DelaySample]:
    """Match input and output transitions of an inverting stage into samples.

    Every input transition is matched with the first output transition of
    the opposite value occurring after the previous match; unmatched input
    transitions (suppressed pulses) produce no sample.  The first input
    transition has no previous output transition, so its ``T`` is infinite
    and it is skipped (its delay is the saturation value ``delta_inf``,
    which the :class:`TableDelay` tail models anyway).
    """
    samples: List[DelaySample] = []
    output_transitions = list(output_signal)
    cursor = 0
    previous_output_time: Optional[float] = None
    for in_tr in input_signal:
        expected_value = 1 - in_tr.value  # inverting stage
        match = None
        for index in range(cursor, len(output_transitions)):
            out_tr = output_transitions[index]
            if out_tr.value == expected_value and out_tr.time > in_tr.time - 1e-12:
                match = (index, out_tr)
                break
        if match is None:
            # The pulse was filtered by the stage; subsequent input
            # transitions still update the previous-output bookkeeping via
            # the last real output transition, so just skip.
            previous_output_time = previous_output_time
            continue
        index, out_tr = match
        cursor = index + 1
        delta = out_tr.time - in_tr.time
        if previous_output_time is not None:
            T = in_tr.time - previous_output_time
            samples.append(
                DelaySample(
                    T=float(T),
                    delta=float(delta),
                    rising_output=bool(expected_value == 1),
                    pulse_width=pulse_width,
                )
            )
        previous_output_time = out_tr.time
    return samples
