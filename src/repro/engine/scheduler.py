"""Event scheduler and execution engine for circuits of single-history channels.

This module hosts the machinery that used to live inside the 475-line
``Simulator.run``: the heapq event queue with same-time batching and lazy
tombstone deletion (:class:`Scheduler`), the validated/precomputed
structural view of a circuit (:class:`CircuitTopology`), and the main
event loop (:class:`Engine`).  :class:`repro.circuits.simulator.Simulator`
is a thin compatibility wrapper around these classes, and the batched
sweep runner (:mod:`repro.engine.sweep`) reuses one
:class:`CircuitTopology` across many runs.

The event protocol is deliberately small -- three integer event kinds:

* ``PORT``    -- an input-port transition ``(port_id, value)``,
* ``DELIVER`` -- a channel-output delivery ``(edge_id, value, event_id)``,
* ``SETTLE``  -- the time-0 gate settling pass ``(gate_id, ...)``.

All per-channel semantics (tentative delays, transport cancellation,
inertial rejection, no-change suppression) live in the shared
:class:`~repro.engine.kernel.ChannelKernel`; the engine only routes
delivered transitions to gates and ports and performs the zero-time
(delta-cycle) propagation of changed node outputs.

Hot-path design: :class:`CircuitTopology` assigns every node and edge a
dense integer id and precomputes per-gate and per-edge dispatch tables
(direct gate-function and kernel object references), so the main loop runs
on list indexing instead of string-keyed dict lookups.  Cancelled channel
deliveries never reach a batch -- the kernels tombstone them in a set
shared with the scheduler, which discards them lazily during
:meth:`Scheduler.pop_batch`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.transitions import Signal, Transition
from .errors import SimulationError
from .kernel import ChannelKernel

__all__ = [
    "PORT",
    "DELIVER",
    "SETTLE",
    "Scheduler",
    "CircuitTopology",
    "Execution",
    "Engine",
]

#: Event kinds of the engine's event protocol (small ints: the batch loop
#: dispatches on them with integer comparisons).
PORT = 0
DELIVER = 1
SETTLE = 2

#: Node kinds of the precomputed topology tables.
_NODE_INPUT = 0
_NODE_GATE = 1
_NODE_OUTPUT = 2


class Scheduler:
    """A time-ordered event queue with same-time batching and lazy deletion.

    Events pushed at the exact same time are popped together in one batch
    so that gates see all their simultaneous input changes at once (delta
    cycle semantics) instead of producing zero-time glitches.  The internal
    monotonic counter breaks ties deterministically and doubles as the
    event-id source shared with the channel kernels.

    The kernels record transport-cancelled delivery events in
    :attr:`tombstones` (a set shared across all kernels of a run -- event
    ids are globally unique); :meth:`pop_batch` discards those events
    lazily while popping, so cancelled deliveries never reach a batch and
    are never counted as processed events.
    """

    def __init__(self, tombstones: Optional[Set[int]] = None) -> None:
        self._heap: List[Tuple[float, int, int, object]] = []
        self._counter = itertools.count()
        #: Event ids of cancelled deliveries, shared with the kernels.
        self.tombstones: Set[int] = tombstones if tombstones is not None else set()

    def next_id(self) -> int:
        """A fresh monotonically increasing id (shared with the kernels)."""
        return next(self._counter)

    def push(self, time: float, kind: int, payload: object) -> None:
        """Schedule one event."""
        heapq.heappush(self._heap, (time, next(self._counter), kind, payload))

    def pop_batch(self) -> Optional[Tuple[float, List[Tuple[int, object]]]]:
        """Pop every live event scheduled for the earliest pending time.

        Tombstoned deliveries are skipped (their tombstone is consumed).
        Returns ``None`` when no live event remains.
        """
        heap = self._heap
        tombstones = self.tombstones
        while heap:
            time, _, kind, payload = heapq.heappop(heap)
            if kind == DELIVER and payload[2] in tombstones:
                tombstones.discard(payload[2])
                continue
            batch = [(kind, payload)]
            while heap and heap[0][0] == time:
                _, _, more_kind, more_payload = heapq.heappop(heap)
                if more_kind == DELIVER and more_payload[2] in tombstones:
                    tombstones.discard(more_payload[2])
                    continue
                batch.append((more_kind, more_payload))
            return time, batch
        return None

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class CircuitTopology:
    """Validated, precomputed structural view of a circuit.

    Building one is O(nodes x edges) (validation plus adjacency); the
    engine's event loop then runs entirely on dense-integer list indexing.
    A topology is immutable with respect to the circuit structure and can
    be shared across many runs (and across threads/processes) -- this
    amortisation is what the batched sweep runner is built on.

    Two layers of precomputation coexist:

    * the string-keyed maps of the original refactor (``edges``,
      ``gate_inputs``, ``edges_from``...) -- the stable introspection API,
    * dense integer dispatch tables (``node_index``/``edge_index`` ids,
      per-gate input-edge ids and gate-function references, per-edge
      source/target ids and target-kind flags) that the engine's hot loop
      indexes directly.
    """

    def __init__(self, circuit) -> None:
        from ..circuits.circuit import GateInstance, InputPort, OutputPort
        from ..core.channel import ZeroDelayChannel

        circuit.validate()
        self.circuit = circuit
        self.edges = dict(circuit.edges)
        self.input_ports: List[str] = []
        self.output_ports: List[str] = []
        self.gate_names: List[str] = []
        self.gate_types: Dict[str, object] = {}
        self.gate_initial: Dict[str, int] = {}
        nodes = circuit.nodes
        for name, node in nodes.items():
            if isinstance(node, InputPort):
                self.input_ports.append(name)
            elif isinstance(node, OutputPort):
                self.output_ports.append(name)
            elif isinstance(node, GateInstance):
                self.gate_names.append(name)
                self.gate_types[name] = node.gate_type
                self.gate_initial[name] = node.initial_value
        self.is_gate = set(self.gate_names)
        self.is_output = set(self.output_ports)
        #: Edges driven by each node (empty list when none).
        self.edges_from: Dict[str, List[object]] = {name: [] for name in nodes}
        #: Edges driving each node, sorted by pin.
        self.edges_into: Dict[str, List[object]] = {name: [] for name in nodes}
        for edge in self.edges.values():
            self.edges_from[edge.source].append(edge)
            self.edges_into[edge.target].append(edge)
        for into in self.edges_into.values():
            into.sort(key=lambda e: e.pin)
        #: Gate input views: gate name -> driving edge names in pin order.
        self.gate_inputs: Dict[str, List[str]] = {
            gname: [e.name for e in self.edges_into[gname]]
            for gname in self.gate_names
        }
        #: The unique driving edge of every output port.
        self.output_driver: Dict[str, object] = {
            oname: self.edges_into[oname][0] for oname in self.output_ports
        }
        self.input_port_set = frozenset(self.input_ports)
        #: Zero-delay flags of the *base* channels (recomputed per run only
        #: for overridden edges).
        self.zero_delay_class = ZeroDelayChannel
        self.base_zero_delay: Dict[str, bool] = {
            ename: isinstance(edge.channel, ZeroDelayChannel)
            for ename, edge in self.edges.items()
        }

        # -- integer dispatch tables (the engine hot path) ----------------- #
        #: Node names in id order / name -> dense integer id.
        self.node_names: List[str] = list(nodes)
        self.node_index: Dict[str, int] = {
            name: nid for nid, name in enumerate(self.node_names)
        }
        #: Edge names in id order / name -> dense integer id / Edge by id.
        self.edge_names: List[str] = list(self.edges)
        self.edge_index: Dict[str, int] = {
            name: eid for eid, name in enumerate(self.edge_names)
        }
        self.edge_list: List[object] = [self.edges[name] for name in self.edge_names]
        node_index = self.node_index
        n_nodes = len(self.node_names)
        #: Node kind by id (``_NODE_INPUT``/``_NODE_GATE``/``_NODE_OUTPUT``).
        self.node_kind: List[int] = [
            _NODE_GATE
            if name in self.is_gate
            else (_NODE_OUTPUT if name in self.is_output else _NODE_INPUT)
            for name in self.node_names
        ]
        self.input_port_ids: List[int] = [node_index[p] for p in self.input_ports]
        self.output_port_ids: List[int] = [node_index[p] for p in self.output_ports]
        self.gate_ids: List[int] = [node_index[g] for g in self.gate_names]
        #: Per-edge integer endpoints and target-kind flags.
        self.edge_source_id: List[int] = [
            node_index[e.source] for e in self.edge_list
        ]
        self.edge_target_id: List[int] = [
            node_index[e.target] for e in self.edge_list
        ]
        self.edge_target_kind: List[int] = [
            self.node_kind[tid] for tid in self.edge_target_id
        ]
        #: Per-node gate tables (``None`` for non-gates): direct
        #: gate-function reference and driving edge ids in pin order.
        self.gate_func_by_node: List[Optional[object]] = [None] * n_nodes
        self.gate_input_edge_ids: List[Optional[Tuple[int, ...]]] = [None] * n_nodes
        self.gate_initial_by_node: List[int] = [0] * n_nodes
        edge_index = self.edge_index
        for gname in self.gate_names:
            gid = node_index[gname]
            # Enumerating the truth table runs GateType.evaluate over every
            # input combination once, so bad gate functions (non-Boolean
            # results, wrong arity) still fail fast here -- at topology
            # build, with the gate named -- while the event loop dispatches
            # through the validated table's C-level __getitem__.
            self.gate_func_by_node[gid] = self.gate_types[gname].truth_table().__getitem__
            self.gate_input_edge_ids[gid] = tuple(
                edge_index[ename] for ename in self.gate_inputs[gname]
            )
            self.gate_initial_by_node[gid] = self.gate_initial[gname]
        #: Edge ids driven by each node id.
        self.out_edge_ids: List[Tuple[int, ...]] = [
            tuple(edge_index[e.name] for e in self.edges_from[name])
            for name in self.node_names
        ]
        #: Zero-delay base flags by edge id.
        self.base_zero_delay_by_id: List[bool] = [
            self.base_zero_delay[name] for name in self.edge_names
        ]


@dataclass
class Execution:
    """The result of simulating a circuit.

    Attributes
    ----------
    circuit:
        The simulated circuit.
    node_signals:
        Signal produced at every node output (gate outputs, input ports).
    edge_signals:
        Signal at every channel output, keyed by edge name.
    output_signals:
        Convenience view: signal arriving at each output port.
    end_time:
        The simulation horizon that was used.
    event_count:
        Number of processed events (a simulator-performance metric;
        transport-cancelled deliveries are discarded in the scheduler and
        not counted).
    dropped_transitions:
        Number of transitions discarded by the ``on_causality="drop"`` policy.
    """

    circuit: object
    node_signals: Dict[str, Signal]
    edge_signals: Dict[str, Signal]
    output_signals: Dict[str, Signal]
    end_time: float
    event_count: int
    dropped_transitions: int = 0

    def output(self, name: Optional[str] = None) -> Signal:
        """Signal at the given output port (or the unique one if unnamed)."""
        if name is None:
            if len(self.output_signals) != 1:
                raise SimulationError(
                    "circuit has several output ports; specify which one"
                )
            return next(iter(self.output_signals.values()))
        return self.output_signals[name]

    def node(self, name: str) -> Signal:
        """Signal at the given node output."""
        return self.node_signals[name]

    def edge(self, name: str) -> Signal:
        """Signal at the given channel output."""
        return self.edge_signals[name]


class Engine:
    """Discrete-event execution engine over a precomputed topology.

    Parameters
    ----------
    topology:
        A :class:`CircuitTopology` (or a circuit, which is then validated
        and precomputed on the spot).
    on_causality:
        Policy when a channel wants to emit an output transition earlier
        than an already-delivered one: ``"error"`` raises
        :class:`~repro.engine.errors.CausalityError`, ``"drop"`` discards
        the transition.
    max_events:
        Safety bound on the number of processed events (oscillating storage
        loops can generate events forever).
    """

    #: Delta-cycle bound for zero-delay combinational loops.
    MAX_DELTA_CYCLES = 10_000

    def __init__(
        self,
        topology,
        *,
        on_causality: str = "error",
        max_events: int = 1_000_000,
    ) -> None:
        if on_causality not in ("error", "drop"):
            raise ValueError("on_causality must be 'error' or 'drop'")
        if not isinstance(topology, CircuitTopology):
            topology = CircuitTopology(topology)
        self.topology = topology
        self.on_causality = on_causality
        self.max_events = int(max_events)

    # ------------------------------------------------------------------ #

    def run(
        self,
        inputs: Dict[str, Signal],
        end_time: float,
        *,
        channels: Optional[Dict[str, object]] = None,
    ) -> Execution:
        """Execute the circuit for the given input-port signals.

        ``inputs`` maps every input-port name to its signal; transitions
        after ``end_time`` are ignored and channel outputs scheduled after
        ``end_time`` are not delivered (the returned signals are exact up
        to ``end_time``).  ``channels`` optionally overrides the channel
        used on selected edges (keyed by edge name) for this run only --
        the hook the sweep runner uses for parameterised channel families
        and per-run eta adversaries.
        """
        topo = self.topology
        circuit = topo.circuit
        input_ports = topo.input_port_set
        missing = input_ports - set(inputs)
        if missing:
            raise SimulationError(f"missing input signals for ports {sorted(missing)}")
        unknown = set(inputs) - input_ports
        if unknown:
            raise SimulationError(f"signals given for unknown ports {sorted(unknown)}")
        if channels:
            unknown_edges = set(channels) - set(topo.edges)
            if unknown_edges:
                raise SimulationError(
                    f"channel overrides for unknown edges {sorted(unknown_edges)}"
                )

        scheduler = Scheduler()

        # --- per-run tables, indexed by dense node/edge id -----------------
        n_nodes = len(topo.node_names)
        node_values: List[int] = [0] * n_nodes
        node_transitions: List[List[Transition]] = [[] for _ in range(n_nodes)]
        input_signal_by_id: List[Optional[Signal]] = [None] * n_nodes
        for pid, pname in zip(topo.input_port_ids, topo.input_ports):
            signal = inputs[pname]
            node_values[pid] = signal.initial_value
            input_signal_by_id[pid] = signal
        for gid in topo.gate_ids:
            node_values[gid] = topo.gate_initial_by_node[gid]

        kernels: List[ChannelKernel] = []
        zero_delay: List[bool] = list(topo.base_zero_delay_by_id)
        run_channels: List[object] = []
        for eid, edge in enumerate(topo.edge_list):
            ename = topo.edge_names[eid]
            if channels and ename in channels:
                channel = channels[ename]
                zero_delay[eid] = isinstance(channel, topo.zero_delay_class)
            else:
                channel = edge.channel
            run_channels.append(channel)
            kernels.append(
                ChannelKernel(
                    channel,
                    input_initial_value=node_values[topo.edge_source_id[eid]],
                    name=ename,
                    id_source=scheduler.next_id,
                    on_causality=self.on_causality,
                    queue_horizon=end_time,
                    tombstones=scheduler.tombstones,
                )
            )
        for oid, oname in zip(topo.output_port_ids, topo.output_ports):
            driver_eid = topo.edge_index[topo.output_driver[oname].name]
            node_values[oid] = kernels[driver_eid].delivered_value

        #: Per-gate direct kernel references in pin order (gate evaluation
        #: reads delivered values off these without any name lookups).
        gate_input_kernels: List[Optional[Tuple[ChannelKernel, ...]]] = [None] * n_nodes
        for gid in topo.gate_ids:
            gate_input_kernels[gid] = tuple(
                kernels[eid] for eid in topo.gate_input_edge_ids[gid]
            )
        gate_funcs = topo.gate_func_by_node
        out_edge_ids = topo.out_edge_ids
        edge_target_id = topo.edge_target_id
        edge_target_kind = topo.edge_target_kind

        # --- primary events -------------------------------------------------
        for pid in topo.input_port_ids:
            for tr in input_signal_by_id[pid]:
                if tr.time <= end_time:
                    scheduler.push(tr.time, PORT, (pid, tr.value))

        event_count = 0

        # --- helpers ---------------------------------------------------------

        def record_node_transition(nid: int, time: float, value: int) -> None:
            """Record a node-output transition, collapsing zero-width glitches.

            Two transitions of a node at exactly the same time form a
            zero-width glitch (the value reverts within the same instant);
            both are removed, keeping the recorded signal well formed.
            """
            transitions = node_transitions[nid]
            if transitions and transitions[-1].time == time:
                transitions.pop()
            else:
                transitions.append(Transition(time, value))

        def evaluate_gate(gid: int, time: float) -> bool:
            """Re-evaluate a gate; record and return True if its output changed."""
            new_value = gate_funcs[gid](
                tuple([k.delivered_value for k in gate_input_kernels[gid]])
            )
            if new_value == node_values[gid]:
                return False
            node_values[gid] = new_value
            record_node_transition(gid, time, new_value)
            return True

        # --- settle gates at time 0 ------------------------------------------
        # Gate initial values may be inconsistent with their input initial
        # values; the execution then has the gate switching at time 0.
        if topo.gate_ids:
            scheduler.push(0.0, SETTLE, tuple(topo.gate_ids))

        # --- main loop ---------------------------------------------------------
        max_events = self.max_events
        pop_batch = scheduler.pop_batch
        # Hoisted per-batch containers (cleared instead of reallocated; the
        # loop runs once per distinct event time).
        gates_to_evaluate: List[int] = []
        gates_seen: Set[int] = set()
        while True:
            popped = pop_batch()
            if popped is None:
                break
            time, batch = popped
            if time > end_time:
                break
            event_count += len(batch)
            if event_count > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "the circuit may be oscillating (raise the limit or shorten end_time)"
                )

            changed_nodes: List[int] = []
            if gates_to_evaluate:
                gates_to_evaluate.clear()
                gates_seen.clear()
            for batch_kind, batch_payload in batch:
                if batch_kind == DELIVER:
                    eid, value, event_id = batch_payload
                    if kernels[eid].deliver(event_id, value, time):
                        kind = edge_target_kind[eid]
                        tid = edge_target_id[eid]
                        if kind == _NODE_GATE:
                            if tid not in gates_seen:
                                gates_seen.add(tid)
                                gates_to_evaluate.append(tid)
                        elif kind == _NODE_OUTPUT:
                            node_values[tid] = value
                            record_node_transition(tid, time, value)
                elif batch_kind == PORT:
                    pid, value = batch_payload
                    if node_values[pid] != value:
                        node_values[pid] = value
                        record_node_transition(pid, time, value)
                        changed_nodes.append(pid)
                elif batch_kind == SETTLE:
                    for gid in batch_payload:
                        if gid not in gates_seen:
                            gates_seen.add(gid)
                            gates_to_evaluate.append(gid)
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {batch_kind!r}")
            for gid in gates_to_evaluate:
                if evaluate_gate(gid, time):
                    changed_nodes.append(gid)

            # Zero-time propagation of changed node outputs into their channels.
            # Zero-delay channels deliver immediately (delta cycles); bounded
            # to avoid infinite combinational loops.
            delta_cycles = 0
            while changed_nodes:
                delta_cycles += 1
                if delta_cycles > self.MAX_DELTA_CYCLES:
                    raise SimulationError(
                        "combinational (zero-delay) loop detected at "
                        f"time {time:g}"
                    )
                affected_gates: List[int] = []
                affected_seen: Set[int] = set()
                for nid in changed_nodes:
                    value = node_values[nid]
                    for eid in out_edge_ids[nid]:
                        kernel = kernels[eid]
                        if zero_delay[eid]:
                            if not kernel.deliver_immediate(time, value):
                                continue
                            out_value = kernel.delivered_value
                            kind = edge_target_kind[eid]
                            tid = edge_target_id[eid]
                            if kind == _NODE_GATE:
                                if tid not in affected_seen:
                                    affected_seen.add(tid)
                                    affected_gates.append(tid)
                            elif kind == _NODE_OUTPUT:
                                node_values[tid] = out_value
                                record_node_transition(tid, time, out_value)
                        else:
                            event = kernel.feed(time, value)
                            if event is not None and event.time <= end_time:
                                scheduler.push(
                                    event.time,
                                    DELIVER,
                                    (eid, event.value, event.event_id),
                                )
                next_changed: List[int] = []
                for gid in affected_gates:
                    if evaluate_gate(gid, time):
                        next_changed.append(gid)
                changed_nodes = next_changed

        # --- assemble the execution ------------------------------------------
        # The engine only records well-formed transition lists (alternating
        # values, strictly increasing times, same-instant glitches
        # collapsed), so assembly uses the validation-free Signal fast path.
        node_signals: Dict[str, Signal] = {}
        for pid, pname in zip(topo.input_port_ids, topo.input_ports):
            node_signals[pname] = Signal._trusted(
                input_signal_by_id[pid].initial_value, node_transitions[pid]
            )
        for gid, gname in zip(topo.gate_ids, topo.gate_names):
            node_signals[gname] = Signal._trusted(
                topo.gate_initial_by_node[gid], node_transitions[gid]
            )
        for oid, oname in zip(topo.output_port_ids, topo.output_ports):
            driver = topo.output_driver[oname]
            src_id = topo.node_index[driver.source]
            if topo.node_kind[src_id] == _NODE_GATE:
                src_initial = topo.gate_initial_by_node[src_id]
            else:
                src_initial = input_signal_by_id[src_id].initial_value
            channel = run_channels[topo.edge_index[driver.name]]
            node_signals[oname] = Signal._trusted(
                channel.output_initial_value(src_initial), node_transitions[oid]
            )
        edge_signals = {}
        dropped = 0
        for eid, ename in enumerate(topo.edge_names):
            kernel = kernels[eid]
            edge_signals[ename] = Signal._trusted(
                run_channels[eid].output_initial_value(
                    node_signals[topo.edge_list[eid].source].initial_value
                ),
                kernel.delivered,
            )
            dropped += kernel.dropped
            # Purge end-of-run bookkeeping: pending transitions past the
            # horizon and cancellation tombstones can never be delivered.
            kernel.finalize()
        output_signals = {oname: node_signals[oname] for oname in topo.output_ports}
        return Execution(
            circuit=circuit,
            node_signals=node_signals,
            edge_signals=edge_signals,
            output_signals=output_signals,
            end_time=end_time,
            event_count=event_count,
            dropped_transitions=dropped,
        )
