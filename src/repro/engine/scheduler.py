"""Event scheduler and execution engine for circuits of single-history channels.

This module hosts the machinery that used to live inside the 475-line
``Simulator.run``: the heapq event queue with same-time batching
(:class:`Scheduler`), the validated/precomputed structural view of a
circuit (:class:`CircuitTopology`), and the main event loop
(:class:`Engine`).  :class:`repro.circuits.simulator.Simulator` is now a
thin compatibility wrapper around these classes, and the batched sweep
runner (:mod:`repro.engine.sweep`) reuses one :class:`CircuitTopology`
across many runs.

The event protocol is deliberately small -- three event kinds:

* ``PORT``    -- an input-port transition ``(port_name, value)``,
* ``DELIVER`` -- a channel-output delivery ``(edge_name, value, event_id)``,
* ``SETTLE``  -- the time-0 gate settling pass ``(gate_name, ...)``.

All per-channel semantics (tentative delays, transport cancellation,
inertial rejection, no-change suppression) live in the shared
:class:`~repro.engine.kernel.ChannelKernel`; the engine only routes
delivered transitions to gates and ports and performs the zero-time
(delta-cycle) propagation of changed node outputs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.transitions import Signal, Transition
from .errors import SimulationError
from .kernel import ChannelKernel

__all__ = [
    "PORT",
    "DELIVER",
    "SETTLE",
    "Scheduler",
    "CircuitTopology",
    "Execution",
    "Engine",
]

#: Event kinds of the engine's event protocol.
PORT = "port"
DELIVER = "deliver"
SETTLE = "settle"


class Scheduler:
    """A time-ordered event queue with same-time batching.

    Events pushed at the exact same time are popped together in one batch
    so that gates see all their simultaneous input changes at once (delta
    cycle semantics) instead of producing zero-time glitches.  The internal
    monotonic counter breaks ties deterministically and doubles as the
    event-id source shared with the channel kernels.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, object]] = []
        self._counter = itertools.count()

    def next_id(self) -> int:
        """A fresh monotonically increasing id (shared with the kernels)."""
        return next(self._counter)

    def push(self, time: float, kind: str, payload: object) -> None:
        """Schedule one event."""
        heapq.heappush(self._heap, (time, next(self._counter), kind, payload))

    def pop_batch(self) -> Tuple[float, List[Tuple[str, object]]]:
        """Pop every event scheduled for the earliest pending time."""
        time, _, kind, payload = heapq.heappop(self._heap)
        batch = [(kind, payload)]
        heap = self._heap
        while heap and heap[0][0] == time:
            _, _, more_kind, more_payload = heapq.heappop(heap)
            batch.append((more_kind, more_payload))
        return time, batch

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


class CircuitTopology:
    """Validated, precomputed structural view of a circuit.

    Building one is O(nodes x edges) (validation plus adjacency); the
    engine's event loop then runs entirely on dict lookups.  A topology is
    immutable with respect to the circuit structure and can be shared
    across many runs (and across threads) -- this amortisation is what the
    batched sweep runner is built on.
    """

    def __init__(self, circuit) -> None:
        from ..circuits.circuit import GateInstance, InputPort, OutputPort
        from ..core.channel import ZeroDelayChannel

        circuit.validate()
        self.circuit = circuit
        self.edges = dict(circuit.edges)
        self.input_ports: List[str] = []
        self.output_ports: List[str] = []
        self.gate_names: List[str] = []
        self.gate_types: Dict[str, object] = {}
        self.gate_initial: Dict[str, int] = {}
        nodes = circuit.nodes
        for name, node in nodes.items():
            if isinstance(node, InputPort):
                self.input_ports.append(name)
            elif isinstance(node, OutputPort):
                self.output_ports.append(name)
            elif isinstance(node, GateInstance):
                self.gate_names.append(name)
                self.gate_types[name] = node.gate_type
                self.gate_initial[name] = node.initial_value
        self.is_gate = set(self.gate_names)
        self.is_output = set(self.output_ports)
        #: Edges driven by each node (empty list when none).
        self.edges_from: Dict[str, List[object]] = {name: [] for name in nodes}
        #: Edges driving each node, sorted by pin.
        self.edges_into: Dict[str, List[object]] = {name: [] for name in nodes}
        for edge in self.edges.values():
            self.edges_from[edge.source].append(edge)
            self.edges_into[edge.target].append(edge)
        for into in self.edges_into.values():
            into.sort(key=lambda e: e.pin)
        #: Gate input views: gate name -> driving edge names in pin order.
        self.gate_inputs: Dict[str, List[str]] = {
            gname: [e.name for e in self.edges_into[gname]]
            for gname in self.gate_names
        }
        #: The unique driving edge of every output port.
        self.output_driver: Dict[str, object] = {
            oname: self.edges_into[oname][0] for oname in self.output_ports
        }
        self.input_port_set = frozenset(self.input_ports)
        #: Zero-delay flags of the *base* channels (recomputed per run only
        #: for overridden edges).
        self.zero_delay_class = ZeroDelayChannel
        self.base_zero_delay: Dict[str, bool] = {
            ename: isinstance(edge.channel, ZeroDelayChannel)
            for ename, edge in self.edges.items()
        }


@dataclass
class Execution:
    """The result of simulating a circuit.

    Attributes
    ----------
    circuit:
        The simulated circuit.
    node_signals:
        Signal produced at every node output (gate outputs, input ports).
    edge_signals:
        Signal at every channel output, keyed by edge name.
    output_signals:
        Convenience view: signal arriving at each output port.
    end_time:
        The simulation horizon that was used.
    event_count:
        Number of processed events (a simulator-performance metric).
    dropped_transitions:
        Number of transitions discarded by the ``on_causality="drop"`` policy.
    """

    circuit: object
    node_signals: Dict[str, Signal]
    edge_signals: Dict[str, Signal]
    output_signals: Dict[str, Signal]
    end_time: float
    event_count: int
    dropped_transitions: int = 0

    def output(self, name: Optional[str] = None) -> Signal:
        """Signal at the given output port (or the unique one if unnamed)."""
        if name is None:
            if len(self.output_signals) != 1:
                raise SimulationError(
                    "circuit has several output ports; specify which one"
                )
            return next(iter(self.output_signals.values()))
        return self.output_signals[name]

    def node(self, name: str) -> Signal:
        """Signal at the given node output."""
        return self.node_signals[name]

    def edge(self, name: str) -> Signal:
        """Signal at the given channel output."""
        return self.edge_signals[name]


class Engine:
    """Discrete-event execution engine over a precomputed topology.

    Parameters
    ----------
    topology:
        A :class:`CircuitTopology` (or a circuit, which is then validated
        and precomputed on the spot).
    on_causality:
        Policy when a channel wants to emit an output transition earlier
        than an already-delivered one: ``"error"`` raises
        :class:`~repro.engine.errors.CausalityError`, ``"drop"`` discards
        the transition.
    max_events:
        Safety bound on the number of processed events (oscillating storage
        loops can generate events forever).
    """

    #: Delta-cycle bound for zero-delay combinational loops.
    MAX_DELTA_CYCLES = 10_000

    def __init__(
        self,
        topology,
        *,
        on_causality: str = "error",
        max_events: int = 1_000_000,
    ) -> None:
        if on_causality not in ("error", "drop"):
            raise ValueError("on_causality must be 'error' or 'drop'")
        if not isinstance(topology, CircuitTopology):
            topology = CircuitTopology(topology)
        self.topology = topology
        self.on_causality = on_causality
        self.max_events = int(max_events)

    # ------------------------------------------------------------------ #

    def run(
        self,
        inputs: Dict[str, Signal],
        end_time: float,
        *,
        channels: Optional[Dict[str, object]] = None,
    ) -> Execution:
        """Execute the circuit for the given input-port signals.

        ``inputs`` maps every input-port name to its signal; transitions
        after ``end_time`` are ignored and channel outputs scheduled after
        ``end_time`` are not delivered (the returned signals are exact up
        to ``end_time``).  ``channels`` optionally overrides the channel
        used on selected edges (keyed by edge name) for this run only --
        the hook the sweep runner uses for parameterised channel families
        and per-run eta adversaries.
        """
        topo = self.topology
        circuit = topo.circuit
        input_ports = topo.input_port_set
        missing = input_ports - set(inputs)
        if missing:
            raise SimulationError(f"missing input signals for ports {sorted(missing)}")
        unknown = set(inputs) - input_ports
        if unknown:
            raise SimulationError(f"signals given for unknown ports {sorted(unknown)}")
        if channels:
            unknown_edges = set(channels) - set(topo.edges)
            if unknown_edges:
                raise SimulationError(
                    f"channel overrides for unknown edges {sorted(unknown_edges)}"
                )

        scheduler = Scheduler()

        # --- initial values ------------------------------------------------
        node_values: Dict[str, int] = {}
        node_transitions: Dict[str, List[Transition]] = {}
        for pname in topo.input_ports:
            node_values[pname] = inputs[pname].initial_value
            node_transitions[pname] = []
        for gname in topo.gate_names:
            node_values[gname] = topo.gate_initial[gname]
            node_transitions[gname] = []
        for oname in topo.output_ports:
            node_values[oname] = 0  # defined by the driving channel below
            node_transitions[oname] = []

        kernels: Dict[str, ChannelKernel] = {}
        zero_delay: Dict[str, bool] = dict(topo.base_zero_delay)
        run_channels: Dict[str, object] = {}
        for ename, edge in topo.edges.items():
            if channels and ename in channels:
                channel = channels[ename]
                zero_delay[ename] = isinstance(channel, topo.zero_delay_class)
            else:
                channel = edge.channel
            run_channels[ename] = channel
            kernels[ename] = ChannelKernel(
                channel,
                input_initial_value=node_values[edge.source],
                name=ename,
                id_source=scheduler.next_id,
                on_causality=self.on_causality,
                queue_horizon=end_time,
            )
        for oname in topo.output_ports:
            node_values[oname] = kernels[topo.output_driver[oname].name].delivered_value

        # --- primary events -------------------------------------------------
        for pname in topo.input_ports:
            for tr in inputs[pname]:
                if tr.time <= end_time:
                    scheduler.push(tr.time, PORT, (pname, tr.value))

        event_count = 0

        # --- helpers ---------------------------------------------------------

        def record_node_transition(nname: str, time: float, value: int) -> None:
            """Record a node-output transition, collapsing zero-width glitches.

            Two transitions of a node at exactly the same time form a
            zero-width glitch (the value reverts within the same instant);
            both are removed, keeping the recorded signal well formed.
            """
            transitions = node_transitions[nname]
            if transitions and transitions[-1].time == time:
                transitions.pop()
            else:
                transitions.append(Transition(time, value))

        def evaluate_gate(gname: str, time: float) -> bool:
            """Re-evaluate a gate; record and return True if its output changed."""
            values = [kernels[e].delivered_value for e in topo.gate_inputs[gname]]
            new_value = topo.gate_types[gname].evaluate(values)
            if new_value == node_values[gname]:
                return False
            node_values[gname] = new_value
            record_node_transition(gname, time, new_value)
            return True

        # --- settle gates at time 0 ------------------------------------------
        # Gate initial values may be inconsistent with their input initial
        # values; the execution then has the gate switching at time 0.
        if topo.gate_names:
            scheduler.push(0.0, SETTLE, tuple(topo.gate_names))

        # --- main loop ---------------------------------------------------------
        while scheduler:
            time, batch = scheduler.pop_batch()
            if time > end_time:
                break
            event_count += len(batch)
            if event_count > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "the circuit may be oscillating (raise the limit or shorten end_time)"
                )

            changed_nodes: List[str] = []
            gates_to_evaluate: List[str] = []
            for batch_kind, batch_payload in batch:
                if batch_kind == PORT:
                    pname, value = batch_payload
                    if node_values[pname] != value:
                        node_values[pname] = value
                        record_node_transition(pname, time, value)
                        changed_nodes.append(pname)
                elif batch_kind == DELIVER:
                    ename, value, event_id = batch_payload
                    if kernels[ename].deliver(event_id, value, time):
                        target = topo.edges[ename].target
                        if target in topo.is_gate:
                            if target not in gates_to_evaluate:
                                gates_to_evaluate.append(target)
                        elif target in topo.is_output:
                            node_values[target] = value
                            record_node_transition(target, time, value)
                elif batch_kind == SETTLE:
                    for gname in batch_payload:
                        if gname not in gates_to_evaluate:
                            gates_to_evaluate.append(gname)
                else:  # pragma: no cover - defensive
                    raise SimulationError(f"unknown event kind {batch_kind!r}")
            for gname in gates_to_evaluate:
                if evaluate_gate(gname, time):
                    changed_nodes.append(gname)

            # Zero-time propagation of changed node outputs into their channels.
            # Zero-delay channels deliver immediately (delta cycles); bounded
            # to avoid infinite combinational loops.
            delta_cycles = 0
            while changed_nodes:
                delta_cycles += 1
                if delta_cycles > self.MAX_DELTA_CYCLES:
                    raise SimulationError(
                        "combinational (zero-delay) loop detected at "
                        f"time {time:g}"
                    )
                affected_gates: List[str] = []
                for nname in changed_nodes:
                    value = node_values[nname]
                    for edge in topo.edges_from[nname]:
                        ename = edge.name
                        kernel = kernels[ename]
                        if zero_delay[ename]:
                            if not kernel.deliver_immediate(time, value):
                                continue
                            out_value = kernel.delivered_value
                            if edge.target in topo.is_gate:
                                if edge.target not in affected_gates:
                                    affected_gates.append(edge.target)
                            elif edge.target in topo.is_output:
                                node_values[edge.target] = out_value
                                record_node_transition(edge.target, time, out_value)
                        else:
                            event = kernel.feed(time, value)
                            if event is not None and event.time <= end_time:
                                scheduler.push(
                                    event.time,
                                    DELIVER,
                                    (ename, event.value, event.event_id),
                                )
                next_changed: List[str] = []
                for gname in affected_gates:
                    if evaluate_gate(gname, time):
                        next_changed.append(gname)
                changed_nodes = next_changed

        # --- assemble the execution ------------------------------------------
        # The engine only records well-formed transition lists (alternating
        # values, strictly increasing times, same-instant glitches
        # collapsed), so assembly uses the validation-free Signal fast path.
        node_signals: Dict[str, Signal] = {}
        for pname in topo.input_ports:
            node_signals[pname] = Signal._trusted(
                inputs[pname].initial_value, node_transitions[pname]
            )
        for gname in topo.gate_names:
            node_signals[gname] = Signal._trusted(
                topo.gate_initial[gname], node_transitions[gname]
            )
        for oname in topo.output_ports:
            driver = topo.output_driver[oname]
            if driver.source in topo.is_gate:
                src_initial = topo.gate_initial[driver.source]
            else:
                src_initial = inputs[driver.source].initial_value
            channel = run_channels[driver.name]
            node_signals[oname] = Signal._trusted(
                channel.output_initial_value(src_initial), node_transitions[oname]
            )
        edge_signals = {}
        dropped = 0
        for ename, kernel in kernels.items():
            edge = topo.edges[ename]
            edge_signals[ename] = Signal._trusted(
                run_channels[ename].output_initial_value(
                    node_signals[edge.source].initial_value
                ),
                kernel.delivered,
            )
            dropped += kernel.dropped
            # Purge end-of-run bookkeeping: pending transitions past the
            # horizon and cancellation tombstones can never be delivered.
            kernel.finalize()
        output_signals = {oname: node_signals[oname] for oname in topo.output_ports}
        return Execution(
            circuit=circuit,
            node_signals=node_signals,
            edge_signals=edge_signals,
            output_signals=output_signals,
            end_time=end_time,
            event_count=event_count,
            dropped_transitions=dropped,
        )
