"""Error types of the simulation engine.

Defined here (rather than in :mod:`repro.circuits.simulator`) so that the
channel kernel, the scheduler and the compatibility wrappers can all share
them without import cycles; :mod:`repro.circuits` re-exports both names,
so existing ``from repro.circuits import SimulationError`` imports keep
working.
"""

from __future__ import annotations

__all__ = ["SimulationError", "CausalityError"]


class SimulationError(RuntimeError):
    """Raised for runtime simulation problems (runaway loops, bad inputs)."""


class CausalityError(SimulationError):
    """Raised when a channel schedules an output before already-delivered ones.

    This cannot happen for the circuits analysed in the paper (the offending
    transition would have cancelled a still-pending predecessor); it can be
    triggered by exotic channels or very large eta bounds.  The engine's
    ``on_causality`` policy can be set to ``"drop"`` to silently discard such
    transitions instead (mimicking what an HDL simulator would do).
    """
