"""Static capability analysis of sweeps, shared by the vector backend and lint.

The vector backend (:mod:`repro.engine.vector`) can only express a subset
of sweeps: circuits (cyclic ones included -- storage loops run through an
iterate-to-fixpoint lockstep schedule) whose channels and adversaries
come from the library classes with mirrored vector semantics, driven by
scenarios whose structure does not vary in engine-batch-order-specific
ways.  Deciding *whether* a sweep is in that subset -- and naming every
obstacle when it is not -- is a purely static question: it needs the
circuit topology, the channel objects and the scenario stimuli, but
never a simulation run.

This module is the single home of that decision.  Two consumers share it:

* :func:`repro.engine.vector.vector_capability` and the vector compiler
  itself (``compile_sweep``) call :func:`analyze_sweep` on live
  topologies and scenarios before building any per-edge programs, and
* the static diagnostics engine (:mod:`repro.lint`) calls the same
  function on circuits built from declarative specs to *predict*, before
  anything runs, exactly which scenarios of a sweep would fall back to
  the scalar path and why (rule ``REP401``).

Factoring the detection out of the compiler is what keeps the linter's
prediction and the runtime's fallback behaviour from drifting apart: the
property tests in ``tests/lint/test_property.py`` pin that the two agree
verdict-for-verdict across generated sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .errors import SimulationError
from .scheduler import _NODE_GATE, CircuitTopology

__all__ = [
    "NO_SCENARIOS_REASON",
    "VectorCapability",
    "EdgeFact",
    "SweepAnalysis",
    "adversary_obstacle",
    "analyze_sweep",
    "strongly_connected_components",
    "supported_channel_classes",
    "topological_order",
]

_INF = math.inf

#: Reason recorded when a sweep has no scenarios at all.
NO_SCENARIOS_REASON = "no scenarios to compile"


@dataclass(frozen=True)
class VectorCapability:
    """Why a sweep can (or cannot) run on the vector backend.

    ``supported`` is True iff the sweep compiles; ``reasons`` lists every
    obstacle found (empty when supported).  The report is attached to
    :class:`~repro.engine.sweep.SweepResult` as ``vector_report`` so a
    fallback is never silent -- and surfaced by ``repro lint`` as the
    ``REP401`` diagnostic, so the fallback is predictable before running.
    """

    supported: bool
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.supported

    def summary(self) -> str:
        """One-line human-readable form of the report."""
        if self.supported:
            return "vector backend: supported"
        return "vector backend unsupported: " + "; ".join(self.reasons)


def topological_order(
    n_nodes: int,
    out_edges: Sequence[Sequence[int]],
    edge_target: Sequence[int],
) -> Optional[List[int]]:
    """Kahn order over node ids, or ``None`` when the graph has a cycle.

    ``out_edges[nid]`` lists the outgoing edge ids of node ``nid`` and
    ``edge_target[eid]`` the target node id of edge ``eid`` -- the dense
    integer form :class:`~repro.engine.scheduler.CircuitTopology`
    precomputes, which spec-level callers (:mod:`repro.lint`) rebuild
    from netlist dicts.  The traversal order (LIFO ready stack, edges in
    declaration order) is part of the contract: the vector backend
    evaluates nodes in exactly this order.
    """
    indegree = [0] * n_nodes
    for tid in edge_target:
        indegree[tid] += 1
    ready = [nid for nid in range(n_nodes) if indegree[nid] == 0]
    order: List[int] = []
    while ready:
        nid = ready.pop()
        order.append(nid)
        for eid in out_edges[nid]:
            tid = edge_target[eid]
            indegree[tid] -= 1
            if indegree[tid] == 0:
                ready.append(tid)
    if len(order) != n_nodes:
        return None
    return order


def strongly_connected_components(
    n_nodes: int,
    out_edges: Sequence[Sequence[int]],
    edge_target: Sequence[int],
) -> List[List[int]]:
    """Tarjan SCCs over node ids, in condensation topological order.

    Same dense-integer graph form as :func:`topological_order`.  The
    result lists every node exactly once; components appear sources
    first (every edge leaving a component lands in a *later* one), and
    the traversal is fully deterministic (roots in increasing node id,
    edges in declaration order), so the vector backend's fixpoint
    schedule is reproducible.  Members within a component keep their
    DFS discovery order; callers that need a canonical member order
    sort by node id.
    """
    index_of = [-1] * n_nodes
    low = [0] * n_nodes
    on_stack = [False] * n_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0
    for root in range(n_nodes):
        if index_of[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            nid, ei = work[-1]
            if ei == 0:
                index_of[nid] = low[nid] = counter
                counter += 1
                stack.append(nid)
                on_stack[nid] = True
            descended = False
            edges = out_edges[nid]
            while ei < len(edges):
                tid = edge_target[edges[ei]]
                ei += 1
                if index_of[tid] == -1:
                    work[-1] = (nid, ei)
                    work.append((tid, 0))
                    descended = True
                    break
                if on_stack[tid]:
                    low[nid] = min(low[nid], index_of[tid])
            if descended:
                continue
            work.pop()
            if low[nid] == index_of[nid]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == nid:
                        break
                component.reverse()
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[nid])
    # Tarjan emits sinks first; reverse for condensation topo order.
    components.reverse()
    return components


def supported_channel_classes() -> frozenset:
    """The exact channel classes the vector backend can express.

    Exact-class membership, not ``isinstance``: a user subclass may
    override ``delay_for`` in ways the compiled per-edge programs cannot
    mirror, so subclasses are conservatively unsupported.
    """
    from ..core.baselines import (
        DegradationDelayChannel,
        InertialDelayChannel,
        PureDelayChannel,
    )
    from ..core.channel import ZeroDelayChannel
    from ..core.eta_channel import EtaInvolutionChannel
    from ..core.involution_channel import InvolutionChannel

    return frozenset(
        {
            ZeroDelayChannel,
            PureDelayChannel,
            InertialDelayChannel,
            DegradationDelayChannel,
            InvolutionChannel,
            EtaInvolutionChannel,
        }
    )


def adversary_obstacle(adversary: object) -> Optional[str]:
    """Why an eta-channel adversary blocks vectorization, or ``None``.

    The supported strategies are exactly the ones
    ``repro.engine.vector._eta_builder`` can materialise as per-scenario
    shift rows; keep the two in sync.  An *unseeded*
    :class:`~repro.core.adversary.RandomAdversary` is no longer an
    obstacle: the vector compiler materialises it by pre-drawing a fresh
    seed per (scenario, edge) at compile time, matching the scalar
    engine's fresh-entropy-per-run semantics (``repro lint`` still flags
    it as ``REP301`` because the *run* remains unreplayable either way).
    """
    from ..core.adversary import (
        BestCaseAdversary,
        DeCancelAdversary,
        RandomAdversary,
        SequenceAdversary,
        SineAdversary,
        WorstCaseAdversary,
        ZeroAdversary,
    )

    kind = type(adversary)
    if kind in (
        RandomAdversary,
        ZeroAdversary,
        WorstCaseAdversary,
        BestCaseAdversary,
        DeCancelAdversary,
        SineAdversary,
        SequenceAdversary,
    ):
        return None
    return f"unsupported adversary {kind.__name__}"


@dataclass(frozen=True)
class EdgeFact:
    """Statically derived facts about one edge of an analyzed sweep.

    Only edges whose per-scenario channels passed every check get a fact;
    edges with obstacles are absent from
    :attr:`SweepAnalysis.edge_facts`, which downstream passes (settle
    consistency, zero-delay hazards) treat as "unknown, skip".
    """

    eid: int
    source_id: int
    zero_delay: bool
    inverting: bool
    target_is_gate: bool
    target_multi_input: bool


@dataclass
class SweepAnalysis:
    """The full obstacle scan of one sweep, plus derived structure.

    ``reasons`` is empty iff the sweep is vector-supported; the remaining
    fields carry what the vector compiler needs to build its per-edge
    programs without re-deriving anything (topological ``order`` for
    acyclic circuits, SCC ``components`` in condensation order for
    cyclic ones, scenario-uniform ``port_initials``, per-edge facts, the
    set of gates that flip in the time-0 settle pass, and the earliest
    stimulus time).
    """

    reasons: List[str] = field(default_factory=list)
    order: Optional[List[int]] = None
    components: Optional[List[List[int]]] = None
    port_initials: Dict[str, int] = field(default_factory=dict)
    edge_facts: Dict[int, EdgeFact] = field(default_factory=dict)
    settle_inconsistent: Set[int] = field(default_factory=set)
    min_input_time: float = _INF

    @property
    def supported(self) -> bool:
        """True iff no obstacle was found."""
        return not self.reasons

    def capability(self) -> VectorCapability:
        """This analysis as a :class:`VectorCapability` report."""
        return VectorCapability(not self.reasons, tuple(self.reasons))


def _edge_fact(
    eid: int,
    ename: str,
    topo: CircuitTopology,
    run_channels: List[object],
    reasons: List[str],
) -> Optional[EdgeFact]:
    """Check one edge's per-scenario channels; record why it cannot compile."""
    from ..core.baselines import InertialDelayChannel, PureDelayChannel
    from ..core.channel import ZeroDelayChannel
    from ..core.eta_channel import EtaInvolutionChannel

    before = len(reasons)
    kinds = {type(ch) for ch in run_channels}
    supported = supported_channel_classes()
    for kind in sorted(kinds - supported, key=lambda k: k.__name__):
        reasons.append(f"edge {ename!r}: unsupported channel type {kind.__name__}")
    if len(reasons) > before:
        return None

    for channel in run_channels:
        # Constant channels with a zero polarity delay schedule every
        # delivery at its own input instant; the engine then opens a
        # second batch at the same timestamp (double gate evaluation,
        # glitch feeds) that a levelized evaluation cannot replay.
        if type(channel) is PureDelayChannel and (
            channel.rising_delay == 0.0 or channel.falling_delay == 0.0
        ):
            reasons.append(
                f"edge {ename!r}: PureDelayChannel with a zero polarity "
                "delay schedules same-instant deliveries"
            )
            return None
        if type(channel) is InertialDelayChannel and channel.delay == 0.0:
            reasons.append(
                f"edge {ename!r}: InertialDelayChannel with zero delay "
                "schedules same-instant deliveries"
            )
            return None

    zero_flags = {type(ch) is ZeroDelayChannel for ch in run_channels}
    if len(zero_flags) > 1:
        reasons.append(
            f"edge {ename!r}: mixes zero-delay and timed channels across scenarios"
        )
        return None
    inverting_flags = {bool(ch.inverting) for ch in run_channels}
    if len(inverting_flags) > 1:
        reasons.append(
            f"edge {ename!r}: channel inverting flag differs across scenarios"
        )
        return None
    zero_delay = zero_flags.pop()
    if not zero_delay:
        for channel in run_channels:
            if type(channel) is EtaInvolutionChannel:
                obstacle = adversary_obstacle(channel.adversary)
                if obstacle is not None:
                    reasons.append(f"edge {ename!r}: {obstacle}")
                    return None

    target_id = topo.edge_target_id[eid]
    target_is_gate = topo.node_kind[target_id] == _NODE_GATE
    return EdgeFact(
        eid=eid,
        source_id=topo.edge_source_id[eid],
        zero_delay=zero_delay,
        inverting=inverting_flags.pop(),
        target_is_gate=target_is_gate,
        target_multi_input=(
            target_is_gate and len(topo.gate_input_edge_ids[target_id]) > 1
        ),
    )


def analyze_sweep(
    topo: CircuitTopology, scenarios: Sequence[object]
) -> SweepAnalysis:
    """Scan a sweep for every vector-backend obstacle, without running it.

    Returns a :class:`SweepAnalysis` whose ``reasons`` list is empty iff
    ``repro.engine.vector.compile_sweep`` will succeed.  Sweeps that are
    invalid for *every* backend (missing or unknown input ports,
    overrides for unknown edges -- the checks ``Engine.run`` would fail
    too) raise :class:`~repro.engine.errors.SimulationError` instead of
    recording a reason; :func:`repro.engine.vector.vector_capability`
    wraps that into an ``invalid sweep:`` report.
    """
    from ..core.adversary import RandomAdversary
    from ..core.eta_channel import EtaInvolutionChannel

    analysis = SweepAnalysis()
    reasons = analysis.reasons
    scenarios = list(scenarios)
    if not scenarios:
        reasons.append(NO_SCENARIOS_REASON)
        return analysis

    # --- scenario validation (mirrors Engine.run's checks) ---------------- #
    input_ports = topo.input_port_set
    for scenario in scenarios:
        missing = input_ports - set(scenario.inputs)
        if missing:
            raise SimulationError(
                f"missing input signals for ports {sorted(missing)}"
            )
        unknown = set(scenario.inputs) - input_ports
        if unknown:
            raise SimulationError(
                f"signals given for unknown ports {sorted(unknown)}"
            )
        if scenario.channels:
            unknown_edges = set(scenario.channels) - set(topo.edges)
            if unknown_edges:
                raise SimulationError(
                    f"channel overrides for unknown edges {sorted(unknown_edges)}"
                )

    # --- scenario-uniform initial values ----------------------------------- #
    port_initials = analysis.port_initials
    for pname in topo.input_ports:
        initials = {sc.inputs[pname].initial_value for sc in scenarios}
        if len(initials) > 1:
            reasons.append(
                f"input port {pname!r}: initial value differs across scenarios"
            )
        else:
            port_initials[pname] = initials.pop()

    # --- structure ---------------------------------------------------------- #
    # Acyclic circuits keep the exact Kahn order (part of the vector
    # backend's evaluation contract); cyclic ones additionally get the
    # SCC decomposition the fixpoint scheduler iterates over.
    analysis.order = topological_order(
        len(topo.node_names), topo.out_edge_ids, topo.edge_target_id
    )
    if analysis.order is None:
        analysis.components = strongly_connected_components(
            len(topo.node_names), topo.out_edge_ids, topo.edge_target_id
        )

    # --- per-edge channel facts --------------------------------------------- #
    # One *seeded* RandomAdversary instance shared by several edges of
    # the same run interleaves a single RNG stream across those edges in
    # event order in the scalar engine -- a coupling the per-edge eta
    # matrices cannot replay.  Detect sharing per scenario and refuse.
    # Unseeded shared instances are fine: the compiler splits them into
    # independent freshly seeded streams, which is distributionally
    # identical to interleaving iid draws.
    edge_facts = analysis.edge_facts
    seen_random: Dict[Tuple[int, int], str] = {}
    shared_reported: Set[Tuple[int, int]] = set()
    for eid, ename in enumerate(topo.edge_names):
        edge = topo.edge_list[eid]
        run_channels = [
            (scenario.channels or {}).get(ename, edge.channel)
            for scenario in scenarios
        ]
        for s, channel in enumerate(run_channels):
            if (
                type(channel) is EtaInvolutionChannel
                and type(channel.adversary) is RandomAdversary
                and channel.adversary._seed is not None
            ):
                key = (s, id(channel.adversary))
                first = seen_random.get(key)
                if first is None:
                    seen_random[key] = ename
                elif key not in shared_reported:
                    shared_reported.add(key)
                    reasons.append(
                        f"scenario {scenarios[s].name!r}: one RandomAdversary "
                        f"instance is shared by edges {first!r} and {ename!r} "
                        "(the scalar engine interleaves a single RNG stream "
                        "across sharing edges)"
                    )
        fact = _edge_fact(eid, ename, topo, run_channels, reasons)
        if fact is not None:
            edge_facts[eid] = fact

    # --- settle consistency -------------------------------------------------- #
    # The engine's time-0 settle pass evaluates every gate against the
    # channel-output initial values derived from *declared* node initial
    # values; gates whose declared initial disagrees flip at time 0.
    # Those flips mark edges as settle-sensitive (a delivery at or before
    # time 0 would interleave with them) and, through zero-delay edges,
    # can glitch downstream gates within the settle instant.
    def _declared_initial(nid: int) -> Optional[int]:
        if topo.node_kind[nid] == _NODE_GATE:
            return topo.gate_initial_by_node[nid]
        return port_initials.get(topo.node_names[nid])

    settle_inconsistent = analysis.settle_inconsistent
    for gid in topo.gate_ids:
        out_inits = []
        for in_eid in topo.gate_input_edge_ids[gid]:
            fact = edge_facts.get(in_eid)
            if fact is None:
                break
            src_initial = _declared_initial(fact.source_id)
            if src_initial is None:
                break
            out_inits.append(
                (1 - src_initial) if fact.inverting else src_initial
            )
        else:
            gname = topo.node_names[gid]
            settled = topo.gate_types[gname].evaluate(tuple(out_inits))
            if settled != topo.gate_initial_by_node[gid]:
                settle_inconsistent.add(gid)

    # --- zero-delay hazards --------------------------------------------------- #
    # Two zero-delay shapes stay static obstacles.  A cycle made purely
    # of zero-delay edges never makes progress: the scalar engine spins
    # its delta cycles until the combinational-loop guard fires, and the
    # fixpoint scheduler has no growing time prefix to converge on.  And
    # a zero-delay edge into a gate that *flips in the time-0 settle
    # pass* interleaves the delivery with the settle evaluation inside
    # one instant -- a double evaluation the levelized tie-break pass
    # cannot replay.  Every other same-instant hazard (multi-input
    # targets, deliveries at t <= 0) is now checked dynamically by the
    # vector backend's wave-class coincidence pass, which falls back
    # only for the scenarios where classes actually collide.
    min_input_time = _INF
    for scenario in scenarios:
        for signal in scenario.inputs.values():
            if len(signal.transitions):
                min_input_time = min(min_input_time, signal.transitions[0].time)
    analysis.min_input_time = min_input_time

    zero_out_edges: List[List[int]] = [[] for _ in topo.node_names]
    for eid, fact in edge_facts.items():
        if fact.zero_delay:
            zero_out_edges[fact.source_id].append(eid)
    for edge_ids in zero_out_edges:
        edge_ids.sort()
    zero_components = strongly_connected_components(
        len(topo.node_names), zero_out_edges, topo.edge_target_id
    )
    for component in zero_components:
        is_cycle = len(component) > 1 or any(
            topo.edge_target_id[eid] == component[0]
            for eid in zero_out_edges[component[0]]
        )
        if is_cycle:
            names = sorted(topo.node_names[nid] for nid in component)
            reasons.append(
                f"zero-delay cycle through nodes {names} (a combinational "
                "loop makes no time progress for the fixpoint schedule; "
                "the event-driven engine detects it at run time)"
            )

    for eid, fact in edge_facts.items():
        if not fact.zero_delay or not fact.target_is_gate:
            continue
        target_id = topo.edge_target_id[eid]
        if target_id in settle_inconsistent:
            ename = topo.edge_names[eid]
            gname = topo.node_names[target_id]
            reasons.append(
                f"zero-delay edge {ename!r} into gate {gname!r} which flips "
                "in the time-0 settle pass (same-instant settle glitches "
                "are engine-specific)"
            )
    return analysis
