"""The shared single-history channel kernel.

This module is the single home of the channel semantics that used to be
implemented twice -- once offline in :mod:`repro.core.channel` and once
re-inlined in the event-driven simulator.  Both now build on
:class:`ChannelKernel`, which evaluates one channel *incrementally*:

* **tentative phase** -- :meth:`ChannelKernel.tentative` assigns every
  input transition at time ``t_n`` a tentative output transition at
  ``t_n + delta_n``, where ``delta_n`` depends on the
  previous-output-to-input delay ``T_n = t_n - (t_{n-1} + delta_{n-1})``
  (using the *tentative* previous output transition, regardless of later
  cancellation),
* **transport cancellation** -- :meth:`ChannelKernel.commit` removes
  still-pending (unmatured) outputs at later-or-equal times, suppresses
  out-of-domain (``-inf``) delays, and applies the channel's inertial
  pulse-rejection window,
* **delivery** -- :meth:`ChannelKernel.deliver` (online, driven by an
  event queue) or :meth:`ChannelKernel.mature`/:meth:`ChannelKernel.flush`
  (offline, driven by input order) turn surviving pending transitions into
  delivered output transitions, suppressing no-change deliveries.

The offline resolvers (:func:`transport_resolve` and the literal pairwise
rule :func:`cancel_non_fifo_reference` with its O(n) record-sweep
equivalent :func:`cancel_non_fifo`) also live here;
:mod:`repro.core.channel` re-exports them so existing imports keep
working.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..core.transitions import Signal, Transition
from .errors import CausalityError, SimulationError

__all__ = [
    "PendingTransition",
    "KernelEvent",
    "ChannelKernel",
    "cancel_non_fifo",
    "cancel_non_fifo_reference",
    "transport_resolve",
    "pending_to_signal",
]


@dataclass(slots=True)
class PendingTransition:
    """A tentative output transition before cancellation.

    Attributes
    ----------
    input_time:
        Time ``t_n`` of the generating input transition.
    delay:
        The input-to-output delay ``delta_n`` assigned to it (may be
        ``-inf`` when the domain guard of the eta-channel fires).
    value:
        Output value after the transition (same as the input transition's
        value for non-inverting channels).
    T:
        The previous-output-to-input delay used to compute ``delay``.
    eta:
        The adversarial shift included in ``delay`` (0 for deterministic
        channels).
    cancelled:
        Set by the cancellation phase.
    """

    input_time: float
    delay: float
    value: int
    T: float = math.nan
    eta: float = 0.0
    cancelled: bool = False

    @property
    def output_time(self) -> float:
        """The tentative output transition time ``t_n + delta_n``."""
        return self.input_time + self.delay


class KernelEvent(NamedTuple):
    """A newly scheduled channel-output transition.

    Returned by :meth:`ChannelKernel.feed`/:meth:`ChannelKernel.commit` so
    an event-driven scheduler can enqueue the delivery; ``event_id`` is the
    handle to pass back to :meth:`ChannelKernel.deliver`.  A named tuple:
    one is allocated per scheduled transition, and tuple construction is
    several times cheaper than a (frozen) dataclass.
    """

    time: float
    value: int
    event_id: int


class ChannelKernel:
    """Incremental evaluation of one single-history channel.

    One kernel instance holds the complete per-channel state that the
    two-phase algorithm of the paper needs: the tentative-phase bookkeeping
    (previous input time/delay, transition count), the queue of pending
    (scheduled but undelivered) output transitions, and the delivered
    output prefix.  The event-driven engine keeps one kernel per circuit
    edge; the offline channel algorithm drives a throwaway kernel over the
    whole input signal.

    Parameters
    ----------
    channel:
        The channel whose delay semantics to apply.  May be ``None`` for a
        pure cancellation resolver (see :func:`transport_resolve`), in
        which case only :meth:`commit`/:meth:`mature`/:meth:`flush` may be
        used.
    input_initial_value:
        Initial value of the channel's input signal.
    name:
        Label used in error messages (the engine passes the edge name).
    id_source:
        Callable yielding fresh event ids; defaults to a private counter.
        The engine shares its event-queue counter so delivery events sort
        deterministically.
    on_causality:
        Policy when a transition is scheduled at-or-before an already
        delivered one with a differing value: ``"error"`` raises
        :class:`~repro.engine.errors.CausalityError`, ``"drop"`` discards
        it (counted in :attr:`dropped`).
    queue_horizon:
        Cancelled pending transitions need a tombstone in
        :attr:`cancelled_ids` only if their delivery event actually sits in
        an external event queue.  The engine schedules deliveries up to the
        simulation ``end_time`` and passes it here, so ids of transitions
        cancelled *past* the horizon are never recorded (they would
        otherwise accumulate without ever being drained -- the bookkeeping
        leak of the former ``_EdgeState``).  Offline evaluation uses no
        external queue and keeps the default ``-inf``.
    tombstones:
        Optional shared tombstone set.  Event ids are globally unique (the
        engine shares one id counter across all kernels), so every kernel
        of a run can write cancellations into the *same* set; the
        :class:`~repro.engine.scheduler.Scheduler` reads it to discard
        cancelled delivery events lazily at pop time, before they ever
        reach a batch.  Defaults to a private per-kernel set (offline and
        standalone use).
    """

    __slots__ = (
        "channel",
        "name",
        "on_causality",
        "queue_horizon",
        "_next_id",
        "_shared_tombstones",
        "_delay_for",
        "_inverting",
        "_rejection_window",
        "input_initial_value",
        "last_input_time",
        "last_delay",
        "last_input_value",
        "transition_count",
        "delivered_value",
        "last_delivered_time",
        "pending",
        "_pending_index",
        "delivered",
        "cancelled_ids",
        "dropped",
    )

    def __init__(
        self,
        channel: Optional[object],
        *,
        input_initial_value: int = 0,
        name: Optional[str] = None,
        id_source: Optional[Callable[[], int]] = None,
        on_causality: str = "error",
        queue_horizon: float = -math.inf,
        tombstones: Optional[Set[int]] = None,
    ) -> None:
        if on_causality not in ("error", "drop"):
            raise ValueError("on_causality must be 'error' or 'drop'")
        self.channel = channel
        self.name = name or (getattr(channel, "name", None) or "channel")
        self.on_causality = on_causality
        self.queue_horizon = queue_horizon
        self._next_id = id_source if id_source is not None else itertools.count().__next__
        self._shared_tombstones = tombstones
        self.reset(input_initial_value)

    # -- state ----------------------------------------------------------- #

    def reset(self, input_initial_value: Optional[int] = None) -> None:
        """Reset to the start-of-run state (also resets the channel)."""
        if input_initial_value is not None:
            self.input_initial_value = input_initial_value
        self.last_input_time = -math.inf
        self.last_delay = self.channel.initial_delay() if self.channel else 0.0
        self.last_input_value = self.input_initial_value
        self.transition_count = 0
        self.delivered_value = (
            self.channel.output_initial_value(self.input_initial_value)
            if self.channel
            else self.input_initial_value
        )
        self.last_delivered_time = -math.inf
        #: Scheduled-but-undelivered outputs as a time-sorted maturity
        #: frontier (a deque: cancellation pops from the right, delivery
        #: from the left, both O(1)):
        #: ``(time, value, event_id, generating PendingTransition or None)``.
        self.pending: Deque[Tuple[float, int, int, Optional[PendingTransition]]] = deque()
        #: ``event_id -> pending entry`` index (O(1) delivery lookup).
        self._pending_index: Dict[int, Tuple[float, int, int, Optional[PendingTransition]]] = {}
        #: Delivered output transitions, in delivery order.
        self.delivered: List[Transition] = []
        #: Tombstones of cancelled transitions whose delivery event is still
        #: in the external event queue (shared with the scheduler when the
        #: engine drives this kernel).
        self.cancelled_ids: Set[int] = (
            self._shared_tombstones if self._shared_tombstones is not None else set()
        )
        #: Transitions discarded by the ``on_causality="drop"`` policy.
        self.dropped = 0
        channel = self.channel
        if channel is not None:
            channel.reset()
        # Per-transition hot-path constants: the channel's delay function,
        # inversion flag and inertial window are fixed for the lifetime of a
        # run, so the attribute/method lookups are hoisted out of
        # tentative()/commit().
        self._delay_for = channel.delay_for if channel is not None else None
        self._inverting = bool(channel.inverting) if channel is not None else False
        self._rejection_window = (
            channel.rejection_window() if channel is not None else 0.0
        )

    def finalize(self) -> None:
        """Drop end-of-run bookkeeping (pending past the horizon, tombstones).

        The engine calls this once the event queue is drained or the
        simulation horizon is reached: every remaining pending transition
        and cancellation tombstone refers to an event that can no longer be
        delivered, so keeping them would only leak memory across the
        assembled execution.
        """
        self.pending.clear()
        self._pending_index.clear()
        self.cancelled_ids.clear()

    # -- tentative phase -------------------------------------------------- #

    def tentative(self, time: float, value: int) -> PendingTransition:
        """Assign the tentative delay ``delta_n`` to one input transition.

        Updates the previous-output bookkeeping regardless of later
        cancellation, exactly as the paper's algorithm prescribes.
        """
        if self.last_input_time == -math.inf:
            T = math.inf
        else:
            T = time - self.last_input_time - self.last_delay
        out_value = (1 - value) if self._inverting else value
        delay = self._delay_for(T, out_value == 1, self.transition_count, time)
        self.last_input_time = time
        self.last_delay = delay
        self.last_input_value = value
        self.transition_count += 1
        return PendingTransition(input_time=time, delay=delay, value=out_value, T=T)

    # -- cancellation phase ----------------------------------------------- #

    def commit(self, p: PendingTransition) -> Optional[KernelEvent]:
        """Apply transport cancellation and schedule ``p`` if it survives.

        Returns the delivery event for the scheduler, or ``None`` when the
        transition was suppressed (out-of-domain delay, inertial rejection,
        no-change after cancellation, or the ``"drop"`` causality policy).
        """
        out_time = p.output_time
        # Transport cancellation: remove still-pending outputs at >= out_time
        # (matured outputs have been delivered and are no longer pending).
        # The frontier is time-sorted, so the cancelled entries are exactly
        # a suffix -- popped from the right, O(1) each, instead of the
        # full-list rebuild the pre-optimization kernel performed.
        pending = self.pending
        while pending and pending[-1][0] >= out_time:
            self._cancel(pending.pop())

        # Inertial pulse rejection: an output pulse narrower than the
        # channel's rejection window is removed entirely (both its
        # transitions), matching the offline remove_short_pulses filter.
        window = self._rejection_window
        if window > 0.0 and pending and out_time - pending[-1][0] < window:
            self._cancel(pending.pop())
            p.cancelled = True
            return None

        if not math.isfinite(out_time):
            # Domain-guard case (delta = -inf): the transition cancels
            # everything pending (done above) and is itself dropped.
            p.cancelled = True
            return None
        if out_time <= self.last_delivered_time:
            p.cancelled = True
            if p.value == self.delivered_value:
                # All pending transitions at later-or-equal times were just
                # cancelled and the remaining scheduled value already equals
                # this transition's value, so it is a no-change transition;
                # suppressing it matches the offline transport resolution.
                return None
            if self.on_causality == "error":
                raise CausalityError(
                    f"channel {self.name!r} scheduled an output at {out_time:g} "
                    f"but already delivered one at {self.last_delivered_time:g}"
                )
            self.dropped += 1
            return None
        event_id = self._next_id()
        entry = (out_time, p.value, event_id, p)
        pending.append(entry)
        self._pending_index[event_id] = entry
        return KernelEvent(out_time, p.value, event_id)

    def feed(self, time: float, value: int) -> Optional[KernelEvent]:
        """Feed one input transition (online mode): tentative + commit.

        Same-value inputs (no transition at the channel's input) are
        ignored, mirroring the event-driven simulator's behaviour for gate
        outputs that glitch back within a delta cycle.

        This is the engine's per-transition hot path: it runs the fused
        tentative+commit logic inline, without allocating the
        :class:`PendingTransition` bookkeeping object the offline two-phase
        API exposes.  It must mirror :meth:`tentative` followed by
        :meth:`commit` exactly -- the online/offline equivalence tests pin
        that property.
        """
        if value == self.last_input_value:
            return None
        # -- fused tentative phase -- #
        if self.last_input_time == -math.inf:
            T = math.inf
        else:
            T = time - self.last_input_time - self.last_delay
        out_value = (1 - value) if self._inverting else value
        delay = self._delay_for(T, out_value == 1, self.transition_count, time)
        self.last_input_time = time
        self.last_delay = delay
        self.last_input_value = value
        self.transition_count += 1
        out_time = time + delay
        # -- fused cancellation phase -- #
        pending = self.pending
        while pending and pending[-1][0] >= out_time:
            self._cancel(pending.pop())
        window = self._rejection_window
        if window > 0.0 and pending and out_time - pending[-1][0] < window:
            self._cancel(pending.pop())
            return None
        if not math.isfinite(out_time):
            return None
        if out_time <= self.last_delivered_time:
            if out_value == self.delivered_value:
                return None
            if self.on_causality == "error":
                raise CausalityError(
                    f"channel {self.name!r} scheduled an output at {out_time:g} "
                    f"but already delivered one at {self.last_delivered_time:g}"
                )
            self.dropped += 1
            return None
        event_id = self._next_id()
        entry = (out_time, out_value, event_id, None)
        pending.append(entry)
        self._pending_index[event_id] = entry
        return KernelEvent(out_time, out_value, event_id)

    def _cancel(self, entry: Tuple[float, int, int, Optional[PendingTransition]]) -> None:
        time, _value, event_id, p = entry
        self._pending_index.pop(event_id, None)
        if time <= self.queue_horizon:
            # Only events actually sitting in the external queue need a
            # tombstone; ids of never-enqueued (past-horizon) events would
            # otherwise accumulate until the end of the run.
            self.cancelled_ids.add(event_id)
        if p is not None:
            p.cancelled = True

    # -- delivery --------------------------------------------------------- #

    def deliver(self, event_id: int, value: int, time: float) -> bool:
        """Deliver a scheduled output transition (online mode).

        Returns True if the channel output actually changed (the engine
        then propagates the transition to the target node).  An
        ``event_id`` that is neither pending nor tombstoned can only mean
        scheduler/kernel state divergence and raises
        :class:`~repro.engine.errors.SimulationError`.
        """
        if event_id in self.cancelled_ids:
            self.cancelled_ids.discard(event_id)
            return False
        entry = self._pending_index.pop(event_id, None)
        if entry is None:
            raise SimulationError(
                f"channel {self.name!r} asked to deliver event {event_id} which is "
                "neither pending nor cancelled -- scheduler and kernel state have "
                "diverged"
            )
        pending = self.pending
        if pending and pending[0] is entry:
            # Deliveries arrive in time order, so the entry is the frontier
            # head in every engine-driven run; the O(n) removal below only
            # serves out-of-order standalone use.
            pending.popleft()
        else:
            pending.remove(entry)
        # Inlined _deliver_value (per-delivery hot path).
        p = entry[3]
        if value == self.delivered_value:
            if p is not None:
                p.cancelled = True
            return False
        self.delivered_value = value
        self.last_delivered_time = time
        self.delivered.append(Transition(time, value))
        if p is not None:
            p.cancelled = False
        return True

    def deliver_immediate(self, time: float, value: int) -> bool:
        """Zero-delay delivery used for :class:`ZeroDelayChannel` edges.

        Applies the logical inversion, suppresses no-change deliveries and
        collapses zero-width glitches (two deliveries at the same instant
        cancel out), returning True if the output changed.
        """
        self.last_input_value = value
        out_value = (1 - value) if self.channel and self.channel.inverting else value
        if out_value == self.delivered_value:
            return False
        self.delivered_value = out_value
        self.last_delivered_time = time
        if self.delivered and self.delivered[-1].time == time:
            self.delivered.pop()
        else:
            self.delivered.append(Transition(time, out_value))
        return True

    def _deliver_value(
        self, time: float, value: int, p: Optional[PendingTransition]
    ) -> bool:
        if value == self.delivered_value:
            if p is not None:
                p.cancelled = True
            return False
        self.delivered_value = value
        self.last_delivered_time = time
        self.delivered.append(Transition(time, value))
        if p is not None:
            p.cancelled = False
        return True

    def mature(self, up_to_time: float) -> None:
        """Deliver every pending output scheduled at or before ``up_to_time``.

        This is the offline counterpart of the event queue: a pending
        transition whose output time is at-or-before the next input
        transition has *matured* (an online simulation would already have
        delivered it), so it can no longer be transport-cancelled.
        """
        pending = self.pending
        index = self._pending_index
        while pending and pending[0][0] <= up_to_time:
            time, value, event_id, p = pending.popleft()
            index.pop(event_id, None)
            self._deliver_value(time, value, p)

    def flush(self) -> None:
        """Deliver all remaining pending outputs (end of offline evaluation)."""
        self.mature(math.inf)

    # -- offline evaluation ----------------------------------------------- #

    def process(self, signal: Signal) -> Signal:
        """Evaluate the channel function over a whole input signal.

        This is the offline algorithm of the paper: tentative phase in
        input order, transport cancellation restricted to unmatured
        transitions, then delivery -- byte-for-byte the behaviour of the
        event-driven engine on a single-channel circuit.
        """
        self.reset(signal.initial_value)
        for transition in signal:
            self.mature(transition.time)
            self.commit(self.tentative(transition.time, transition.value))
        self.flush()
        return Signal(
            self.channel.output_initial_value(signal.initial_value)
            if self.channel
            else self.input_initial_value,
            self.delivered,
            allow_negative_times=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelKernel({self.name!r}, pending={len(self.pending)}, "
            f"delivered={len(self.delivered)})"
        )


# --------------------------------------------------------------------------- #
# Offline cancellation resolvers
# --------------------------------------------------------------------------- #


def cancel_non_fifo_reference(times: Sequence[float]) -> List[bool]:
    """Literal O(n^2) implementation of the cancellation rule.

    ``times[k]`` is the tentative output time of the k-th pending
    transition.  Returns a list of booleans, True meaning *cancelled*.
    A transition is cancelled iff it participates in at least one
    non-FIFO pair (an earlier transition with a later-or-equal output
    time, or a later transition with an earlier-or-equal output time).
    """
    n = len(times)
    cancelled = [False] * n
    for i in range(n):
        for j in range(i + 1, n):
            if times[i] >= times[j]:
                cancelled[i] = True
                cancelled[j] = True
    return cancelled


def cancel_non_fifo(times: Sequence[float]) -> List[bool]:
    """O(n) cancellation sweep equivalent to :func:`cancel_non_fifo_reference`.

    A transition survives iff its output time is strictly larger than every
    earlier output time and strictly smaller than every later output time,
    i.e. it is a strict two-sided record.  Survivors are automatically in
    strictly increasing time order and (because an even number of
    transitions is dropped between consecutive survivors) still alternate
    in value.
    """
    n = len(times)
    if n == 0:
        return []
    prefix_max = [-math.inf] * n
    running = -math.inf
    for i, t in enumerate(times):
        prefix_max[i] = running
        running = max(running, t)
    suffix_min = [math.inf] * n
    running = math.inf
    for i in range(n - 1, -1, -1):
        suffix_min[i] = running
        running = min(running, times[i])
    return [not (prefix_max[i] < times[i] < suffix_min[i]) for i in range(n)]


def transport_resolve(
    initial_value: int, pending: Sequence[PendingTransition]
) -> Signal:
    """Resolve cancellations with transport (VHDL-style) semantics.

    Tentative transitions are processed in generation order; scheduling a
    new transition at time ``s`` (generated by an input transition at time
    ``t``) removes all still-queued transitions with time ``>= s`` that have
    not yet *matured* (their time is ``> t``, i.e. they would still be
    pending in an online simulation).  After processing, queued transitions
    that do not change the output value are suppressed, which yields a
    well-formed (alternating) output signal.  The maturity condition makes
    this offline resolution agree exactly with the incremental resolution
    of the event-driven engine -- it runs the same :class:`ChannelKernel`.
    """
    kernel = ChannelKernel(None, input_initial_value=initial_value)
    for p in pending:
        kernel.mature(p.input_time)
        kernel.commit(p)
    kernel.flush()
    return Signal(initial_value, kernel.delivered, allow_negative_times=True)


def pending_to_signal(
    initial_value: int,
    pending: Sequence[PendingTransition],
    *,
    mode: str = "transport",
    use_reference_cancellation: bool = False,
) -> Signal:
    """Apply the cancellation phase and assemble the output signal.

    ``mode`` selects the resolver: ``"transport"`` (default, well-formed for
    arbitrary overlaps), ``"record"`` (O(n) two-sided-record sweep of the
    literal pairwise rule) or ``"pairwise"`` (O(n^2) literal reference).
    ``use_reference_cancellation=True`` is a legacy alias for
    ``mode="pairwise"``.
    """
    if use_reference_cancellation:
        mode = "pairwise"
    if mode == "transport":
        return transport_resolve(initial_value, pending)
    times = [p.output_time for p in pending]
    if mode == "pairwise":
        cancelled = cancel_non_fifo_reference(times)
    elif mode == "record":
        cancelled = cancel_non_fifo(times)
    else:
        raise ValueError(f"unknown cancellation mode {mode!r}")
    for p, c in zip(pending, cancelled):
        p.cancelled = c
    transitions = [
        Transition(p.output_time, p.value)
        for p in pending
        if not p.cancelled and math.isfinite(p.output_time)
    ]
    return Signal(initial_value, transitions, allow_negative_times=True)
