"""Fault-tolerant sharded sweep execution: checkpoint, resume, retry, dispatch.

:func:`repro.engine.sweep.run_many` is all-or-nothing: a worker crash,
OOM-kill or Ctrl-C at scenario 119/120 loses everything, and one
unsupported scenario shape drops the *entire* sweep from the vector
backend to scalar.  This module makes scenario families resilient:

Chunking and checkpointing
    A sweep is split into deterministic, order-preserving *chunks*
    (:func:`make_chunks`).  With ``checkpoint=`` (an
    :class:`~repro.store.ArtifactStore` or directory path) every finished
    chunk is written to the store under a content key -- the SHA-256 of
    the circuit's declarative spec plus the chunk's computation-relevant
    scenario JSON (inputs, channel overrides, horizons, engine policies;
    see :func:`chunk_spec`).  A killed or crashed sweep *resumes* by
    loading finished chunks and recomputing only the remainder,
    bit-identical to an uninterrupted run: the packed signal encoding
    round-trips float64 times exactly.

Retry, timeout, and poison chunks
    Each chunk executes under a :class:`RetryPolicy` (configurable
    attempts with exponential backoff).  On the process backend a
    per-chunk wall-clock timeout is enforced by killing and respawning
    the worker pool, and a ``BrokenProcessPool`` (worker OOM-killed or
    segfaulted) is likewise recovered by respawning.  A chunk that still
    fails after its last attempt is *quarantined*: its exception is
    captured in a structured :class:`ChunkFailure`, sibling chunks
    complete normally, and the sweep either raises a
    :class:`SweepFailedError` at the end (default) or -- with
    ``on_chunk_failure="keep"`` -- returns the surviving runs with the
    :class:`SweepFailureReport` attached to ``SweepResult.failure_report``.

Per-chunk backend dispatch
    With ``backend="auto"`` (or ``"vector"``) every chunk consults the
    vector compiler individually: vector-eligible chunks run vectorized
    (inside each process worker, under ``backend="process"`` -- the ~6x
    vector speedup and multi-core scaling multiply), and only the
    genuinely incompatible chunks fall back to the scalar engine.  The
    fallback is never silent: per-chunk obstacles are aggregated into the
    sweep's ``vector_report`` and a ``RuntimeWarning``.

Fault injection
    :class:`FaultInjector` wraps a chunk executor and raises chosen
    faults on chosen ``(chunk, attempt)`` pairs -- the deterministic
    harness the test-suite uses to prove resume equivalence and retry
    semantics.  The process pool accepts an equivalent ``chaos`` table
    that kills, hangs, or raises inside real workers.
"""

from __future__ import annotations

import base64
import math
import os
import pickle
import queue as _queue
import threading
import time as _time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.transitions import Signal, _signal_from_packed
from .errors import SimulationError
from .scheduler import CircuitTopology, Engine, Execution

__all__ = [
    "CHUNK_FORMAT",
    "DEFAULT_CHUNK_SIZE",
    "RetryPolicy",
    "as_retry_policy",
    "ChunkError",
    "ChunkTimeoutError",
    "WorkerCrashError",
    "SweepFailedError",
    "SweepChunk",
    "ChunkFailure",
    "SweepFailureReport",
    "ChunkRecord",
    "ShardReport",
    "InlineChunkExecutor",
    "FaultInjector",
    "make_chunks",
    "chunk_spec",
    "scenario_fingerprint",
    "run_many_sharded",
]

#: Artifact format tag of per-chunk checkpoint payloads.
CHUNK_FORMAT = "repro-sweep-chunk"

#: Scenarios per chunk when ``chunk_size`` is not given.  Deliberately a
#: fixed constant (never derived from the worker count): chunk boundaries
#: are part of the checkpoint key, and a resume on a machine with a
#: different core count must still hit the stored chunks.
DEFAULT_CHUNK_SIZE = 16


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, a failing chunk is re-attempted.

    ``attempts`` is the *total* number of tries (1 = no retries).  Before
    retry ``n`` (the second try being ``n = 2``) the runner sleeps
    ``backoff_s * multiplier**(n - 2)`` seconds, capped at
    ``max_backoff_s`` -- classic exponential backoff, which matters when
    the failure is a transient resource squeeze (OOM-killed worker, a
    saturated machine) rather than a deterministic bug.
    """

    attempts: int = 3
    backoff_s: float = 0.1
    multiplier: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("RetryPolicy.attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("RetryPolicy backoff parameters must be non-negative")

    def delay_before(self, attempt: int) -> float:
        """Seconds to sleep before the given attempt (1-based; 0 for the first)."""
        if attempt <= 1:
            return 0.0
        return min(self.backoff_s * self.multiplier ** (attempt - 2), self.max_backoff_s)


def as_retry_policy(retry) -> RetryPolicy:
    """Coerce ``None`` (defaults), an int (total attempts), or a policy."""
    if retry is None:
        return RetryPolicy()
    if isinstance(retry, RetryPolicy):
        return retry
    if isinstance(retry, int):
        return RetryPolicy(attempts=retry)
    raise TypeError(f"cannot interpret {type(retry).__name__} as a retry policy")


# --------------------------------------------------------------------------- #
# Errors and failure reporting
# --------------------------------------------------------------------------- #


class ChunkError(SimulationError):
    """Base class of chunk-level execution failures."""


class ChunkTimeoutError(ChunkError):
    """A chunk exceeded its per-attempt wall-clock timeout."""


class WorkerCrashError(ChunkError):
    """A process worker died mid-chunk (``BrokenProcessPool``, kill, OOM)."""


@dataclass(frozen=True)
class ChunkFailure:
    """One quarantined chunk: what failed, how, and after how many tries."""

    index: int
    scenario_names: Tuple[str, ...]
    attempts: int
    kind: str  # "timeout" | "crash" | "exception"
    error: str
    error_type: str
    key: Optional[str] = None

    def summary(self) -> str:
        """One-line human-readable description of this failure."""
        names = ", ".join(self.scenario_names[:3])
        if len(self.scenario_names) > 3:
            names += f", ... ({len(self.scenario_names)} scenarios)"
        return (
            f"chunk {self.index} [{names}] failed after {self.attempts} "
            f"attempt(s): {self.kind}: {self.error}"
        )


@dataclass(frozen=True)
class SweepFailureReport:
    """Structured account of every quarantined chunk of a sweep."""

    failures: Tuple[ChunkFailure, ...]

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self):
        return iter(self.failures)

    def summary(self) -> str:
        """One-line roll-up naming each failed chunk."""
        return (
            f"{len(self.failures)} chunk(s) quarantined: "
            + "; ".join(f.summary() for f in self.failures)
        )


class SweepFailedError(SimulationError):
    """Raised at sweep end when chunks were quarantined (default policy).

    Carries the :class:`SweepFailureReport` as ``report`` and the partial
    :class:`~repro.engine.sweep.SweepResult` (surviving runs, shard
    report, any checkpointed progress) as ``result`` -- the work that
    *did* finish is never discarded, and a checkpointed rerun resumes it.
    """

    def __init__(self, report: SweepFailureReport, result) -> None:
        super().__init__(report.summary())
        self.report = report
        self.result = result


# --------------------------------------------------------------------------- #
# Chunking and content keys
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SweepChunk:
    """A contiguous slice of a sweep's scenarios, with its content key.

    ``spec``/``key`` are ``None`` unless the sweep is checkpointed --
    keying requires spec-representable scenarios, which uncheckpointed
    sweeps need not satisfy.
    """

    index: int
    scenarios: Tuple[object, ...]
    spec: Optional[Dict[str, Any]] = None
    key: Optional[str] = None

    @property
    def names(self) -> Tuple[str, ...]:
        """Scenario names of this chunk (labels only, not key material)."""
        return tuple(s.name for s in self.scenarios)


def scenario_fingerprint(scenario, *, _signal_memo=None) -> Dict[str, Any]:
    """The computation-relevant canonical JSON of one scenario.

    Covers exactly what determines the scenario's execution: input
    signals, the simulation horizon, and per-edge channel overrides as
    declarative :class:`~repro.specs.ChannelSpec` dicts.  Adversary
    *seeds* are split out of the channel dicts into a separate
    ``channel_seeds`` entry: in the common scenario family (a Monte
    Carlo sweep) the seed is the *only* thing that differs between
    scenarios, and the split lets :func:`chunk_spec` pool one shared
    seed-free channel table per chunk instead of repeating ~10 KB of
    channel parameters per scenario.  Scenario ``name`` and ``metadata``
    are display labels and deliberately excluded -- renaming runs must
    not invalidate a checkpoint.  Raises
    :class:`~repro.specs.SpecError` for channels that cannot be expressed
    as specs.

    ``_signal_memo`` is an identity-keyed cache :func:`make_chunks`
    shares across a whole sweep's fingerprints: scenario families
    typically reuse the very same input-signal objects in every scenario,
    and serialising a long pulse train once instead of once per scenario
    keeps chunk keying off the checkpoint-overhead bill.

    Scenarios whose producer precomputed ``scenario.fingerprint`` (e.g.
    :func:`~repro.engine.sweep.eta_monte_carlo`, which knows only the
    adversary seed varies between runs) return it directly -- the
    equivalence of the precomputed and derived forms is pinned by the
    test-suite.
    """
    precomputed = getattr(scenario, "fingerprint", None)
    if precomputed is not None:
        return precomputed

    from ..io.netlist import signal_to_dict
    from ..specs import ChannelSpec

    inputs: Dict[str, Any] = {}
    for port, signal in sorted(scenario.inputs.items()):
        if _signal_memo is None:
            inputs[port] = signal_to_dict(signal)
        else:
            cached = _signal_memo.get(id(signal))
            if cached is None:
                cached = _signal_memo[id(signal)] = signal_to_dict(signal)
            inputs[port] = cached
    data: Dict[str, Any] = {
        "end_time": float(scenario.end_time),
        "inputs": inputs,
    }
    if scenario.channels:
        channels: Dict[str, Any] = {}
        seeds: Dict[str, Any] = {}
        for ename, channel in sorted(scenario.channels.items()):
            ch = ChannelSpec.from_channel(channel).to_dict()
            adv = ch.get("adversary")
            if isinstance(adv, dict) and "seed" in adv:
                adv = dict(adv)
                seeds[ename] = adv.pop("seed")
                ch = dict(ch)
                ch["adversary"] = adv
            channels[ename] = ch
        data["channels"] = channels
        if seeds:
            data["channel_seeds"] = seeds
    return data


def chunk_spec(
    circuit_spec: Dict[str, Any],
    scenarios: Sequence[object],
    *,
    on_causality: str,
    max_events: int,
    _signal_memo=None,
    _text_memo=None,
) -> Dict[str, Any]:
    """The content spec a chunk checkpoint is keyed on.

    SHA-256 of this dict's canonical JSON (via
    :meth:`repro.store.ArtifactStore.key_for`) is the chunk key: it pins
    the circuit (declarative spec), every scenario's computation-relevant
    fingerprint *in order*, and the engine policies that shape results.
    Chunk boundaries are part of the identity -- resuming with a
    different ``chunk_size`` recomputes (correctly, never wrongly).

    The bulky fingerprint components -- the ``inputs`` signal table and
    the seed-free ``channels`` table -- are *pooled*: each distinct value
    is stored once in the chunk's ``pool`` list and referenced by index
    from the per-scenario entries.  Scenario families share their input
    signals and channel parameters across every scenario (only adversary
    seeds differ), so pooling shrinks the keyed spec (and the spec
    embedded in every checkpoint artifact) by an order of magnitude.
    Pooling is by *value* (canonical JSON), so the chunk key never
    depends on whether a producer happened to alias the dicts.

    ``_text_memo`` is an id-keyed canonical-text cache shared across a
    sweep's chunks by :func:`make_chunks`, so aliased pool entries are
    canonicalised once per sweep rather than once per scenario.  Each
    entry pins ``(value, text)`` -- keeping the keyed object alive is
    what makes the ``id()`` key sound (a freed dict's id can be reused
    by a different value, which would silently poison the cache).
    """
    from ..specs import _canonical_key

    pool: List[Any] = []
    pool_index: Dict[str, int] = {}

    def intern(value: Any) -> int:
        if _text_memo is not None:
            entry = _text_memo.get(id(value))
            if entry is None or entry[0] is not value:
                entry = _text_memo[id(value)] = (value, _canonical_key(value))
            text = entry[1]
        else:
            text = _canonical_key(value)
        idx = pool_index.get(text)
        if idx is None:
            idx = pool_index[text] = len(pool)
            pool.append(value)
        return idx

    fingerprints: List[Dict[str, Any]] = []
    for s in scenarios:
        fp = dict(scenario_fingerprint(s, _signal_memo=_signal_memo))
        fp["inputs"] = intern(fp["inputs"])
        if "channels" in fp:
            fp["channels"] = intern(fp["channels"])
        fingerprints.append(fp)
    return {
        "kind": "sweep_chunk",
        "format_version": 1,
        "circuit": circuit_spec,
        "on_causality": on_causality,
        "max_events": int(max_events),
        "pool": pool,
        "scenarios": fingerprints,
    }


def make_chunks(
    scenarios: Sequence[object],
    chunk_size: int,
    *,
    circuit_spec: Optional[Dict[str, Any]] = None,
    on_causality: str = "error",
    max_events: int = 1_000_000,
) -> List[SweepChunk]:
    """Split scenarios into deterministic, order-preserving chunks.

    With ``circuit_spec`` given (checkpointed sweeps), every chunk also
    carries its content spec and SHA-256 key.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks: List[SweepChunk] = []
    signal_memo: Dict[int, Any] = {}
    text_memo: Dict[int, Tuple[Any, str]] = {}
    for index, start in enumerate(range(0, len(scenarios), chunk_size)):
        part = tuple(scenarios[start : start + chunk_size])
        spec = key = None
        if circuit_spec is not None:
            from ..store import ArtifactStore

            spec = chunk_spec(
                circuit_spec,
                part,
                on_causality=on_causality,
                max_events=max_events,
                _signal_memo=signal_memo,
                _text_memo=text_memo,
            )
            key = ArtifactStore.key_for(spec)
        chunks.append(SweepChunk(index=index, scenarios=part, spec=spec, key=key))
    return chunks


# --------------------------------------------------------------------------- #
# Chunk payload encoding (the checkpoint wire format)
# --------------------------------------------------------------------------- #
# Signals are packed exactly like Signal.__reduce__ does for the process
# backend -- the initial value plus a float64 time array, base64-wrapped
# for JSON -- so encoding costs O(transitions) array appends instead of
# per-float repr() calls, and decoding reuses the trusted fast path.
# Transition values are never stored: alternation is a hard Signal
# invariant, so the value sequence is fully determined by the initial
# value.  Float64 bits survive the round trip exactly, which is what
# makes a resumed sweep bit-identical to an uninterrupted one.


def _pack_signal(signal: Signal) -> Dict[str, Any]:
    return {
        "i": signal.initial_value,
        "t": base64.b64encode(signal._pack_times()).decode("ascii"),
    }


def _unpack_signal(data: Dict[str, Any]) -> Signal:
    return _signal_from_packed(int(data["i"]), base64.b64decode(data["t"]))


def _encode_chunk_payload(outcome: "_ChunkOutcome") -> Dict[str, Any]:
    runs = []
    for run in outcome.runs:
        execution = run.execution
        runs.append(
            {
                "node_signals": {
                    name: _pack_signal(sig)
                    for name, sig in execution.node_signals.items()
                },
                "edge_signals": {
                    name: _pack_signal(sig)
                    for name, sig in execution.edge_signals.items()
                },
                "event_count": execution.event_count,
                "dropped_transitions": execution.dropped_transitions,
                "seconds": run.seconds,
            }
        )
    return {
        "backend": outcome.backend,
        "vector_reasons": list(outcome.vector_reasons),
        "seconds": outcome.seconds,
        "runs": runs,
    }


def _decode_chunk_payload(topo: CircuitTopology, chunk: SweepChunk, payload):
    """Rebuild the chunk's RunResults from a payload, or ``None`` if damaged."""
    from .sweep import RunResult

    try:
        encoded_runs = payload["runs"]
        if len(encoded_runs) != len(chunk.scenarios):
            return None
        runs = []
        for scenario, data in zip(chunk.scenarios, encoded_runs):
            node_signals = {
                name: _unpack_signal(sig) for name, sig in data["node_signals"].items()
            }
            edge_signals = {
                name: _unpack_signal(sig) for name, sig in data["edge_signals"].items()
            }
            output_signals = {o: node_signals[o] for o in topo.output_ports}
            runs.append(
                RunResult(
                    scenario=scenario,
                    execution=Execution(
                        circuit=topo.circuit,
                        node_signals=node_signals,
                        edge_signals=edge_signals,
                        output_signals=output_signals,
                        end_time=scenario.end_time,
                        event_count=int(data["event_count"]),
                        dropped_transitions=int(data["dropped_transitions"]),
                    ),
                    seconds=float(data["seconds"]),
                )
            )
        return _ChunkOutcome(
            runs=runs,
            backend=str(payload.get("backend", "sequential")),
            vector_reasons=tuple(payload.get("vector_reasons", ())),
            seconds=float(payload.get("seconds", 0.0)),
            payload=payload,
        )
    except (KeyError, TypeError, ValueError):
        # Damaged checkpoint content: treat as a miss and recompute --
        # exactly the store's own damaged-artifact discipline.
        return None


# --------------------------------------------------------------------------- #
# Chunk execution
# --------------------------------------------------------------------------- #


@dataclass
class _ChunkOutcome:
    """One executed (or resumed) chunk: live runs plus bookkeeping."""

    runs: List[object]
    backend: str
    vector_reasons: Tuple[str, ...]
    seconds: float
    payload: Optional[Dict[str, Any]] = None


def _execute_chunk(
    topo: CircuitTopology,
    engine: Engine,
    scenarios: Sequence[object],
    *,
    dispatch: bool,
    on_causality: str,
    max_events: int,
) -> _ChunkOutcome:
    """Run one chunk, vectorized when ``dispatch`` allows and the chunk can."""
    from .sweep import RunResult

    start = _time.perf_counter()
    reasons: Tuple[str, ...] = ()
    if dispatch:
        from .vector import VectorUnsupportedError, compile_sweep

        try:
            program = compile_sweep(
                topo, scenarios, on_causality=on_causality, max_events=max_events
            )
            runs = program.run()
            return _ChunkOutcome(
                runs=runs,
                backend="vector",
                vector_reasons=(),
                seconds=_time.perf_counter() - start,
            )
        except VectorUnsupportedError as exc:
            # Per-chunk fallback: only THIS chunk pays the scalar price.
            reasons = exc.report.reasons
    runs = []
    for scenario in scenarios:
        run_start = _time.perf_counter()
        execution = engine.run(
            scenario.inputs, scenario.end_time, channels=scenario.channels or None
        )
        runs.append(
            RunResult(
                scenario=scenario,
                execution=execution,
                seconds=_time.perf_counter() - run_start,
            )
        )
    return _ChunkOutcome(
        runs=runs,
        backend="sequential",
        vector_reasons=reasons,
        seconds=_time.perf_counter() - start,
    )


class InlineChunkExecutor:
    """Executes chunks in-process, one at a time.

    The default executor for the ``auto``/``vector``/``sequential``
    sharded backends; also the natural base for a :class:`FaultInjector`.
    ``dispatch=False`` pins every chunk to the scalar engine.

    Note: an inline executor cannot preempt a hung chunk -- wall-clock
    ``chunk_timeout`` enforcement needs ``backend="process"``, where a
    stuck worker is killed and respawned.
    """

    def __init__(
        self,
        topology,
        *,
        dispatch: bool = True,
        on_causality: str = "error",
        max_events: int = 1_000_000,
    ) -> None:
        self.topology = (
            topology
            if isinstance(topology, CircuitTopology)
            else CircuitTopology(topology)
        )
        self.dispatch = dispatch
        self.on_causality = on_causality
        self.max_events = max_events
        self._engine = Engine(
            self.topology, on_causality=on_causality, max_events=max_events
        )

    def run_chunk(self, chunk: SweepChunk, attempt: int) -> _ChunkOutcome:
        """Execute one chunk (``attempt`` is 1-based, for harness wrappers)."""
        return _execute_chunk(
            self.topology,
            self._engine,
            chunk.scenarios,
            dispatch=self.dispatch,
            on_causality=self.on_causality,
            max_events=self.max_events,
        )


class FaultInjector:
    """Deterministic fault-injection wrapper around a chunk executor.

    ``faults`` maps ``(chunk_index, attempt)`` to a fault: an exception
    *instance* to raise, or one of the strings ``"crash"``
    (:class:`WorkerCrashError`), ``"timeout"``
    (:class:`ChunkTimeoutError`), ``"error"`` (a plain
    :class:`RuntimeError`), or ``"abort"`` (:class:`KeyboardInterrupt` --
    simulates the whole sweep process dying mid-flight, which the serial
    orchestrator deliberately does not catch).  Unlisted ``(chunk,
    attempt)`` pairs execute normally, so "fails twice then succeeds" is
    expressed by listing exactly two attempts.

    This is the harness the fault-tolerance test-suite drives; it lives
    in the library so downstream users can prove their own sweeps'
    resilience the same way.
    """

    _BUILTIN = {
        "crash": lambda: WorkerCrashError("injected worker crash"),
        "timeout": lambda: ChunkTimeoutError("injected chunk timeout"),
        "error": lambda: RuntimeError("injected chunk failure"),
        "abort": lambda: KeyboardInterrupt(),
    }

    def __init__(self, inner, faults: Dict[Tuple[int, int], object]) -> None:
        self.inner = inner
        self.faults = dict(faults)
        self.calls: List[Tuple[int, int]] = []

    def run_chunk(self, chunk: SweepChunk, attempt: int):
        """Raise the configured fault for this (chunk, attempt), or delegate."""
        self.calls.append((chunk.index, attempt))
        fault = self.faults.get((chunk.index, attempt))
        if fault is not None:
            if isinstance(fault, str):
                raise self._BUILTIN[fault]()
            raise fault
        return self.inner.run_chunk(chunk, attempt)


# --------------------------------------------------------------------------- #
# Process-pool execution with kill/hang recovery
# --------------------------------------------------------------------------- #
# Workers rebuild the engine once per process from the declarative
# CircuitSpec JSON (exactly like run_many's plain process backend) and run
# whole chunks -- vectorized when the chunk compiles, scalar otherwise --
# returning the packed JSON payload, which the parent both decodes into
# live runs and (when checkpointing) writes to the store verbatim.

_SHARD_WORKER: Optional[Dict[str, Any]] = None


def _shard_worker_init(
    spec_json: str,
    on_causality: str,
    max_events: int,
    dispatch: bool,
    chaos: Optional[Dict[str, List[List[int]]]],
) -> None:
    global _SHARD_WORKER
    from ..specs import CircuitSpec

    circuit = CircuitSpec.from_json(spec_json).build()
    topo = CircuitTopology(circuit)
    _SHARD_WORKER = {
        "topo": topo,
        "engine": Engine(topo, on_causality=on_causality, max_events=max_events),
        "on_causality": on_causality,
        "max_events": max_events,
        "dispatch": dispatch,
        "chaos": {
            kind: {tuple(pair) for pair in pairs}
            for kind, pairs in (chaos or {}).items()
        },
    }


def _apply_chaos(chaos: Dict[str, set], chunk_index: int, attempt: int) -> None:
    """Test-only fault hooks, keyed on (chunk, attempt) like FaultInjector."""
    pair = (chunk_index, attempt)
    if pair in chaos.get("kill", ()):
        os._exit(1)  # simulates an OOM-kill / segfault: no cleanup, no excuse
    if pair in chaos.get("hang", ()):
        _time.sleep(3600.0)  # parent's chunk_timeout must kill us
    if pair in chaos.get("raise", ()):
        raise RuntimeError(f"chaos: injected failure in chunk {chunk_index}")


def _shard_worker_run(payload: bytes) -> Dict[str, Any]:
    state = _SHARD_WORKER
    chunk_index, attempt, scenarios = pickle.loads(payload)
    _apply_chaos(state["chaos"], chunk_index, attempt)
    outcome = _execute_chunk(
        state["topo"],
        state["engine"],
        scenarios,
        dispatch=state["dispatch"],
        on_causality=state["on_causality"],
        max_events=state["max_events"],
    )
    return _encode_chunk_payload(outcome)


class _ProcessChunkRunner:
    """Runs chunks on a respawnable process pool with timeouts and retries."""

    def __init__(
        self,
        spec_json: str,
        *,
        on_causality: str,
        max_events: int,
        dispatch: bool,
        max_workers: int,
        chunk_timeout: Optional[float],
        chaos: Optional[Dict[str, List[List[int]]]],
    ) -> None:
        self.spec_json = spec_json
        self.on_causality = on_causality
        self.max_events = max_events
        self.dispatch = dispatch
        self.max_workers = max(1, max_workers)
        self.chunk_timeout = chunk_timeout
        self.chaos = chaos
        self._pool: Optional[ProcessPoolExecutor] = None

    def _pool_or_spawn(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_shard_worker_init,
                initargs=(
                    self.spec_json,
                    self.on_causality,
                    self.max_events,
                    self.dispatch,
                    self.chaos,
                ),
            )
        return self._pool

    def _kill_pool(self) -> None:
        # A hung or broken pool cannot be drained politely: terminate the
        # workers outright (a worker sleeping in a stuck chunk would
        # otherwise keep the interpreter alive at exit), then shut down.
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except OSError:
                pass
        pool.shutdown(wait=True, cancel_futures=True)

    def _submit(self, chunk: SweepChunk, attempt: int):
        payload = pickle.dumps((chunk.index, attempt, chunk.scenarios))
        try:
            return self._pool_or_spawn().submit(_shard_worker_run, payload)
        except BrokenProcessPool:
            self._kill_pool()
            return self._pool_or_spawn().submit(_shard_worker_run, payload)

    def run(
        self,
        chunks: Sequence[SweepChunk],
        policy: RetryPolicy,
        on_success: Callable[[SweepChunk, Dict[str, Any], int], None],
        on_failure: Callable[[ChunkFailure], None],
    ) -> None:
        """Drive all chunks to success or quarantine; callbacks per chunk."""
        # waiting: (chunk, attempt, ready_at); in_flight: future -> (chunk,
        # attempt, deadline).  At most max_workers chunks are in flight, so
        # a submission's timeout clock starts when a worker actually can.
        waiting = deque(
            (chunk, 1, 0.0) for chunk in sorted(chunks, key=lambda c: c.index)
        )
        in_flight: Dict[object, Tuple[SweepChunk, int, float]] = {}

        def fail_or_retry(chunk, attempt, kind, error) -> None:
            if attempt < policy.attempts:
                ready = _time.monotonic() + policy.delay_before(attempt + 1)
                waiting.append((chunk, attempt + 1, ready))
            else:
                on_failure(
                    ChunkFailure(
                        index=chunk.index,
                        scenario_names=chunk.names,
                        attempts=attempt,
                        kind=kind,
                        error=str(error) or repr(error),
                        error_type=type(error).__name__,
                        key=chunk.key,
                    )
                )

        try:
            while waiting or in_flight:
                now = _time.monotonic()
                ready = sorted(
                    (item for item in waiting if item[2] <= now),
                    key=lambda item: item[0].index,
                )
                for item in ready:
                    if len(in_flight) >= self.max_workers:
                        break
                    waiting.remove(item)
                    chunk, attempt, _ = item
                    deadline = (
                        math.inf
                        if self.chunk_timeout is None
                        else _time.monotonic() + self.chunk_timeout
                    )
                    in_flight[self._submit(chunk, attempt)] = (chunk, attempt, deadline)
                if not in_flight:
                    # Everything is backing off: sleep until the first retry.
                    _time.sleep(max(0.0, min(item[2] for item in waiting) - now))
                    continue
                timeouts = [dl - now for (_, _, dl) in in_flight.values()]
                timeouts += [item[2] - now for item in waiting]
                wait_s = max(0.0, min(t for t in timeouts if t != math.inf))\
                    if any(t != math.inf for t in timeouts) else None
                done, _ = wait(
                    set(in_flight), timeout=wait_s, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in sorted(done, key=lambda f: in_flight[f][0].index):
                    chunk, attempt, _ = in_flight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool as exc:
                        # Every outstanding future fails when the pool
                        # breaks; blame the first (lowest-index) chunk and
                        # treat the rest as collateral (no attempt spent).
                        if not broken:
                            broken = True
                            fail_or_retry(
                                chunk,
                                attempt,
                                "crash",
                                WorkerCrashError(
                                    f"process worker died while running chunk "
                                    f"{chunk.index} ({exc})"
                                ),
                            )
                        else:
                            waiting.append((chunk, attempt, 0.0))
                        continue
                    except Exception as exc:
                        fail_or_retry(chunk, attempt, "exception", exc)
                        continue
                    on_success(chunk, payload, attempt)
                if broken:
                    self._kill_pool()
                    for chunk, attempt, _ in in_flight.values():
                        waiting.append((chunk, attempt, 0.0))  # collateral
                    in_flight.clear()
                    continue
                now = _time.monotonic()
                expired = [
                    future
                    for future, (_, _, deadline) in in_flight.items()
                    if deadline <= now and future not in done
                ]
                if expired:
                    for future in sorted(expired, key=lambda f: in_flight[f][0].index):
                        chunk, attempt, _ = in_flight.pop(future)
                        fail_or_retry(
                            chunk,
                            attempt,
                            "timeout",
                            ChunkTimeoutError(
                                f"chunk {chunk.index} exceeded its "
                                f"{self.chunk_timeout:g}s wall-clock timeout"
                            ),
                        )
                    # The stuck worker cannot be cancelled -- kill the pool
                    # and resubmit the innocent bystanders untouched.
                    self._kill_pool()
                    for chunk, attempt, _ in in_flight.values():
                        waiting.append((chunk, attempt, 0.0))
                    in_flight.clear()
        finally:
            self._kill_pool()


# --------------------------------------------------------------------------- #
# Shard bookkeeping attached to SweepResult
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChunkRecord:
    """How one chunk of a sharded sweep was satisfied."""

    index: int
    scenarios: int
    backend: str
    resumed: bool
    attempts: int
    seconds: float
    vector_reasons: Tuple[str, ...] = ()
    key: Optional[str] = None


@dataclass(frozen=True)
class ShardReport:
    """Per-chunk accounting of a sharded sweep (``SweepResult.shard_report``)."""

    chunk_size: int
    executor: str  # "inline" | "process" | "custom"
    records: Tuple[ChunkRecord, ...]
    failed: int = 0

    @property
    def computed(self) -> int:
        """Chunks executed in this run (not loaded from the checkpoint)."""
        return sum(1 for r in self.records if not r.resumed)

    @property
    def resumed(self) -> int:
        """Chunks satisfied from the checkpoint store without recomputation."""
        return sum(1 for r in self.records if r.resumed)

    def backends(self) -> Dict[str, int]:
        """Histogram of per-chunk execution backends."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.backend] = counts.get(record.backend, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable account of the sweep's chunks."""
        backends = ", ".join(f"{k} x {v}" for k, v in sorted(self.backends().items()))
        return (
            f"{self.computed} chunk(s) computed, {self.resumed} resumed, "
            f"{self.failed} failed (chunk size {self.chunk_size}, "
            f"{self.executor}; {backends or 'no chunks'})"
        )


# --------------------------------------------------------------------------- #
# Asynchronous checkpoint persistence
# --------------------------------------------------------------------------- #


class _CheckpointWriter:
    """Persists chunk checkpoints on a background thread.

    Encoding a chunk's runs into the packed payload and writing the JSON
    artifact costs real time (tens of milliseconds per 16-scenario chunk
    on the benchmark workload); doing it inline serializes checkpoint
    I/O with chunk compute.  A single writer thread overlaps the two --
    vector chunks spend long stretches in numpy with the GIL released,
    and file writes release it too -- which is what keeps the measured
    checkpoint overhead inside the <= 10% acceptance budget.

    Semantics match synchronous writes: one consumer persists
    submissions in order, and :meth:`close` drains the queue and joins
    the thread before the sweep returns -- so a completed ``run_many``
    call's checkpoints are always durable, and an interrupted sweep
    still keeps every chunk submitted before the interrupt.  Write
    errors never race the sweep: they are collected and re-raised on
    the normal path via :meth:`raise_first`.
    """

    _DONE = object()

    def __init__(self, store) -> None:
        # Bounded queue: at most a few encoded-pending chunks in flight,
        # so a slow disk applies backpressure instead of ballooning RSS.
        self._store = store
        self._queue: "_queue.Queue" = _queue.Queue(maxsize=4)
        self.errors: List[BaseException] = []
        self._thread = threading.Thread(
            target=self._drain, name="repro-checkpoint-writer", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        """Consumer loop: encode (if needed) and persist until the sentinel."""
        while True:
            item = self._queue.get()
            if item is self._DONE:
                return
            chunk, outcome = item
            try:
                payload = outcome.payload or _encode_chunk_payload(outcome)
                self._store.put_payload(
                    chunk.spec, payload, fmt=CHUNK_FORMAT, key=chunk.key
                )
            except BaseException as exc:  # noqa: BLE001 - reported at close
                self.errors.append(exc)

    def submit(self, chunk: SweepChunk, outcome: "_ChunkOutcome") -> None:
        """Queue a finished chunk for persistence (blocks when the queue is full)."""
        self._queue.put((chunk, outcome))

    def close(self) -> None:
        """Drain queued writes and join the thread; never raises."""
        self._queue.put(self._DONE)
        self._thread.join()

    def raise_first(self) -> None:
        """Re-raise the first write error, if any (call after :meth:`close`)."""
        if self.errors:
            raise self.errors[0]


# --------------------------------------------------------------------------- #
# The sharded runner
# --------------------------------------------------------------------------- #


def _circuit_spec_or_raise(topology: CircuitTopology, what: str) -> str:
    from ..specs import SpecError

    try:
        return topology.circuit.to_spec().to_json(indent=None)
    except SpecError as exc:
        raise SimulationError(
            f"{what} requires a spec-representable circuit ({exc}); register "
            "the missing kind via repro.specs.register_channel_kind"
        ) from exc


def run_many_sharded(
    circuit,
    scenarios: Sequence[object],
    *,
    checkpoint=None,
    backend: str = "auto",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    retry=None,
    chunk_timeout: Optional[float] = None,
    on_chunk_failure: str = "raise",
    on_causality: str = "error",
    max_events: int = 1_000_000,
    executor=None,
    _sleep: Callable[[float], None] = _time.sleep,
    _chaos: Optional[Dict[str, List[List[int]]]] = None,
) -> "object":
    """Execute a sweep in resilient, individually checkpointed chunks.

    The fault-tolerant sibling of :func:`repro.engine.sweep.run_many`
    (which delegates here whenever ``checkpoint``/``retry``/
    ``chunk_timeout``/``on_chunk_failure`` is given or ``backend="auto"``).

    Parameters
    ----------
    checkpoint:
        :class:`~repro.store.ArtifactStore` or directory path.  Finished
        chunks are written as content-keyed artifacts; chunks already in
        the store are loaded instead of recomputed, bit-identically.
    backend:
        ``"auto"`` / ``"vector"`` dispatch each chunk to the vector
        engine when it compiles and to the scalar engine otherwise
        (fallback reasons aggregate into ``vector_report``); ``"process"``
        does the same inside each pool worker; ``"sequential"`` pins the
        scalar engine.  ``"thread"`` is accepted for drop-in
        compatibility with ``run_many`` defaults but degrades to
        sequential chunk execution (and rejects ``max_workers > 1``:
        GIL-bound chunk threads would serialize anyway while muddying
        failure attribution).
    chunk_size:
        Scenarios per chunk (default :data:`DEFAULT_CHUNK_SIZE`).  Part
        of the checkpoint identity: resume with the size you ran with.
    retry:
        :class:`RetryPolicy`, total-attempt count, or ``None`` for the
        default policy (3 attempts, 0.1 s exponential backoff).
    chunk_timeout:
        Per-attempt wall-clock budget in seconds.  Enforced by killing
        and respawning the pool under ``backend="process"``; inline
        executors cannot preempt a running chunk (a warning says so).
    on_chunk_failure:
        ``"raise"`` (default): quarantine failing chunks, finish their
        siblings, then raise :class:`SweepFailedError` carrying the
        report and the partial result.  ``"keep"``: return the surviving
        runs with ``failure_report`` attached.
    executor:
        Override the chunk executor (an object with ``run_chunk(chunk,
        attempt)``) -- the :class:`FaultInjector` hook.  Forces inline
        (serial) orchestration.

    Returns a :class:`~repro.engine.sweep.SweepResult` whose
    ``shard_report`` records, per chunk, the backend that ran it, whether
    it was resumed, and how many attempts it took.
    """
    from ..store import as_store
    from .sweep import SweepResult

    if backend not in ("auto", "vector", "sequential", "thread", "process"):
        raise ValueError(
            "sharded backend must be 'auto', 'vector', 'sequential', "
            "'thread' or 'process'"
        )
    if on_chunk_failure not in ("raise", "keep"):
        raise ValueError("on_chunk_failure must be 'raise' or 'keep'")
    if backend == "thread" and max_workers is not None and max_workers > 1:
        raise SimulationError(
            "sharded sweeps do not support thread-parallel chunk execution "
            "(GIL-bound chunks would serialize anyway); use backend='process' "
            "for parallelism or backend='auto' for in-process dispatch"
        )
    topology = (
        circuit if isinstance(circuit, CircuitTopology) else CircuitTopology(circuit)
    )
    scenarios = list(scenarios)
    policy = as_retry_policy(retry)
    size = int(chunk_size) if chunk_size else DEFAULT_CHUNK_SIZE
    dispatch = backend in ("auto", "vector", "process")
    use_process = backend == "process" and executor is None
    if use_process and max_workers is None:
        max_workers = os.cpu_count() or 1
    if chunk_timeout is not None and not use_process:
        warnings.warn(
            "chunk_timeout cannot preempt in-process chunk execution; use "
            "backend='process' for enforced wall-clock timeouts",
            RuntimeWarning,
            stacklevel=2,
        )

    store = as_store(checkpoint) if checkpoint is not None else None
    circuit_spec_json: Optional[str] = None
    circuit_spec_dict: Optional[Dict[str, Any]] = None
    if store is not None:
        circuit_spec_json = _circuit_spec_or_raise(topology, "checkpoint=")
        import json as _json

        circuit_spec_dict = _json.loads(circuit_spec_json)
        store.gc_tmp()
    elif use_process:
        circuit_spec_json = _circuit_spec_or_raise(topology, "backend='process'")

    from ..specs import SpecError

    try:
        chunks = make_chunks(
            scenarios,
            size,
            circuit_spec=circuit_spec_dict,
            on_causality=on_causality,
            max_events=max_events,
        )
    except SpecError as exc:
        raise SimulationError(
            "checkpoint= requires every scenario's channel overrides to be "
            f"spec-representable so chunks can be content-keyed ({exc}); "
            "drop checkpoint= or register the missing channel kind"
        ) from exc

    start = _time.perf_counter()
    outcomes: Dict[int, _ChunkOutcome] = {}
    records: Dict[int, ChunkRecord] = {}
    failures: List[ChunkFailure] = []
    writer = _CheckpointWriter(store) if store is not None else None

    # -- resume: satisfy chunks from the checkpoint store ------------------- #
    pending: List[SweepChunk] = []
    for chunk in chunks:
        outcome = None
        if store is not None:
            payload = store.get_payload(chunk.spec, fmt=CHUNK_FORMAT, key=chunk.key)
            if payload is not None:
                outcome = _decode_chunk_payload(topology, chunk, payload)
        if outcome is None:
            pending.append(chunk)
        else:
            outcomes[chunk.index] = outcome
            records[chunk.index] = ChunkRecord(
                index=chunk.index,
                scenarios=len(chunk.scenarios),
                backend=outcome.backend,
                resumed=True,
                attempts=0,
                seconds=outcome.seconds,
                vector_reasons=outcome.vector_reasons,
                key=chunk.key,
            )

    def record_success(chunk: SweepChunk, outcome: _ChunkOutcome, attempts: int) -> None:
        outcomes[chunk.index] = outcome
        records[chunk.index] = ChunkRecord(
            index=chunk.index,
            scenarios=len(chunk.scenarios),
            backend=outcome.backend,
            resumed=False,
            attempts=attempts,
            seconds=outcome.seconds,
            vector_reasons=outcome.vector_reasons,
            key=chunk.key,
        )
        if writer is not None:
            writer.submit(chunk, outcome)

    # -- compute the remainder ---------------------------------------------- #
    # The checkpoint writer thread must be drained and joined even when
    # the compute phase dies (Ctrl-C, BrokenProcessPool escaping retry):
    # chunks that finished before the interrupt stay durable.
    try:
        if pending and use_process:
            runner = _ProcessChunkRunner(
                circuit_spec_json,
                on_causality=on_causality,
                max_events=max_events,
                dispatch=dispatch,
                max_workers=max_workers,
                chunk_timeout=chunk_timeout,
                chaos=_chaos,
            )

            def on_success(
                chunk: SweepChunk, payload: Dict[str, Any], attempts: int
            ) -> None:
                outcome = _decode_chunk_payload(topology, chunk, payload)
                if outcome is None:  # a worker returned garbage: treat as failure
                    failures.append(
                        ChunkFailure(
                            index=chunk.index,
                            scenario_names=chunk.names,
                            attempts=attempts,
                            kind="exception",
                            error="worker returned an undecodable chunk payload",
                            error_type="ValueError",
                            key=chunk.key,
                        )
                    )
                    return
                record_success(chunk, outcome, attempts)

            runner.run(pending, policy, on_success, failures.append)
        elif pending:
            chunk_executor = executor
            if chunk_executor is None:
                chunk_executor = InlineChunkExecutor(
                    topology,
                    dispatch=dispatch,
                    on_causality=on_causality,
                    max_events=max_events,
                )
            for chunk in pending:
                attempt = 0
                outcome = None
                last_exc: Optional[BaseException] = None
                while attempt < policy.attempts:
                    attempt += 1
                    delay = policy.delay_before(attempt)
                    if delay > 0:
                        _sleep(delay)
                    try:
                        outcome = chunk_executor.run_chunk(chunk, attempt)
                        break
                    except Exception as exc:  # noqa: BLE001 - quarantine protocol
                        # KeyboardInterrupt/SystemExit propagate: a dying sweep
                        # keeps its checkpointed chunks and resumes later.
                        last_exc = exc
                if outcome is None:
                    kind = (
                        "timeout"
                        if isinstance(last_exc, ChunkTimeoutError)
                        else "crash"
                        if isinstance(last_exc, WorkerCrashError)
                        else "exception"
                    )
                    failures.append(
                        ChunkFailure(
                            index=chunk.index,
                            scenario_names=chunk.names,
                            attempts=attempt,
                            kind=kind,
                            error=str(last_exc) or repr(last_exc),
                            error_type=type(last_exc).__name__,
                            key=chunk.key,
                        )
                    )
                else:
                    record_success(chunk, outcome, attempt)
    finally:
        if writer is not None:
            writer.close()
    if writer is not None:
        writer.raise_first()

    # -- assemble ------------------------------------------------------------ #
    ordered_records = tuple(records[i] for i in sorted(records))
    shard_report = ShardReport(
        chunk_size=size,
        executor="process"
        if use_process
        else ("custom" if executor is not None else "inline"),
        records=ordered_records,
        failed=len(failures),
    )
    vector_report = None
    if dispatch:
        from .vector import VectorCapability

        by_reason: Dict[str, List[int]] = {}
        for record in ordered_records:
            for reason in record.vector_reasons:
                by_reason.setdefault(reason, []).append(record.index)
        if by_reason:
            reasons = tuple(
                f"{reason} [chunk(s) {', '.join(map(str, indices))}]"
                for reason, indices in sorted(by_reason.items())
            )
            vector_report = VectorCapability(False, reasons)
            fell_back = sum(1 for r in ordered_records if r.backend != "vector")
            warnings.warn(
                f"sharded sweep: {fell_back} of {len(chunks)} chunk(s) fell "
                f"back to the scalar engine ({'; '.join(reasons)})",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            vector_report = VectorCapability(True)

    used = sorted({r.backend for r in ordered_records})
    inner = "+".join(used) if used else "none"
    label = f"sharded(process:{inner})" if use_process else f"sharded({inner})"
    runs = [
        run for index in sorted(outcomes) for run in outcomes[index].runs
    ]
    failure_report = SweepFailureReport(tuple(failures)) if failures else None
    result = SweepResult(
        topology=topology,
        runs=runs,
        total_seconds=_time.perf_counter() - start,
        backend=label,
        vector_report=vector_report,
        failure_report=failure_report,
        shard_report=shard_report,
    )
    if failures and on_chunk_failure == "raise":
        raise SweepFailedError(failure_report, result)
    return result
