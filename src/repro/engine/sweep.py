"""Batched execution of scenario families through one shared engine.

Every experiment driver in this repository used to re-run the simulator
one parameter point at a time, re-validating the circuit and re-deriving
its adjacency for every single run.  :func:`run_many` amortises that work:
the circuit is validated and precomputed into a
:class:`~repro.engine.scheduler.CircuitTopology` exactly once, and each
:class:`Scenario` then only pays for its own event loop.  Scenarios can
override per-edge channels (parameterised channel families, per-run eta
adversaries) and fan out over threads or -- the actually-parallel option
for this CPU-bound, pure-Python event loop -- a process pool.

Helpers:

* :func:`channel_overrides` -- build a per-edge override map from a factory
  (e.g. "replace every non-zero-delay channel with a fresh eta channel"),
* :func:`eta_monte_carlo` -- scenario family sampling an independent random
  eta adversary per channel per run (Monte Carlo over the admissible
  parameter ``H`` of the paper's execution definition),
* :func:`sweep_map` -- a generic ordered (optionally threaded) map used by
  the analog characterisation drivers for their per-condition sweeps.
"""

from __future__ import annotations

import copy
import math
import os
import pickle
import time as _time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..core.transitions import Signal
from .errors import SimulationError
from .scheduler import CircuitTopology, Engine, Execution

__all__ = [
    "Scenario",
    "RunResult",
    "SweepResult",
    "run_many",
    "channel_overrides",
    "eta_monte_carlo",
    "sweep_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass
class Scenario:
    """One parameter point of a sweep.

    Attributes
    ----------
    name:
        Label of the scenario (used in results and reports).
    inputs:
        Input-port signals for this run.
    end_time:
        Simulation horizon for this run.
    channels:
        Optional per-edge channel overrides (edge name -> channel); edges
        not listed keep the circuit's base channel.
    metadata:
        Free-form parameters riding along (swept values, seeds, ...).
    fingerprint:
        Optional precomputed computation-relevant canonical JSON of this
        scenario, exactly as :func:`repro.engine.shard.scenario_fingerprint`
        would derive it from the live objects.  Scenario *producers* that
        know their structure (:func:`eta_monte_carlo` varies only the
        adversary seed between runs) fill this in so checkpointed sweeps
        key their chunks without re-deriving channel specs per scenario;
        leave ``None`` for hand-built scenarios.  Excluded from equality
        (it is a cache, not state) -- and it must never disagree with the
        derived form, which ``tests/engine/test_shard.py`` pins for the
        built-in producers.
    """

    name: str
    inputs: Dict[str, Signal]
    end_time: float
    channels: Optional[Dict[str, object]] = None
    metadata: Dict[str, object] = field(default_factory=dict)
    fingerprint: Optional[Dict[str, object]] = field(
        default=None, repr=False, compare=False
    )


@dataclass
class RunResult:
    """The execution of one scenario plus its wall-clock cost."""

    scenario: Scenario
    execution: Execution
    seconds: float


@dataclass
class SweepResult:
    """All runs of a sweep over one shared circuit topology.

    ``backend`` records the backend that actually executed the runs --
    which differs from the requested one when ``backend="vector"`` fell
    back to the scalar path; ``vector_report`` then carries the
    :class:`~repro.engine.vector.VectorCapability` explaining why.

    Sharded sweeps (``backend="auto"``, or any of
    ``checkpoint``/``retry``/``chunk_timeout``/``on_chunk_failure``)
    additionally attach a :class:`~repro.engine.shard.ShardReport` as
    ``shard_report`` (per-chunk backends, resumed-vs-computed counts,
    attempts) and -- when chunks were quarantined under
    ``on_chunk_failure="keep"`` -- a
    :class:`~repro.engine.shard.SweepFailureReport` as ``failure_report``.
    """

    topology: CircuitTopology
    runs: List[RunResult]
    total_seconds: float
    backend: Optional[str] = None
    vector_report: Optional[object] = None
    failure_report: Optional[object] = None
    shard_report: Optional[object] = None

    @property
    def executions(self) -> List[Execution]:
        """The executions, in scenario order."""
        return [run.execution for run in self.runs]

    def execution(self, name: str) -> Execution:
        """The execution of the scenario with the given name (O(1) lookup).

        The name index is built once on first use and cached; duplicate
        scenario names make the lookup ambiguous and raise
        :class:`~repro.engine.errors.SimulationError` (the former linear
        scan silently returned the first match).
        """
        index = self.__dict__.get("_by_name")
        if index is None:
            index = {}
            first_seen: Dict[str, int] = {}
            duplicates = []
            for position, run in enumerate(self.runs):
                sname = run.scenario.name
                if sname in index:
                    duplicates.append(
                        f"{sname!r} at index {position} "
                        f"(first seen at index {first_seen[sname]})"
                    )
                else:
                    index[sname] = run
                    first_seen[sname] = position
            if duplicates:
                raise SimulationError(
                    f"duplicate scenario names: {'; '.join(duplicates)}; "
                    "execution(name) lookups would be ambiguous -- give every "
                    "scenario a unique name"
                )
            self.__dict__["_by_name"] = index
        try:
            return index[name].execution
        except KeyError:
            raise KeyError(f"no scenario named {name!r}") from None

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)


# --------------------------------------------------------------------------- #
# Process-pool worker machinery
# --------------------------------------------------------------------------- #
# The worker builds its topology and engine exactly once per process -- from
# the declarative CircuitSpec JSON shipped through the initializer (specs
# preserve node/edge order, so the rebuilt circuit executes bit-identically;
# no circuit object is ever pickled) -- and then executes whole scenario
# chunks, returning stripped signal payloads instead of full Execution
# objects so the parent never re-serialises the circuit per run.

_WORKER_ENGINE: Optional[Engine] = None

#: Stripped per-run payload: (node_signals, edge_signals, event_count,
#: dropped_transitions, seconds).
_RunPayload = Tuple[Dict[str, Signal], Dict[str, Signal], int, int, float]


def _process_worker_init(spec_json: str, on_causality: str, max_events: int) -> None:
    global _WORKER_ENGINE
    from ..specs import CircuitSpec

    circuit = CircuitSpec.from_json(spec_json).build()
    _WORKER_ENGINE = Engine(
        CircuitTopology(circuit), on_causality=on_causality, max_events=max_events
    )


def _process_run_chunk(scenarios: Sequence[Scenario]) -> List[_RunPayload]:
    engine = _WORKER_ENGINE
    results: List[_RunPayload] = []
    for scenario in scenarios:
        start = _time.perf_counter()
        execution = engine.run(
            scenario.inputs, scenario.end_time, channels=scenario.channels or None
        )
        results.append(
            (
                execution.node_signals,
                execution.edge_signals,
                execution.event_count,
                execution.dropped_transitions,
                _time.perf_counter() - start,
            )
        )
    return results


def _chunked(items: Sequence[_T], chunk_size: int) -> List[Sequence[_T]]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _run_many_process(
    topology: CircuitTopology,
    scenarios: Sequence[Scenario],
    *,
    on_causality: str,
    max_events: int,
    max_workers: int,
    chunk_size: Optional[int],
) -> List[RunResult]:
    from ..specs import SpecError

    try:
        spec_json = topology.circuit.to_spec().to_json(indent=None)
    except SpecError as exc:
        raise SimulationError(
            "backend='process' ships declarative CircuitSpecs to its "
            "workers, but this circuit cannot be expressed as one "
            f"({exc}); register the missing kind via "
            "repro.specs.register_channel_kind or use the thread backend"
        ) from exc
    try:
        chunks = _chunked(list(scenarios), chunk_size or max(
            1, math.ceil(len(scenarios) / (max_workers * 4))
        ))
        chunk_payloads = [pickle.dumps(chunk) for chunk in chunks]
    except Exception as exc:
        raise SimulationError(
            "backend='process' requires every scenario (inputs, channel "
            "overrides, metadata) to be picklable; use the thread backend "
            f"for closure-based channels ({exc})"
        ) from exc
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_process_worker_init,
        initargs=(spec_json, on_causality, max_events),
    ) as pool:
        chunk_results = list(pool.map(_process_run_chunk_pickled, chunk_payloads))
    runs: List[RunResult] = []
    circuit = topology.circuit
    output_ports = topology.output_ports
    for chunk, results in zip(chunks, chunk_results):
        for scenario, (node_signals, edge_signals, events, dropped, secs) in zip(
            chunk, results
        ):
            output_signals = {o: node_signals[o] for o in output_ports}
            runs.append(
                RunResult(
                    scenario=scenario,
                    execution=Execution(
                        circuit=circuit,
                        node_signals=node_signals,
                        edge_signals=edge_signals,
                        output_signals=output_signals,
                        end_time=scenario.end_time,
                        event_count=events,
                        dropped_transitions=dropped,
                    ),
                    seconds=secs,
                )
            )
    return runs


def _process_run_chunk_pickled(chunk_payload: bytes) -> List[_RunPayload]:
    return _process_run_chunk(pickle.loads(chunk_payload))


def run_many(
    circuit,
    scenarios: Sequence[Scenario],
    *,
    on_causality: str = "error",
    max_events: int = 1_000_000,
    max_workers: Optional[int] = None,
    backend: str = "thread",
    chunk_size: Optional[int] = None,
    checkpoint=None,
    retry=None,
    chunk_timeout: Optional[float] = None,
    on_chunk_failure: Optional[str] = None,
) -> SweepResult:
    """Execute every scenario against one shared, precomputed topology.

    The circuit is validated and its adjacency precomputed exactly once;
    every scenario then runs through a fresh event loop (fresh kernels,
    fresh channel state) just as a standalone
    :func:`repro.circuits.simulator.simulate` call would.

    Parallelism (``max_workers`` > 1) comes in two flavours
    (``backend="sequential"`` explicitly opts out and ignores
    ``max_workers``):

    ``backend="thread"``
        A :class:`~concurrent.futures.ThreadPoolExecutor`.  The event loop
        is pure CPU-bound Python, so threads time-slice under the GIL and
        mostly *overlap* rather than speed up -- useful only when channel
        callbacks release the GIL (numpy-heavy adversaries) or for latency
        hiding.  Base channels of the circuit are stateful (adversary
        RNGs), so every edge *not* overridden by the scenario is
        deep-copied per run to keep threads from sharing mutable state.
    ``backend="process"``
        A :class:`~concurrent.futures.ProcessPoolExecutor`: real multi-core
        scaling.  The circuit is shipped once per worker as its declarative
        :class:`~repro.specs.CircuitSpec` JSON (workers rebuild it and its
        topology locally; spec node/edge order preservation keeps the
        rebuilt circuit bit-identical), scenarios are shipped in pickled
        chunks (``chunk_size``, default ``len / (4 * max_workers)``), and
        workers return stripped signal payloads.  Requires the circuit to
        be spec-representable and the scenarios to be picklable.
    ``backend="vector"``
        The NumPy-vectorized batch engine (:mod:`repro.engine.vector`):
        all scenarios of a feed-forward sweep are evaluated simultaneously
        through masked array operations, typically several times faster
        than ``sequential`` on one core for Monte Carlo families with real
        per-run work.  Circuits or channels the vector compiler cannot
        express (feedback loops, custom channel/adversary classes, ...)
        fall back to the sequential scalar path automatically -- with a
        :class:`~repro.engine.vector.VectorCapability` report attached as
        ``SweepResult.vector_report`` and a ``RuntimeWarning`` naming
        every obstacle, never silently.  ``SweepResult.backend`` records
        the backend that actually ran.  Per-run ``seconds`` are the
        batched wall time divided evenly across scenarios (the vector
        engine has no per-scenario clock).

    Determinism guarantee: with every stateful channel either seeded or
    overridden per scenario (as :func:`eta_monte_carlo` does), sequential,
    thread, process and vector backends produce bit-identical executions
    for the same scenarios -- kernels are rebuilt and channels reset per
    run, so no RNG state leaks across runs or workers.  The equivalence
    tests in ``tests/engine/test_sweep.py`` and
    ``tests/engine/test_vector.py`` pin this.

    Fault tolerance: ``backend="auto"``, or any of ``checkpoint=`` (an
    :class:`~repro.store.ArtifactStore` or directory path), ``retry=``,
    ``chunk_timeout=`` or ``on_chunk_failure=``, routes the sweep through
    the resilient sharded runner
    (:func:`repro.engine.shard.run_many_sharded`): scenarios split into
    deterministic spec-keyed chunks that are individually checkpointed,
    retried with exponential backoff, quarantined when poisonous, and
    dispatched per-chunk between the vector and scalar engines.  In
    sharded mode ``chunk_size`` means scenarios per chunk (default
    :data:`~repro.engine.shard.DEFAULT_CHUNK_SIZE`) and is part of the
    checkpoint identity.  See :mod:`repro.engine.shard` and
    ``docs/resilience.md`` for the full semantics.
    """
    sharded = (
        backend == "auto"
        or checkpoint is not None
        or retry is not None
        or chunk_timeout is not None
        or on_chunk_failure is not None
    )
    if sharded:
        from .shard import run_many_sharded

        return run_many_sharded(
            circuit,
            scenarios,
            checkpoint=checkpoint,
            backend=backend,
            max_workers=max_workers,
            chunk_size=chunk_size,
            retry=retry,
            chunk_timeout=chunk_timeout,
            on_chunk_failure=on_chunk_failure or "raise",
            on_causality=on_causality,
            max_events=max_events,
        )
    if backend not in ("sequential", "thread", "process", "vector"):
        raise ValueError(
            "backend must be 'auto', 'sequential', 'thread', 'process' "
            "or 'vector'"
        )
    if backend == "process" and max_workers is None:
        # An explicitly requested process backend means "use the cores":
        # silently running sequentially would ignore the caller's choice.
        max_workers = os.cpu_count() or 1
    topology = (
        circuit
        if isinstance(circuit, CircuitTopology)
        else CircuitTopology(circuit)
    )
    engine = Engine(topology, on_causality=on_causality, max_events=max_events)

    def execute(scenario: Scenario, *, isolate: bool) -> RunResult:
        channels = dict(scenario.channels) if scenario.channels else {}
        if isolate:
            for ename, edge in topology.edges.items():
                if ename not in channels:
                    channels[ename] = copy.deepcopy(edge.channel)
        start = _time.perf_counter()
        execution = engine.run(
            scenario.inputs, scenario.end_time, channels=channels or None
        )
        return RunResult(
            scenario=scenario,
            execution=execution,
            seconds=_time.perf_counter() - start,
        )

    start = _time.perf_counter()
    vector_report = None
    executed_backend = backend
    if backend == "vector":
        from .vector import VectorUnsupportedError, compile_sweep

        try:
            program = compile_sweep(
                topology,
                scenarios,
                on_causality=on_causality,
                max_events=max_events,
            )
            vector_report = program.report
            # run() can still refuse dynamically (same-instant deliveries
            # discovered mid-evaluation); that falls back like a compile
            # refusal, discarding the partial vector work.
            runs = program.run()
        except VectorUnsupportedError as exc:
            # Automatic fallback must never be silent: the capability
            # report rides on the result and the warning names every
            # obstacle, so a slow sweep is diagnosable.
            vector_report = exc.report
            executed_backend = "sequential"
            warnings.warn(
                "backend='vector' cannot express this sweep, falling back "
                f"to the sequential scalar engine ({exc.report.summary()})",
                RuntimeWarning,
                stacklevel=2,
            )
            runs = [execute(scenario, isolate=False) for scenario in scenarios]
        return SweepResult(
            topology=topology,
            runs=runs,
            total_seconds=_time.perf_counter() - start,
            backend=executed_backend,
            vector_report=vector_report,
        )
    parallel = (
        backend != "sequential"
        and max_workers is not None
        and max_workers > 1
        and len(scenarios) > 1
    )
    if parallel and backend == "process":
        runs = _run_many_process(
            topology,
            scenarios,
            on_causality=on_causality,
            max_events=max_events,
            max_workers=max_workers,
            chunk_size=chunk_size,
        )
    elif parallel:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            runs = list(pool.map(lambda s: execute(s, isolate=True), scenarios))
    else:
        runs = [execute(scenario, isolate=False) for scenario in scenarios]
        executed_backend = "sequential"
    return SweepResult(
        topology=topology,
        runs=runs,
        total_seconds=_time.perf_counter() - start,
        backend=executed_backend,
    )


def channel_overrides(
    circuit,
    factory: Callable[[object], object],
    *,
    skip_zero_delay: bool = True,
) -> Dict[str, object]:
    """Build a per-edge channel override map from a factory.

    ``factory`` is called with each edge and returns the replacement
    channel (or ``None`` to keep the base channel).  Zero-delay edges
    (ports, taps) are skipped by default, so ``channel_overrides(circuit,
    lambda e: make_channel())`` swaps exactly the timing channels of the
    circuit -- the usual way to evaluate one topology under a parameterised
    channel family.
    """
    from ..core.channel import ZeroDelayChannel

    # Circuit and CircuitTopology both expose `.edges` with the same shape.
    edges = circuit.edges
    overrides: Dict[str, object] = {}
    for ename, edge in edges.items():
        if skip_zero_delay and isinstance(edge.channel, ZeroDelayChannel):
            continue
        channel = factory(edge)
        if channel is not None:
            overrides[ename] = channel
    return overrides


def eta_monte_carlo(
    circuit,
    inputs: Dict[str, Signal],
    end_time: float,
    n_runs: int,
    *,
    seed: int = 0,
    name: str = "mc",
) -> List[Scenario]:
    """Scenario family sampling independent random eta adversaries per run.

    Every eta-involution channel edge of the circuit is overridden with a
    copy of its channel driven by a fresh
    :class:`~repro.core.adversary.RandomAdversary`, seeded independently
    per (run, edge) from a deterministic seed sequence -- Monte Carlo
    sampling over the paper's admissible parameter ``H``.  Edges with
    non-eta channels keep their base channel.  The per-(run, edge) seeding
    is what makes the scenarios embarrassingly parallel: any
    :func:`run_many` backend executes them bit-identically.
    """
    import numpy as np

    from ..core.adversary import RandomAdversary
    from ..core.eta_channel import EtaInvolutionChannel

    # Circuit and CircuitTopology both expose `.edges` with the same shape.
    edges = circuit.edges
    eta_edges = [
        (ename, edge)
        for ename, edge in edges.items()
        if isinstance(edge.channel, EtaInvolutionChannel)
    ]
    seed_seq = np.random.SeedSequence(seed)
    children = seed_seq.spawn(n_runs)

    # Precompute the per-scenario checkpoint fingerprints (see
    # Scenario.fingerprint): between runs only the adversary seed varies,
    # so the expensive part -- deriving each edge channel's spec dict --
    # happens once per edge instead of once per (run, edge).  The
    # fingerprint format keeps seeds in a separate ``channel_seeds``
    # entry, so the whole seed-free channel table (and the inputs table)
    # is one shared dict aliased by every run's fingerprint and treated
    # as immutable -- chunk keying then pools it once per chunk.
    # Circuits with unspeccable channels simply skip fingerprinting;
    # checkpointed sweeps then derive (or reject) through the generic
    # path.
    inputs_fp = base_fp = None
    try:
        from ..io.netlist import signal_to_dict
        from ..specs import ChannelSpec, SpecError, _seed_to_json

        inputs_fp = {
            port: signal_to_dict(signal) for port, signal in sorted(inputs.items())
        }
        base_fp = {}
        for ename, edge in eta_edges:
            ch = ChannelSpec.from_channel(
                edge.channel.with_adversary(RandomAdversary(seed=seed_seq))
            ).to_dict()
            adversary = dict(ch["adversary"])
            adversary.pop("seed", None)
            ch["adversary"] = adversary
            base_fp[ename] = ch
    except SpecError:
        inputs_fp = base_fp = None

    scenarios: List[Scenario] = []
    for run_index in range(n_runs):
        edge_seeds = children[run_index].spawn(len(eta_edges))
        overrides = {
            # A SeedSequence child works as a RandomAdversary seed and keeps
            # Adversary.reset() reproducible (default_rng(SeedSequence) is pure).
            ename: edge.channel.with_adversary(RandomAdversary(seed=edge_seeds[k]))
            for k, (ename, edge) in enumerate(eta_edges)
        }
        fingerprint = None
        if base_fp is not None:
            fingerprint = {"end_time": float(end_time), "inputs": inputs_fp}
            if base_fp:
                fingerprint["channels"] = base_fp
                fingerprint["channel_seeds"] = {
                    ename: _seed_to_json(edge_seeds[k])
                    for k, (ename, edge) in enumerate(eta_edges)
                }
        scenarios.append(
            Scenario(
                name=f"{name}[{run_index}]",
                inputs=inputs,
                end_time=end_time,
                channels=overrides,
                metadata={"run_index": run_index, "seed": seed},
                fingerprint=fingerprint,
            )
        )
    return scenarios


def sweep_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    max_workers: Optional[int] = None,
) -> List[_R]:
    """Ordered map over independent sweep points, optionally threaded.

    The analog characterisation drivers (Fig. 7/8/9 sweeps over supply
    voltages and variation scenarios) fan their independent condition
    sweeps out through this helper; with ``max_workers=None`` it degrades
    to a plain list comprehension, keeping results bitwise identical to the
    sequential loops it replaced.  Threads help here (unlike in the event
    loop) because these sweeps spend their time in numpy, which releases
    the GIL for array-sized work; closures over unpicklable state are also
    common in these drivers, which rules the process backend out.  For
    picklable, pure-Python workloads prefer
    ``run_many(..., backend="process")``.
    """
    items = list(items)
    if max_workers is None or max_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, items))
