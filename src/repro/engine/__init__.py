"""The unified simulation engine.

Three layers, each usable on its own:

* :mod:`repro.engine.kernel` -- :class:`ChannelKernel`, the single home of
  the tentative-delay / transport-cancellation / inertial-rejection
  semantics shared by the offline channel algorithm
  (:mod:`repro.core.channel`) and the event-driven simulator,
* :mod:`repro.engine.scheduler` -- the event queue with delta-cycle
  batching (:class:`Scheduler`), the precomputed circuit view
  (:class:`CircuitTopology`) and the event loop (:class:`Engine`),
* :mod:`repro.engine.sweep` -- the batched sweep runner
  (:func:`run_many`) that amortises validation/topology across whole
  scenario families, with per-run channel overrides, Monte Carlo eta
  sampling (:func:`eta_monte_carlo`) and sequential/thread/process/vector
  backends (process workers receive the circuit as declarative
  :class:`repro.specs.CircuitSpec` JSON, never as a pickle),
* :mod:`repro.engine.capability` -- the static obstacle analyzer
  (:func:`~repro.engine.capability.analyze_sweep`) deciding which sweeps
  the vector backend can express, shared verbatim with the
  :mod:`repro.lint` fallback prediction so the linter and the runtime
  can never disagree,
* :mod:`repro.engine.vector` -- the NumPy-vectorized batch backend:
  sweeps compiled into dense per-scenario arrays and evaluated for all
  scenarios simultaneously (feedback loops through an iterate-to-fixpoint
  lockstep schedule), bit-identical to the scalar engine, with a
  capability report
  (:func:`vector_capability`) for everything it cannot express,
* :mod:`repro.engine.shard` -- the fault-tolerant sharded sweep layer:
  spec-keyed chunk checkpointing with crash-safe resume, retry with
  exponential backoff, per-chunk wall-clock timeouts, poison-chunk
  quarantine, and per-chunk vector/scalar dispatch
  (:func:`run_many_sharded`; ``run_many(backend="auto")`` routes here).

The scheduler and sweep layers are imported lazily (PEP 562) because
:mod:`repro.core.channel` imports the kernel at module load time; eager
imports here would create a cycle through :mod:`repro.circuits`.
"""

from .errors import CausalityError, SimulationError
from .kernel import (
    ChannelKernel,
    KernelEvent,
    PendingTransition,
    cancel_non_fifo,
    cancel_non_fifo_reference,
    pending_to_signal,
    transport_resolve,
)

__all__ = [
    # errors
    "SimulationError",
    "CausalityError",
    # kernel
    "ChannelKernel",
    "KernelEvent",
    "PendingTransition",
    "cancel_non_fifo",
    "cancel_non_fifo_reference",
    "transport_resolve",
    "pending_to_signal",
    # scheduler (lazy)
    "PORT",
    "DELIVER",
    "SETTLE",
    "Scheduler",
    "CircuitTopology",
    "Execution",
    "Engine",
    # sweep (lazy)
    "Scenario",
    "RunResult",
    "SweepResult",
    "run_many",
    "channel_overrides",
    "eta_monte_carlo",
    "sweep_map",
    # vector (lazy)
    "VectorCapability",
    "VectorUnsupportedError",
    "VectorProgram",
    "vector_capability",
    "compile_sweep",
    "predraw_random_adversaries",
    "run_many_vector",
    # shard (lazy)
    "RetryPolicy",
    "ChunkFailure",
    "SweepFailureReport",
    "SweepFailedError",
    "ChunkRecord",
    "ShardReport",
    "FaultInjector",
    "InlineChunkExecutor",
    "run_many_sharded",
]

_SCHEDULER_EXPORTS = {
    "PORT",
    "DELIVER",
    "SETTLE",
    "Scheduler",
    "CircuitTopology",
    "Execution",
    "Engine",
}
_SWEEP_EXPORTS = {
    "Scenario",
    "RunResult",
    "SweepResult",
    "run_many",
    "channel_overrides",
    "eta_monte_carlo",
    "sweep_map",
}
_VECTOR_EXPORTS = {
    "VectorCapability",
    "VectorUnsupportedError",
    "VectorProgram",
    "vector_capability",
    "compile_sweep",
    "predraw_random_adversaries",
    "run_many_vector",
}
_SHARD_EXPORTS = {
    "RetryPolicy",
    "ChunkFailure",
    "SweepFailureReport",
    "SweepFailedError",
    "ChunkRecord",
    "ShardReport",
    "FaultInjector",
    "InlineChunkExecutor",
    "run_many_sharded",
}


def __getattr__(name):
    if name in _SCHEDULER_EXPORTS:
        from . import scheduler

        return getattr(scheduler, name)
    if name in _SWEEP_EXPORTS:
        from . import sweep

        return getattr(sweep, name)
    if name in _VECTOR_EXPORTS:
        from . import vector

        return getattr(vector, name)
    if name in _SHARD_EXPORTS:
        from . import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
